//! Rustc-style diagnostics: a typed code, a severity, an optional op
//! index, a message, and attached notes, collected into a [`Report`].
//!
//! The format intentionally mirrors `rustc`'s `error[E0308]: ...`
//! lines so analyzer output reads naturally next to compiler output in
//! CI logs:
//!
//! ```text
//! error[RNA0009]: op 1 (maxpool): pool declares padding 1 but pool kernels index without padding
//!   = note: 4x4x1 input, 2x2 kernel, stride 2 -> 2x2 output
//! ```

use std::fmt;

/// How severe a [`Diagnostic`] is.
///
/// Only [`Severity::Error`] makes a report rejecting; warnings and
/// notes are advisory (hardware-model exceedances, dead entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory context (dead table rows, unused columns).
    Note,
    /// Suspicious but not unsound for the software pipeline
    /// (hardware-width exceedances, unsorted codebooks).
    Warning,
    /// The artifact is malformed or inference could fault; strict
    /// loading refuses the model.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable machine-readable code identifying a class of finding.
///
/// Codes are grouped by default severity: `RNA00xx` are errors,
/// `RNA01xx` warnings, `RNA02xx` notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// The artifact bytes failed to decode (bad magic, truncation,
    /// checksum mismatch, malformed header).
    DecodeFailed,
    /// A span points outside its backing pool, or a length product
    /// overflows `usize`.
    SpanOutOfBounds,
    /// A codebook or lookup table is empty.
    EmptyTable,
    /// A codebook holds more values than a 16-bit encoded index can
    /// address (the paper sizes indices at 2–7 bits; the format caps
    /// them at 16).
    OversizedCodebook,
    /// An encoded index can select a row/column outside its table.
    IndexOutOfBounds,
    /// Consecutive ops disagree on the width of the value vector.
    ShapeMismatch,
    /// An op expects encoded inputs but receives decoded floats (or
    /// vice versa), or the program ends in the encoded domain.
    DomainMismatch,
    /// Pool/conv geometry is inconsistent (output dims do not follow
    /// from input dims, kernel, stride, padding).
    GeometryInvalid,
    /// A pool op declares non-zero padding; pool kernels index without
    /// padding and would read out of bounds (PR 1 panic class).
    PaddedPool,
    /// Residual begin/end markers are unbalanced or their widths
    /// disagree.
    ResidualImbalance,
    /// A reachable centroid, product, bias, or LUT entry is NaN or
    /// infinite and would propagate to outputs.
    NonFinite,
    /// A format v2 bit-packed code layout is structurally invalid:
    /// directory offsets out of bounds or out of order, sections not
    /// tiling the code pool, a bit width outside `1..=16`, or an op's
    /// weight-code span not matching any packed section.
    PackedLayoutInvalid,
    /// A packed section's bit width disagrees with the width implied by
    /// the product table it feeds (`ceil(log2(weight_count))`), so the
    /// stream can encode row indices the table does not have.
    PackedWidthMismatch,
    /// A packed section's final stream byte carries non-zero bits past
    /// the last code — trailing garbage a bit-exact round-trip would
    /// silently preserve.
    PackedTrailingBits,
    /// An optimizer certificate is structurally malformed: op/remap
    /// counts disagree, a row map is not an order-preserving injection
    /// onto a prefix of the new row indices, or a kept range is out of
    /// bounds for the table it describes.
    CertificateInvalid,
    /// An optimized program is not the certificate's image of its
    /// input: a kept table/codebook/LUT entry changed bits, a weight
    /// code was not remapped as stated, or op shapes diverge from the
    /// declared compaction.
    RewriteMismatch,
    /// The translation validator could not re-prove a rewrite: the
    /// certificate deletes data the input analysis shows live (kept
    /// ranges fail to cover a reachable code range or referenced row),
    /// or re-analysis of the optimized program reports errors.
    RewriteUnproven,
    /// A codebook is not sorted by `total_cmp`; nearest-search
    /// monotonicity no longer holds (analysis falls back to the full
    /// range).
    UnsortedCodebook,
    /// A neuron's statically-bounded sum exceeds the fixed-point
    /// accumulator word modeled in `rapidnn-accel`.
    AccumulatorOverflow,
    /// A neuron's fan-in exceeds what the occurrence counters can
    /// count before saturating.
    CounterOverflow,
    /// Encoder codebook entries no reachable value can select.
    DeadCodebookEntries,
    /// Product-table rows no weight code references.
    DeadTableRows,
    /// Product-table columns beyond the input codebook's length.
    DeadTableColumns,
    /// Activation-LUT rows outside the reachable accumulator range.
    DeadLutRows,
}

impl DiagCode {
    /// Stable identifier rendered in brackets after the severity.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::DecodeFailed => "RNA0001",
            DiagCode::SpanOutOfBounds => "RNA0002",
            DiagCode::EmptyTable => "RNA0003",
            DiagCode::OversizedCodebook => "RNA0004",
            DiagCode::IndexOutOfBounds => "RNA0005",
            DiagCode::ShapeMismatch => "RNA0006",
            DiagCode::DomainMismatch => "RNA0007",
            DiagCode::GeometryInvalid => "RNA0008",
            DiagCode::PaddedPool => "RNA0009",
            DiagCode::ResidualImbalance => "RNA0010",
            DiagCode::NonFinite => "RNA0011",
            DiagCode::PackedLayoutInvalid => "RNA0012",
            DiagCode::PackedWidthMismatch => "RNA0013",
            DiagCode::PackedTrailingBits => "RNA0014",
            DiagCode::CertificateInvalid => "RNA0015",
            DiagCode::RewriteMismatch => "RNA0016",
            DiagCode::RewriteUnproven => "RNA0017",
            DiagCode::UnsortedCodebook => "RNA0101",
            DiagCode::AccumulatorOverflow => "RNA0102",
            DiagCode::CounterOverflow => "RNA0103",
            DiagCode::DeadCodebookEntries => "RNA0104",
            DiagCode::DeadTableRows => "RNA0201",
            DiagCode::DeadTableColumns => "RNA0202",
            DiagCode::DeadLutRows => "RNA0203",
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::DecodeFailed
            | DiagCode::SpanOutOfBounds
            | DiagCode::EmptyTable
            | DiagCode::OversizedCodebook
            | DiagCode::IndexOutOfBounds
            | DiagCode::ShapeMismatch
            | DiagCode::DomainMismatch
            | DiagCode::GeometryInvalid
            | DiagCode::PaddedPool
            | DiagCode::ResidualImbalance
            | DiagCode::NonFinite
            | DiagCode::PackedLayoutInvalid
            | DiagCode::PackedWidthMismatch
            | DiagCode::PackedTrailingBits
            | DiagCode::CertificateInvalid
            | DiagCode::RewriteMismatch
            | DiagCode::RewriteUnproven => Severity::Error,
            DiagCode::UnsortedCodebook
            | DiagCode::AccumulatorOverflow
            | DiagCode::CounterOverflow
            | DiagCode::DeadCodebookEntries => Severity::Warning,
            DiagCode::DeadTableRows | DiagCode::DeadTableColumns | DiagCode::DeadLutRows => {
                Severity::Note
            }
        }
    }
}

/// One finding: severity, code, optional op index, message, notes.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Severity the finding is reported at (derived from `code`).
    pub severity: Severity,
    /// Machine-readable class of the finding.
    pub code: DiagCode,
    /// Index of the op the finding anchors to, if any; `None` for
    /// whole-program findings (decode failures, trailing imbalance).
    pub op: Option<usize>,
    /// Human-readable description, including the offending range or
    /// value where one exists.
    pub message: String,
    /// Supplementary `= note:` lines rendered under the main line.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// New diagnostic at `code`'s default severity.
    pub fn new(code: DiagCode, op: Option<usize>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: code.severity(),
            code,
            op,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attaches a `= note:` line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: ", self.severity, self.code.as_str())?;
        if let Some(op) = self.op {
            write!(f, "op {op}: ")?;
        }
        write!(f, "{}", self.message)?;
        for note in &self.notes {
            write!(f, "\n  = note: {note}")?;
        }
        Ok(())
    }
}

/// Machine-readable liveness totals accumulated alongside the prose
/// liveness diagnostics (RNA0104, RNA0201–0203), so consumers — the
/// optimizer deciding whether any pass can fire, gateway stats JSON,
/// tests — read numbers instead of parsing diagnostic strings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LivenessCounts {
    /// Encoder codebook entries no reachable value can select (RNA0104).
    pub dead_codebook_entries: usize,
    /// Product-table rows referenced by no weight code (RNA0201).
    pub dead_table_rows: usize,
    /// Product-table columns beyond the input codebook (RNA0202).
    pub dead_table_columns: usize,
    /// Activation-LUT rows outside the reachable range (RNA0203).
    pub dead_lut_rows: usize,
}

impl LivenessCounts {
    /// Total dead elements across all four liveness classes.
    pub fn total(&self) -> usize {
        self.dead_codebook_entries
            + self.dead_table_rows
            + self.dead_table_columns
            + self.dead_lut_rows
    }
}

/// Ordered collection of [`Diagnostic`]s produced by one analysis run.
///
/// `Display` renders each diagnostic followed by a one-line summary,
/// mirroring `cargo`'s "error: could not compile" trailer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
    liveness: LivenessCounts,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Appends a liveness diagnostic and adds `count` dead elements to
    /// the machine-readable total for its class. `code` must be one of
    /// the four liveness codes.
    pub fn push_liveness(&mut self, diag: Diagnostic, count: usize) {
        match diag.code {
            DiagCode::DeadCodebookEntries => self.liveness.dead_codebook_entries += count,
            DiagCode::DeadTableRows => self.liveness.dead_table_rows += count,
            DiagCode::DeadTableColumns => self.liveness.dead_table_columns += count,
            DiagCode::DeadLutRows => self.liveness.dead_lut_rows += count,
            other => debug_assert!(false, "{other:?} is not a liveness code"),
        }
        self.diagnostics.push(diag);
    }

    /// Machine-readable dead-element totals for this run.
    pub fn liveness(&self) -> LivenessCounts {
        self.liveness
    }

    /// All findings in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether any finding is an error (strict loading refuses the
    /// artifact exactly when this is true).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report is completely empty.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// First finding carrying `code`, if any.
    pub fn find(&self, code: DiagCode) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.code == code)
    }

    /// One-line `N errors, M warnings, K notes` summary.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} note(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note)
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for diag in &self.diagnostics {
            writeln!(f, "{diag}")?;
        }
        write!(f, "analysis: {}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_shaped() {
        let mut report = Report::new();
        report.push(
            Diagnostic::new(DiagCode::PaddedPool, Some(1), "pool declares padding 1")
                .with_note("pools index without padding"),
        );
        report.push(Diagnostic::new(
            DiagCode::DeadTableRows,
            Some(0),
            "2 unused rows",
        ));
        let text = report.to_string();
        assert!(text.contains("error[RNA0009]: op 1: pool declares padding 1"));
        assert!(text.contains("  = note: pools index without padding"));
        assert!(text.contains("note[RNA0201]: op 0: 2 unused rows"));
        assert!(text.ends_with("analysis: 1 error(s), 0 warning(s), 1 note(s)"));
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert!(report.find(DiagCode::PaddedPool).is_some());
        assert!(report.find(DiagCode::NonFinite).is_none());
    }

    #[test]
    fn liveness_counts_accumulate_per_class() {
        let mut report = Report::new();
        assert_eq!(report.liveness(), LivenessCounts::default());
        report.push_liveness(
            Diagnostic::new(DiagCode::DeadTableRows, Some(0), "3 unused rows"),
            3,
        );
        report.push_liveness(
            Diagnostic::new(DiagCode::DeadTableRows, Some(1), "2 unused rows"),
            2,
        );
        report.push_liveness(
            Diagnostic::new(DiagCode::DeadCodebookEntries, Some(1), "1 dead entry"),
            1,
        );
        let counts = report.liveness();
        assert_eq!(counts.dead_table_rows, 5);
        assert_eq!(counts.dead_codebook_entries, 1);
        assert_eq!(counts.dead_table_columns, 0);
        assert_eq!(counts.dead_lut_rows, 0);
        assert_eq!(counts.total(), 6);
        // The prose diagnostics ride along unchanged.
        assert_eq!(report.count(Severity::Note), 2);
        assert_eq!(report.count(Severity::Warning), 1);
    }

    #[test]
    fn severities_follow_code_groups() {
        assert_eq!(DiagCode::NonFinite.severity(), Severity::Error);
        assert_eq!(DiagCode::CounterOverflow.severity(), Severity::Warning);
        assert_eq!(DiagCode::DeadLutRows.severity(), Severity::Note);
        assert!(Severity::Error > Severity::Warning);
    }
}
