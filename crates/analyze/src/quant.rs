//! Integer-lowering licenses: per-op quantization plans.
//!
//! The checker ([`crate::analyze`]) proves *hardware feasibility* —
//! would the paper's Q8.8 datapath overflow? This module answers the
//! adjacent *software* question: which ops of a program may the serving
//! kernels lower from `f32` table gathers to `i16`-operand / `i32`-
//! accumulator arithmetic without changing answers beyond a provable
//! bound? The result is a [`QuantPlan`]: one [`OpQuant`] per op, either
//! a [`LicensedOp`] carrying the chosen fixed-point formats, the proven
//! accumulator interval, the requantization recipe and a sound error
//! bound, or a [`FallbackReason`] explaining why the op must stay on
//! the f32 path. Mixed plans are normal — the serving runtime executes
//! licensed ops in integers and everything else unchanged.
//!
//! # How a dense op gets licensed
//!
//! A dense op reads codes, gathers `table[w][x]`, accumulates, applies
//! bias + activation, and (except at the output) re-encodes. Two
//! integer lowerings exist:
//!
//! * **Madd** — when every referenced table row factors back into
//!   `fl(w · book[x])` (the compiled form; verified bitwise the same
//!   way the f32 kernels' [`factor_table`] fast path does), weights and
//!   book values are quantized separately to `i16` at `2^w_frac` /
//!   `2^x_frac` and the kernel runs a pure `i16×i16 → i32` multiply-
//!   accumulate stream.
//! * **Gather** — otherwise, table entries themselves are quantized to
//!   `i16` at `2^acc_frac` and gathered by code pair, accumulating in
//!   `i32`.
//!
//! Headroom is proven, not hoped for: with `mag = max_o (|bias_o| +
//! Σ_i max_x |table[w(o,i)][x]|)` bounding every partial sum over the
//! *full* code domain (so late code flips cannot escape it), the plan
//! only licenses a format when `mag · 2^acc_frac` plus worst-case
//! per-term rounding stays within `2^30` — a quarter of the `i32`
//! range. The accumulator fraction never drops below the accelerator
//! datapath's fraction bits ([`rapidnn_accel::DatapathModel`], Q8.8 by
//! default), so the served integer path requantizes at op boundaries
//! exactly where the simulated hardware does.
//!
//! # The error-bound contract
//!
//! [`QuantPlan::output_error`] bounds `|integer-path output − f32-path
//! output|` element-wise, for every input. It composes per op as a
//! linear recursion `err_out = A · err_in + B`: quantization noise `B`
//! from rounding operands to `i16` and finishing through a bucketed
//! LUT, and propagation `A · err_in` through table reads (tables are
//! Lipschitz along their sorted input codebook), activation lookups and
//! re-encoders. Nearest-encode through a sorted book is *almost*
//! contractive — `|enc(a) − enc(b)| ≤ |a − b| + 2·R` where `R` is the
//! book's largest adjacent half-gap — which keeps the recursion sound
//! even when integer noise flips a code at a cluster boundary. The
//! property suite (`tests/quantized.rs`) holds measured deviations
//! against this bound across random topologies.

use crate::interval::Interval;
use crate::program::{Act, Op, Program, Span, TableRef};
use rapidnn_accel::DatapathModel;
use std::fmt;

/// Largest quantized operand magnitude we round to: one below
/// `i16::MAX` so rounding can never overflow the word.
const Q_MAX: f64 = 32766.0;
/// Accumulator budget: worst-case `|acc|` must stay within `2^30`,
/// leaving a 4× safety margin inside `i32`.
const ACC_BUDGET: f64 = (1u64 << 30) as f64;
/// Hard cap on materialized finish-LUT rows (u16-indexable).
const MAX_LUT_LEN: usize = 1 << 16;

/// How a licensed op multiplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Factored multiply-accumulate: weights at `2^w_frac`, inputs at
    /// `2^x_frac`, products accumulate at `2^(w_frac + x_frac)`.
    Madd {
        /// Fraction bits of the quantized weight factors.
        w_frac: u32,
        /// Fraction bits of the quantized input codebook.
        x_frac: u32,
    },
    /// Direct product-table gather: entries quantized at the
    /// accumulator scale.
    Gather,
}

/// How a licensed op leaves the `i32` accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishPlan {
    /// Dequantize (and clamp at zero for ReLU) straight to `f32`; only
    /// for output-stage ops with exact activations.
    Direct,
    /// Requantize through a precomputed lookup table: bucket index
    /// `(acc - lo_q) >> shift`, one finished output per bucket.
    Lut {
        /// Accumulator value (at `2^acc_frac`) of bucket 0's left edge.
        lo_q: i64,
        /// Right-shift from accumulator grid to bucket grid
        /// (`acc_frac - datapath fraction bits`).
        shift: u32,
        /// Bucket count; at most [`2^16`](MAX_LUT_LEN).
        len: usize,
    },
}

/// Why an op stays on the f32 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The op kind has no integer lowering (convolutions today).
    UnsupportedOp,
    /// The op consumes decoded floats, so there is no input codebook to
    /// quantize against.
    NotEncoded,
    /// Structural problems — out-of-bounds spans, unsorted codebooks,
    /// shape mismatches. Strict loading rejects such models anyway.
    Invalid,
    /// A value the lowering must quantize is NaN or infinite.
    NonFinite,
    /// Weights, codebook or table entries too large for `i16` even at
    /// zero fraction bits.
    ValueRangeTooWide,
    /// The proven accumulator range (or the finish LUT it implies)
    /// cannot fit the integer budget at the datapath's minimum
    /// fraction.
    AccumulatorRangeTooWide,
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            FallbackReason::UnsupportedOp => "op kind has no integer lowering",
            FallbackReason::NotEncoded => "op consumes decoded floats",
            FallbackReason::Invalid => "op is structurally invalid",
            FallbackReason::NonFinite => "quantization source values are not finite",
            FallbackReason::ValueRangeTooWide => "operand range exceeds i16 at any fraction",
            FallbackReason::AccumulatorRangeTooWide => "accumulator range exceeds the i32 budget",
        };
        f.write_str(msg)
    }
}

/// A fully licensed integer lowering of one dense op.
#[derive(Debug, Clone, PartialEq)]
pub struct LicensedOp {
    /// Multiply strategy and operand formats.
    pub mode: QuantMode,
    /// Fraction bits of the `i32` accumulator grid.
    pub acc_frac: u32,
    /// The input codebook the op's codes decode through (float-pool
    /// span), recorded so the runtime need not re-derive the book walk.
    pub input_book: Span,
    /// Recovered per-weight-code factors for [`QuantMode::Madd`]
    /// (empty for [`QuantMode::Gather`]).
    pub wvals: Vec<f32>,
    /// Proven accumulator hull over the full input code domain.
    pub acc: Interval,
    /// Bound on `|integer accumulator · 2^-acc_frac − f32 accumulator|`
    /// including propagated upstream deviation.
    pub acc_error: f64,
    /// How the accumulator is finished.
    pub finish: FinishPlan,
    /// Bound on the op's output deviation from the f32 path (after
    /// activation and re-encode), fed forward to downstream ops.
    pub error: f64,
}

/// The licensing verdict for one program op.
#[derive(Debug, Clone, PartialEq)]
pub enum OpQuant {
    /// The op carries no tables to quantize (pooling, residual
    /// bookkeeping); it runs unchanged on either path.
    NotApplicable,
    /// Licensed for the integer path.
    Licensed(Box<LicensedOp>),
    /// Must stay on the f32 path.
    Fallback(FallbackReason),
}

impl OpQuant {
    /// `true` for [`OpQuant::Licensed`].
    pub fn is_licensed(&self) -> bool {
        matches!(self, OpQuant::Licensed(_))
    }
}

/// Per-op integer-lowering licenses for a whole program, plus the
/// composed output error bound. Produced by [`quantize_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantPlan {
    /// One verdict per program op, in op order.
    pub ops: Vec<OpQuant>,
    /// Sound bound on `|integer-path output − f32-path output|` for
    /// every output element (infinite when deviation crosses an op the
    /// plan cannot bound, e.g. a convolution downstream of a licensed
    /// op).
    pub output_error: f64,
}

impl QuantPlan {
    /// Number of ops licensed for the integer path.
    pub fn licensed(&self) -> usize {
        self.ops.iter().filter(|o| o.is_licensed()).count()
    }

    /// Number of table-bearing ops that fell back to f32.
    pub fn fallbacks(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, OpQuant::Fallback(_)))
            .count()
    }
}

/// Derives a [`QuantPlan`] against the paper's datapath
/// ([`DatapathModel::paper`], Q8.8).
pub fn quantize_plan(program: &Program<'_>) -> QuantPlan {
    quantize_plan_with(program, DatapathModel::paper())
}

/// Derives a [`QuantPlan`] against an explicit datapath model: the
/// accumulator fraction of every licensed op is at least
/// `datapath.fraction_bits`, so requantization happens on (at least)
/// the simulated hardware's grid.
///
/// Never panics, even on structurally broken programs — ops the walk
/// cannot prove sound simply fall back
/// ([`FallbackReason::Invalid`]).
pub fn quantize_plan_with(program: &Program<'_>, datapath: DatapathModel) -> QuantPlan {
    let mut walk = QuantWalk {
        program,
        lut_frac: datapath.fraction_bits.min(24),
        cur_book: Some(program.virtual_encoder),
        err: 0.0,
        skip_errs: Vec::new(),
        ops: Vec::with_capacity(program.ops.len()),
    };
    walk.run();
    QuantPlan {
        ops: walk.ops,
        output_error: walk.err,
    }
}

/// Per-table-row facts, memoized while scanning an op's weight codes.
#[derive(Clone, Copy)]
struct RowInfo {
    /// Hull of the row over the input-book columns.
    hull: Interval,
    /// Max |entry| over the input-book columns.
    mag: f64,
    /// Max |Δentry| / Δbook over adjacent book columns (∞ when two
    /// book entries collide at different table values).
    lip: f64,
}

struct QuantWalk<'p, 'a> {
    program: &'p Program<'a>,
    lut_frac: u32,
    cur_book: Option<Span>,
    /// Deviation bound of the integer path vs f32 at this point.
    err: f64,
    skip_errs: Vec<f64>,
    ops: Vec<OpQuant>,
}

impl<'p> QuantWalk<'p, '_> {
    fn floats(&self, s: Span) -> Option<&'p [f32]> {
        let end = s.start.checked_add(s.len)?;
        self.program.floats.get(s.start..end)
    }

    /// A span that must hold a sorted, finite, non-empty codebook.
    fn book(&self, s: Span) -> Option<&'p [f32]> {
        let vals = self.floats(s)?;
        if vals.is_empty() || vals.len() > MAX_LUT_LEN {
            return None;
        }
        let sorted = vals.windows(2).all(|w| w[0] <= w[1]);
        let finite = vals.iter().all(|v| v.is_finite());
        (sorted && finite).then_some(vals)
    }

    fn codes(&self, s: Span) -> Option<&'p [u16]> {
        let end = s.start.checked_add(s.len)?;
        self.program.codes.get(s.start..end)
    }

    fn run(&mut self) {
        let program = self.program;
        for op in &program.ops {
            let verdict = self.step(op);
            self.ops.push(verdict);
        }
    }

    fn step(&mut self, op: &Op) -> OpQuant {
        match op {
            Op::Dense {
                inputs,
                outputs,
                weight_codes,
                bias,
                table,
                act,
                encoder,
            } => {
                let book = self.cur_book.take();
                self.cur_book = *encoder;
                self.dense(
                    *inputs,
                    *outputs,
                    *weight_codes,
                    *bias,
                    table,
                    act,
                    encoder,
                    book,
                )
            }
            Op::Conv {
                geom,
                tables,
                act,
                encoder,
                ..
            } => {
                let book = self.cur_book.take();
                self.cur_book = *encoder;
                // Convolutions stay on f32; if upstream deviation
                // exists it still propagates through the taps.
                if self.err > 0.0 {
                    let lip = book.and_then(|b| self.book(b)).map_or(f64::INFINITY, |bk| {
                        tables
                            .iter()
                            .map(|t| self.table_lip_all(t, bk))
                            .fold(0.0, f64::max)
                    });
                    let acc_dev = geom.patch_len() as f64 * lip * self.err;
                    self.err = self.finish_error(acc_dev, act, encoder);
                }
                OpQuant::Fallback(FallbackReason::UnsupportedOp)
            }
            Op::MaxPool(_) => OpQuant::NotApplicable,
            Op::AvgPool { codebook, .. } => {
                self.cur_book = Some(*codebook);
                if self.err > 0.0 {
                    let r = self.book(*codebook).map_or(f64::INFINITY, half_gap);
                    self.err += 2.0 * r;
                }
                OpQuant::NotApplicable
            }
            Op::ResidualBegin { .. } => {
                self.skip_errs.push(self.err);
                OpQuant::NotApplicable
            }
            Op::ResidualEnd { encoder } => {
                self.cur_book = *encoder;
                let skip = self.skip_errs.pop().unwrap_or(0.0);
                self.err += skip;
                if self.err > 0.0 {
                    if let Some(enc) = encoder {
                        let r = self.book(*enc).map_or(f64::INFINITY, half_gap);
                        self.err += 2.0 * r;
                    }
                }
                OpQuant::NotApplicable
            }
        }
    }

    /// Dense licensing. On any failure the op falls back and upstream
    /// deviation propagates as well as the structure allows (infinity
    /// when it cannot be bounded — such models are also rejected by
    /// strict loading).
    #[allow(clippy::too_many_arguments)]
    fn dense(
        &mut self,
        inputs: usize,
        outputs: usize,
        weight_codes: Span,
        bias: Span,
        table: &TableRef,
        act: &Act,
        encoder: &Option<Span>,
        book_span: Option<Span>,
    ) -> OpQuant {
        let fallback = |w: &mut Self, reason: FallbackReason| {
            if w.err > 0.0 {
                // Bound the f32 fallback's own deviation when the
                // structure is sound enough to measure; else give up.
                let acc_dev = book_span
                    .and_then(|bs| w.book(bs))
                    .and_then(|bk| w.fallback_acc_dev(inputs, outputs, weight_codes, table, bk))
                    .unwrap_or(f64::INFINITY);
                w.err = w.finish_error(acc_dev, act, encoder);
            }
            OpQuant::Fallback(reason)
        };

        // --- Structural gate (mirrors what validate/verify prove, but
        // must never panic on unvalidated programs).
        let Some(book_span) = book_span else {
            return fallback(self, FallbackReason::NotEncoded);
        };
        let Some(book) = self.book(book_span) else {
            return fallback(self, FallbackReason::Invalid);
        };
        let pool_f: &[f32] = &self.program.floats;
        let table_ok = table
            .weight_count
            .checked_mul(table.input_count)
            .and_then(|n| table.offset.checked_add(n))
            .is_some_and(|end| end <= pool_f.len());
        let shape_ok = inputs >= 1
            && outputs >= 1
            && inputs.checked_mul(outputs) == Some(weight_codes.len)
            && bias.len == outputs
            && book.len() <= table.input_count
            && table.weight_count >= 1;
        if !table_ok || !shape_ok {
            return fallback(self, FallbackReason::Invalid);
        }
        let (Some(wcodes), Some(bias_v)) = (self.codes(weight_codes), self.floats(bias)) else {
            return fallback(self, FallbackReason::Invalid);
        };
        if wcodes.iter().any(|&c| (c as usize) >= table.weight_count) {
            return fallback(self, FallbackReason::Invalid);
        }
        if bias_v.iter().any(|v| !v.is_finite()) {
            return fallback(self, FallbackReason::NonFinite);
        }
        // Activation / encoder data the finish LUT will bake in.
        let act_data = match act {
            Act::Identity | Act::Relu => None,
            Act::Lookup { inputs, outputs } => {
                let (Some(xs), Some(ys)) = (self.book(*inputs), self.floats(*outputs)) else {
                    return fallback(self, FallbackReason::Invalid);
                };
                if xs.len() != ys.len() {
                    return fallback(self, FallbackReason::Invalid);
                }
                if ys.iter().any(|v| !v.is_finite()) {
                    return fallback(self, FallbackReason::NonFinite);
                }
                Some((xs, ys))
            }
        };
        let enc_book = match encoder {
            None => None,
            Some(e) => match self.book(*e) {
                Some(b) => Some(b),
                None => return fallback(self, FallbackReason::Invalid),
            },
        };

        // --- Row scan: hull, magnitude, Lipschitz and factors.
        let mut rows: Vec<Option<RowInfo>> = vec![None; table.weight_count];
        let mut wvals = vec![0.0f32; table.weight_count];
        let mut all_factored = true;
        let mut acc = Interval::zero();
        let mut mag_bound = 0.0f64;
        let count = inputs as f64;
        let mut lip_max = 0.0f64;
        let mut first = true;
        for (o, wrow) in wcodes.chunks_exact(inputs).enumerate() {
            let mut hull_o = Interval::point(f64::from(bias_v[o]));
            let mut mag_o = f64::from(bias_v[o]).abs();
            for &c in wrow {
                let c = c as usize;
                let info = match rows[c] {
                    Some(info) => info,
                    None => {
                        let Some(info) = self.row_info(table, c, book) else {
                            return fallback(self, FallbackReason::NonFinite);
                        };
                        if all_factored {
                            match factor_row(&table_row(pool_f, table, c)[..book.len()], book) {
                                Some(v) => wvals[c] = v,
                                None => all_factored = false,
                            }
                        }
                        rows[c] = Some(info);
                        info
                    }
                };
                hull_o = hull_o + info.hull;
                mag_o += info.mag;
                lip_max = lip_max.max(info.lip);
            }
            acc = if first { hull_o } else { acc.hull(hull_o) };
            first = false;
            mag_bound = mag_bound.max(mag_o);
        }

        // --- Choose a mode and fraction split with proven headroom.
        let lut_frac = self.lut_frac;
        let fits =
            |f: u32, term_slack: f64| mag_bound * exp2(f) + count * term_slack + 1.0 <= ACC_BUDGET;
        let (mode, acc_frac, eps_acc) = if all_factored {
            let wmax = wvals
                .iter()
                .zip(&rows)
                .filter(|(_, info)| info.is_some())
                .map(|(v, _)| f64::from(*v).abs())
                .fold(0.0, f64::max);
            let xmax = book.iter().map(|v| f64::from(*v).abs()).fold(0.0, f64::max);
            let (Some(mut wf), Some(mut xf)) = (frac_cap(wmax), frac_cap(xmax)) else {
                return fallback(self, FallbackReason::ValueRangeTooWide);
            };
            if wf + xf < lut_frac {
                return fallback(self, FallbackReason::ValueRangeTooWide);
            }
            // Per-term rounding slack: |wq·xq - w·x·2^F| stays within
            // (Wmax·2^wf + Xmax·2^xf)/2 + 1/4 ≤ 2^15.
            while !fits(wf + xf, 32768.0) {
                if wf + xf <= lut_frac {
                    return fallback(self, FallbackReason::AccumulatorRangeTooWide);
                }
                if wf >= xf {
                    wf -= 1;
                } else {
                    xf -= 1;
                }
            }
            let f = wf + xf;
            let eps = count * (wmax * exp2_neg(xf + 1) + xmax * exp2_neg(wf + 1) + exp2_neg(f + 2))
                + exp2_neg(f + 1)
                + (count + 3.0) * mag_bound * exp2_neg(23);
            (
                QuantMode::Madd {
                    w_frac: wf,
                    x_frac: xf,
                },
                f,
                eps,
            )
        } else {
            let tmax = rows
                .iter()
                .flatten()
                .map(|info| info.mag)
                .fold(0.0, f64::max);
            let Some(mut f) = frac_cap(tmax) else {
                return fallback(self, FallbackReason::ValueRangeTooWide);
            };
            if f < lut_frac {
                return fallback(self, FallbackReason::ValueRangeTooWide);
            }
            while !fits(f, 0.5) {
                if f <= lut_frac {
                    return fallback(self, FallbackReason::AccumulatorRangeTooWide);
                }
                f -= 1;
            }
            wvals.clear();
            let eps = (count + 1.0) * exp2_neg(f + 1) + (count + 3.0) * mag_bound * exp2_neg(23);
            (QuantMode::Gather, f, eps)
        };
        let acc_error = eps_acc + flip_term(count, lip_max, self.err);

        // --- Finish: direct dequantization when nothing follows the
        // accumulator but an exact activation, else a bucketed LUT
        // covering the proven range (flipped codes included — the hull
        // is over the full code domain).
        let direct = enc_book.is_none() && matches!(act, Act::Identity | Act::Relu);
        let finish = if direct {
            FinishPlan::Direct
        } else {
            let shift = acc_frac - lut_frac;
            let margin = eps_acc + exp2_neg(lut_frac);
            let lo_f = acc.lo - margin;
            let hi_f = acc.hi + margin;
            let step = 1i64 << shift;
            let lo_q = (lo_f * exp2(acc_frac)).floor() as i64;
            let lo_q = lo_q.div_euclid(step) * step;
            let hi_q = (hi_f * exp2(acc_frac)).ceil() as i64;
            let len = usize::try_from((hi_q - lo_q).div_euclid(step) + 1).unwrap_or(usize::MAX);
            let bounded =
                len <= MAX_LUT_LEN && i32::try_from(lo_q).is_ok() && i32::try_from(hi_q).is_ok();
            if !bounded {
                return fallback(self, FallbackReason::AccumulatorRangeTooWide);
            }
            FinishPlan::Lut { lo_q, shift, len }
        };

        // --- Output deviation through the finish.
        let bucket = match finish {
            FinishPlan::Direct => 0.0,
            FinishPlan::Lut { .. } => exp2_neg(lut_frac + 1),
        };
        let delta = acc_error + bucket;
        let act_err = match act_data {
            None => delta,
            Some((xs, ys)) => lut_lip(xs, ys) * (delta + 2.0 * half_gap(xs)),
        };
        let out_err = match enc_book {
            None => act_err,
            Some(eb) => act_err + 2.0 * half_gap(eb),
        };
        self.err = out_err;

        OpQuant::Licensed(Box::new(LicensedOp {
            mode,
            acc_frac,
            input_book: book_span,
            wvals: if matches!(mode, QuantMode::Madd { .. }) {
                wvals
            } else {
                Vec::new()
            },
            acc,
            acc_error,
            finish,
            error: out_err,
        }))
    }

    /// Hull / magnitude / Lipschitz facts of one table row over the
    /// input-book columns; `None` when an entry is not finite.
    fn row_info(&self, table: &TableRef, row: usize, book: &[f32]) -> Option<RowInfo> {
        let pool_f: &[f32] = &self.program.floats;
        let row = &table_row(pool_f, table, row)[..book.len()];
        let hull = Interval::of_slice(row)?;
        let mag = hull.magnitude();
        Some(RowInfo {
            hull,
            mag,
            lip: slice_lip(book, row),
        })
    }

    /// Max Lipschitz constant of a table over *all* rows (used for
    /// conv propagation, where per-row code tracking is not worth it).
    fn table_lip_all(&self, table: &TableRef, book: &[f32]) -> f64 {
        let pool_f: &[f32] = &self.program.floats;
        let end = table
            .weight_count
            .checked_mul(table.input_count)
            .and_then(|n| table.offset.checked_add(n));
        if end.is_none_or(|e| e > pool_f.len()) || book.len() > table.input_count {
            return f64::INFINITY;
        }
        (0..table.weight_count)
            .map(|w| slice_lip(book, &table_row(pool_f, table, w)[..book.len()]))
            .fold(0.0, f64::max)
    }

    /// Accumulator deviation of an *unlicensed* dense op fed deviated
    /// inputs: upstream error through the table's Lipschitz constant.
    fn fallback_acc_dev(
        &self,
        inputs: usize,
        outputs: usize,
        weight_codes: Span,
        table: &TableRef,
        book: &[f32],
    ) -> Option<f64> {
        let wcodes = self.codes(weight_codes)?;
        if inputs.checked_mul(outputs) != Some(weight_codes.len) || book.len() > table.input_count {
            return None;
        }
        let pool_f: &[f32] = &self.program.floats;
        let end = table
            .weight_count
            .checked_mul(table.input_count)
            .and_then(|n| table.offset.checked_add(n))?;
        if end > pool_f.len() || wcodes.iter().any(|&c| (c as usize) >= table.weight_count) {
            return None;
        }
        let mut lip = 0.0f64;
        let mut mag = 0.0f64;
        let mut seen = vec![false; table.weight_count];
        for &c in wcodes {
            let c = c as usize;
            if !seen[c] {
                seen[c] = true;
                let row = &table_row(pool_f, table, c)[..book.len()];
                lip = lip.max(slice_lip(book, row));
                mag = mag.max(Interval::of_slice(row)?.magnitude());
            }
        }
        let count = inputs as f64;
        // The flip term plus the f32 re-accumulation's own rounding on
        // the shifted values.
        Some(flip_term(count, lip, self.err) + (count + 1.0) * count * mag * exp2_neg(23))
    }

    /// Propagates an accumulator deviation through activation and
    /// re-encode of an f32-path op (shared by conv and dense
    /// fallbacks).
    fn finish_error(&self, acc_dev: f64, act: &Act, encoder: &Option<Span>) -> f64 {
        let act_err = match act {
            Act::Identity | Act::Relu => acc_dev,
            Act::Lookup { inputs, outputs } => match (self.book(*inputs), self.floats(*outputs)) {
                (Some(xs), Some(ys)) if xs.len() == ys.len() => {
                    lut_lip(xs, ys) * (acc_dev + 2.0 * half_gap(xs))
                }
                _ => f64::INFINITY,
            },
        };
        match encoder {
            None => act_err,
            Some(e) => {
                let r = self.book(*e).map_or(f64::INFINITY, half_gap);
                act_err + 2.0 * r
            }
        }
    }
}

/// One product-table row (callers have already bounds-checked the
/// whole table against the float pool).
fn table_row<'a>(pool_f: &'a [f32], table: &TableRef, row: usize) -> &'a [f32] {
    let start = table.offset + row * table.input_count;
    &pool_f[start..start + table.input_count]
}

/// `count · lip · err` with the `∞ · 0` corner pinned to zero: no
/// upstream deviation means nothing to amplify.
fn flip_term(count: f64, lip: f64, err: f64) -> f64 {
    if err == 0.0 {
        0.0
    } else {
        count * lip * err
    }
}

fn exp2(bits: u32) -> f64 {
    (1u64 << bits.min(62)) as f64
}

fn exp2_neg(bits: u32) -> f64 {
    1.0 / exp2(bits)
}

/// Largest fraction `f ≤ 15` with `v · 2^f ≤ Q_MAX`; `None` when even
/// `f = 0` overflows `i16`.
fn frac_cap(v: f64) -> Option<u32> {
    if !v.is_finite() {
        return None;
    }
    (0..=15u32).rev().find(|&f| v * exp2(f) <= Q_MAX)
}

/// Largest adjacent half-gap of a sorted book: the contraction defect
/// of nearest-encode (`|enc(a) − enc(b)| ≤ |a − b| + 2 · half_gap`).
fn half_gap(book: &[f32]) -> f64 {
    book.windows(2)
        .map(|w| (f64::from(w[1]) - f64::from(w[0])) / 2.0)
        .fold(0.0, f64::max)
}

/// Max adjacent `|Δvalue| / Δkey` of a table row along its sorted key
/// axis; `∞` when two equal keys map to different values. Telescoping
/// over the sorted keys makes this a global Lipschitz constant.
fn slice_lip(keys: &[f32], vals: &[f32]) -> f64 {
    let mut lip = 0.0f64;
    for i in 1..keys.len().min(vals.len()) {
        let dk = f64::from(keys[i]) - f64::from(keys[i - 1]);
        let dv = (f64::from(vals[i]) - f64::from(vals[i - 1])).abs();
        if dv > 0.0 {
            lip = lip.max(if dk > 0.0 { dv / dk } else { f64::INFINITY });
        }
    }
    lip
}

/// Nearest-lookup output Lipschitz constant: max adjacent
/// `|Δoutput| / Δinput` (∞ on duplicate inputs with distinct outputs).
fn lut_lip(xs: &[f32], ys: &[f32]) -> f64 {
    slice_lip(xs, ys)
}

/// Recovers the factor `w` of one product-table row, verified bitwise
/// over every book column exactly like the serving kernels'
/// `factor_table` fast path: on success `fl(w · book[x])` reproduces
/// each entry.
fn factor_row(row: &[f32], book: &[f32]) -> Option<f32> {
    'candidate: for (x0, &b0) in book.iter().enumerate() {
        if b0 == 0.0 || !b0.is_finite() {
            continue;
        }
        let cand = row[x0] / b0;
        if !cand.is_finite() {
            continue;
        }
        for (&bx, &rx) in book.iter().zip(row) {
            if (cand * bx).to_bits() != rx.to_bits() {
                continue 'candidate;
            }
        }
        return Some(cand);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    /// Single factored dense layer: 2 inputs through a 4-entry book,
    /// one output, relu, no encoder (mirrors the checker's `tiny`).
    fn tiny(weights: &[f32]) -> Program<'static> {
        let book = [-1.0f32, 0.0, 0.5, 2.0];
        let mut floats = book.to_vec();
        let table_offset = floats.len();
        for &w in weights {
            for &b in &book {
                floats.push(w * b);
            }
        }
        let bias_offset = floats.len();
        floats.push(0.125);
        Program {
            input_features: 2,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 4 },
            ops: vec![Op::Dense {
                inputs: 2,
                outputs: 1,
                weight_codes: Span { start: 0, len: 2 },
                bias: Span {
                    start: bias_offset,
                    len: 1,
                },
                table: TableRef {
                    offset: table_offset,
                    weight_count: weights.len(),
                    input_count: 4,
                },
                act: Act::Relu,
                encoder: None,
            }],
            floats: Cow::Owned(floats),
            codes: Cow::Owned(vec![0, 1]),
            packed: vec![],
        }
    }

    #[test]
    fn factored_dense_licenses_as_madd() {
        let plan = quantize_plan(&tiny(&[-0.5, 1.0]));
        assert_eq!(plan.licensed(), 1);
        let OpQuant::Licensed(op) = &plan.ops[0] else {
            panic!("expected license, got {:?}", plan.ops[0]);
        };
        let QuantMode::Madd { w_frac, x_frac } = op.mode else {
            panic!("expected madd, got {:?}", op.mode);
        };
        assert!(w_frac + x_frac == op.acc_frac);
        assert!(op.acc_frac >= 8, "acc_frac {} below Q8.8", op.acc_frac);
        assert_eq!(op.finish, FinishPlan::Direct);
        assert_eq!(op.wvals, vec![-0.5, 1.0]);
        // Hull: 0.125 + [-1, 0.5] + [-1, 2] = [-1.875, 2.625].
        assert!(
            op.acc.contains(2.6) && op.acc.contains(-1.8),
            "{:?}",
            op.acc
        );
        assert!(!op.acc.contains(2.7), "{:?}", op.acc);
        assert!(op.error > 0.0 && op.error < 1e-2, "error {}", op.error);
        assert_eq!(plan.output_error, op.error);
    }

    #[test]
    fn unfactorable_table_licenses_as_gather() {
        // Corrupt one product so the row no longer factors.
        let mut program = tiny(&[-0.5, 1.0]);
        let floats = program.floats.to_mut();
        floats[4] += 0.001; // row 0, column 0
        let plan = quantize_plan(&program);
        let OpQuant::Licensed(op) = &plan.ops[0] else {
            panic!("expected license, got {:?}", plan.ops[0]);
        };
        assert_eq!(op.mode, QuantMode::Gather);
        assert!(op.wvals.is_empty());
    }

    #[test]
    fn huge_values_fall_back() {
        let plan = quantize_plan(&tiny(&[1.0e9, 1.0]));
        assert_eq!(plan.licensed(), 0);
        assert_eq!(
            plan.ops[0],
            OpQuant::Fallback(FallbackReason::ValueRangeTooWide)
        );
        assert_eq!(plan.output_error, 0.0);
    }

    #[test]
    fn non_finite_table_falls_back() {
        let mut program = tiny(&[-0.5, 1.0]);
        program.floats.to_mut()[5] = f32::NAN;
        let plan = quantize_plan(&program);
        assert_eq!(plan.ops[0], OpQuant::Fallback(FallbackReason::NonFinite));
    }

    #[test]
    fn broken_spans_never_panic() {
        let mut program = tiny(&[-0.5, 1.0]);
        if let Op::Dense { weight_codes, .. } = &mut program.ops[0] {
            weight_codes.len = usize::MAX;
        }
        let plan = quantize_plan(&program);
        assert_eq!(plan.ops[0], OpQuant::Fallback(FallbackReason::Invalid));
    }

    #[test]
    fn encoded_output_gets_a_lut_finish() {
        let mut program = tiny(&[-0.5, 1.0]);
        // Re-encode through the virtual book to force a LUT finish.
        if let Op::Dense { encoder, .. } = &mut program.ops[0] {
            *encoder = Some(Span { start: 0, len: 4 });
        }
        let plan = quantize_plan(&program);
        let OpQuant::Licensed(op) = &plan.ops[0] else {
            panic!("expected license, got {:?}", plan.ops[0]);
        };
        let FinishPlan::Lut { lo_q, shift, len } = op.finish else {
            panic!("expected lut finish, got {:?}", op.finish);
        };
        assert_eq!(shift, op.acc_frac - 8);
        assert!(len <= MAX_LUT_LEN && len > 0);
        // The bucketed domain covers the proven accumulator hull.
        let step = 1i64 << shift;
        let hi_q = lo_q + step * (len as i64 - 1);
        let scale = exp2(op.acc_frac);
        assert!((lo_q as f64) / scale <= op.acc.lo);
        assert!((hi_q as f64) / scale >= op.acc.hi);
        // Encoding adds the book's contraction defect to the bound.
        assert!(op.error >= 2.0 * 0.75, "error {}", op.error);
    }

    #[test]
    fn error_bound_composes_across_ops() {
        // Two stacked dense layers: the second op's bound must include
        // the first op's deviation amplified by the fan-in.
        let book = [-1.0f32, 0.0, 0.5, 2.0];
        let mut floats = book.to_vec();
        let t1 = floats.len();
        for &w in &[-0.5f32, 1.0] {
            for &b in &book {
                floats.push(w * b);
            }
        }
        let b1 = floats.len();
        floats.extend_from_slice(&[0.0, 0.0]);
        let t2 = floats.len();
        for &w in &[0.25f32, 0.75] {
            for &b in &book {
                floats.push(w * b);
            }
        }
        let b2 = floats.len();
        floats.push(0.0);
        let program = Program {
            input_features: 2,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 4 },
            ops: vec![
                Op::Dense {
                    inputs: 2,
                    outputs: 2,
                    weight_codes: Span { start: 0, len: 4 },
                    bias: Span { start: b1, len: 2 },
                    table: TableRef {
                        offset: t1,
                        weight_count: 2,
                        input_count: 4,
                    },
                    act: Act::Relu,
                    encoder: Some(Span { start: 0, len: 4 }),
                },
                Op::Dense {
                    inputs: 2,
                    outputs: 1,
                    weight_codes: Span { start: 4, len: 2 },
                    bias: Span { start: b2, len: 1 },
                    table: TableRef {
                        offset: t2,
                        weight_count: 2,
                        input_count: 4,
                    },
                    act: Act::Identity,
                    encoder: None,
                },
            ],
            floats: Cow::Owned(floats),
            codes: Cow::Owned(vec![0, 1, 1, 0, 0, 1]),
            packed: vec![],
        };
        let plan = quantize_plan(&program);
        assert_eq!(plan.licensed(), 2, "{:?}", plan.ops);
        let (OpQuant::Licensed(op1), OpQuant::Licensed(op2)) = (&plan.ops[0], &plan.ops[1]) else {
            panic!("expected two licenses");
        };
        assert!(op1.error > 0.0);
        // op2 sees op1's deviation: its bound strictly exceeds its own
        // standalone quantization noise.
        assert!(op2.error > op2.acc_error || op2.acc_error > op1.error);
        assert!(plan.output_error.is_finite());
        assert_eq!(plan.output_error, op2.error);
    }

    #[test]
    fn conv_downstream_of_license_is_unbounded() {
        use crate::program::Geom;
        let mut program = tiny(&[-0.5, 1.0]);
        if let Op::Dense { encoder, .. } = &mut program.ops[0] {
            *encoder = Some(Span { start: 0, len: 4 });
        }
        program.ops.push(Op::Conv {
            geom: Geom {
                in_channels: 1,
                in_height: 1,
                in_width: 1,
                kernel_h: 1,
                kernel_w: 1,
                stride: 1,
                pad: 0,
                out_height: 1,
                out_width: 1,
            },
            out_channels: 1,
            weight_codes: Span { start: 0, len: 1 },
            bias: Span { start: 8, len: 1 },
            tables: vec![TableRef {
                offset: 40, // out of bounds on purpose: lip is unknowable
                weight_count: 1,
                input_count: 4,
            }],
            zero_code: 0,
            act: Act::Identity,
            encoder: None,
        });
        let plan = quantize_plan(&program);
        assert_eq!(
            plan.ops[1],
            OpQuant::Fallback(FallbackReason::UnsupportedOp)
        );
        assert!(plan.output_error.is_infinite());
    }
}
