//! Static verifier for compiled RAPIDNN models.
//!
//! RAPIDNN inference is a *finite* computation: every multiply is a
//! bounded product-table lookup, every activation a nearest-distance
//! search over a finite LUT, every accumulation a counter of statically
//! known width. That finiteness makes correctness of a compiled model
//! statically decidable, and this crate decides it: an abstract
//! interpretation over the flattened op program with an interval
//! domain ([`Interval`]) for decoded values and contiguous
//! reachable-code ranges for encoded values.
//!
//! Per op the checker proves:
//!
//! * **index soundness** — every encoded index stays in bounds for its
//!   table: span bounds, weight codes vs table rows, code domains vs
//!   table columns, codebooks within the 16-bit index range, pool
//!   geometry with the padded-pool sentinel (`error`s);
//! * **bit-width feasibility** — fan-in vs the occurrence counters and
//!   worst-case partial-sum magnitude vs the fixed-point accumulator
//!   word of the modeled accelerator datapath
//!   ([`rapidnn_accel::DatapathModel`], `warning`s);
//! * **finiteness** — no reachable centroid, product, bias, or LUT
//!   entry is NaN/Inf, so neither can propagate to outputs (`error`s);
//! * **liveness** — dead codebook entries, unreferenced product-table
//!   rows, dead columns and LUT rows (`warning`s/`note`s). The op list
//!   is a straight line, so op-level reachability is trivial; liveness
//!   findings are about dead *data*.
//!
//! Findings are collected into a [`Report`] of rustc-style
//! [`Diagnostic`]s. The serving crate (`rapidnn-serve`) lowers its
//! `CompiledModel` into the [`Program`] IR for strict loading, and
//! [`Program::from_reinterpreted`] lowers the composer's stage graph so
//! pipelines can be linted before compilation
//! (`PipelineReport::analyze()` in the `rapidnn` facade).
//!
//! # Examples
//!
//! ```
//! use rapidnn_analyze::{analyze, Program, Span};
//! use std::borrow::Cow;
//!
//! // A degenerate program: encode 2 features through a 2-entry book
//! // and never decode them.
//! let program = Program {
//!     input_features: 2,
//!     output_features: 2,
//!     virtual_encoder: Span { start: 0, len: 2 },
//!     ops: vec![],
//!     floats: Cow::Owned(vec![-1.0, 1.0]),
//!     codes: Cow::Owned(vec![]),
//!     packed: vec![],
//! };
//! let report = analyze(&program);
//! assert!(report.has_errors()); // ends in the encoded domain
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod cost;
mod diag;
mod interval;
mod optimize;
mod program;
mod quant;

pub use checker::{analyze, analyze_with};
pub use cost::{op_costs, OpCost};
pub use diag::{DiagCode, Diagnostic, LivenessCounts, Report, Severity};
pub use interval::{f32_sum_slack, Interval};
pub use optimize::{
    inject_dead_rows, optimize, validate_certificate, Certificate, OpRemap, Optimized, Pass,
    PassRecord,
};
pub use program::{Act, Geom, Op, PackedSection, Program, Span, TableRef};
pub use quant::{
    quantize_plan, quantize_plan_with, FallbackReason, FinishPlan, LicensedOp, OpQuant, QuantMode,
    QuantPlan,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    /// Hand-built single-dense-layer program:
    /// 2 inputs -> encode through a 4-entry book -> dense(2 -> 1,
    /// 2x4 product table, relu) -> floats out.
    fn tiny() -> Program<'static> {
        let mut floats = vec![-1.0, 0.0, 0.5, 2.0]; // virtual encoder book
        let table_offset = floats.len();
        // 2 weight rows x 4 input columns.
        floats.extend_from_slice(&[
            -0.5, 0.0, 0.25, 1.0, // w0 * book
            1.0, 0.0, -0.5, -2.0, // w1 * book
        ]);
        let bias_offset = floats.len();
        floats.push(0.125);
        Program {
            input_features: 2,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 4 },
            ops: vec![Op::Dense {
                inputs: 2,
                outputs: 1,
                weight_codes: Span { start: 0, len: 2 },
                bias: Span {
                    start: bias_offset,
                    len: 1,
                },
                table: TableRef {
                    offset: table_offset,
                    weight_count: 2,
                    input_count: 4,
                },
                act: Act::Relu,
                encoder: None,
            }],
            floats: Cow::Owned(floats),
            codes: Cow::Owned(vec![0, 1]),
            packed: vec![],
        }
    }

    #[test]
    fn clean_program_is_clean() {
        let report = analyze(&tiny());
        assert!(!report.has_errors(), "{report}");
        // Both rows used, full domain reachable: no liveness findings.
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn weight_code_out_of_range_is_flagged() {
        let mut p = tiny();
        p.codes.to_mut()[1] = 7; // only 2 rows exist
        let report = analyze(&p);
        assert!(
            report.find(DiagCode::IndexOutOfBounds).is_some(),
            "{report}"
        );
    }

    #[test]
    fn nan_in_reachable_table_entry_is_an_error() {
        let mut p = tiny();
        p.floats.to_mut()[5] = f32::NAN; // w0 column 1, reachable
        let report = analyze(&p);
        let d = report.find(DiagCode::NonFinite).expect("flagged");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.op, Some(0));
    }

    #[test]
    fn nan_in_bias_is_an_error() {
        let mut p = tiny();
        let bias = p.floats.len() - 1;
        p.floats.to_mut()[bias] = f32::INFINITY;
        let report = analyze(&p);
        assert!(report.find(DiagCode::NonFinite).is_some(), "{report}");
    }

    #[test]
    fn oversized_codebook_is_typed() {
        let mut p = tiny();
        p.virtual_encoder = Span {
            start: 0,
            len: (1 << 16) + 1,
        };
        // The span must exist for the cap check to be reached.
        p.floats.to_mut().resize((1 << 16) + 1, 0.0);
        let report = analyze(&p);
        assert!(
            report.find(DiagCode::OversizedCodebook).is_some(),
            "{report}"
        );
    }

    #[test]
    fn padded_pool_is_typed() {
        let mut p = tiny();
        // Geometry is self-consistent (out dims follow from pad = 1),
        // so the *only* finding is the padded-pool sentinel.
        p.ops = vec![Op::MaxPool(Geom {
            in_channels: 1,
            in_height: 2,
            in_width: 1,
            kernel_h: 2,
            kernel_w: 1,
            stride: 1,
            pad: 1,
            out_height: 3,
            out_width: 3,
        })];
        p.input_features = 2;
        p.output_features = 9;
        let report = analyze(&p);
        let d = report.find(DiagCode::PaddedPool).expect("flagged");
        assert_eq!(d.severity, Severity::Error);
        assert!(!d.notes.is_empty());
    }

    #[test]
    fn shape_mismatch_and_end_domain() {
        let mut p = tiny();
        p.output_features = 9;
        let report = analyze(&p);
        assert!(report.find(DiagCode::ShapeMismatch).is_some(), "{report}");

        let mut p = tiny();
        p.ops.clear();
        p.output_features = 2;
        let report = analyze(&p);
        assert!(report.find(DiagCode::DomainMismatch).is_some(), "{report}");
    }

    #[test]
    fn unsorted_codebook_warns_without_error() {
        let mut p = tiny();
        p.floats.to_mut()[..4].copy_from_slice(&[2.0, -1.0, 0.5, 0.0]);
        let report = analyze(&p);
        assert!(!report.has_errors(), "{report}");
        assert!(
            report.find(DiagCode::UnsortedCodebook).is_some(),
            "{report}"
        );
    }

    #[test]
    fn dead_rows_and_entries_are_noted() {
        let mut p = tiny();
        p.codes.to_mut().copy_from_slice(&[0, 0]); // row 1 never used
        let report = analyze(&p);
        assert!(!report.has_errors(), "{report}");
        assert!(report.find(DiagCode::DeadTableRows).is_some(), "{report}");
    }

    #[test]
    fn accumulator_warning_on_huge_magnitudes() {
        let mut p = tiny();
        // Blow up the product table far past the Q8.8 range.
        for v in &mut p.floats.to_mut()[4..12] {
            *v *= 1.0e4;
        }
        let report = analyze(&p);
        assert!(!report.has_errors(), "{report}");
        assert!(
            report.find(DiagCode::AccumulatorOverflow).is_some(),
            "{report}"
        );
    }

    #[test]
    fn packed_section_lints_are_typed() {
        let section = |width_bits, code_len, padding_clear| PackedSection {
            code_start: 0,
            code_len,
            width_bits,
            padding_clear,
        };

        // A faithful packed description of tiny() is clean: one section
        // covering both weight codes at the 1-bit width its 2-row table
        // implies.
        let mut p = tiny();
        p.packed = vec![section(1, 2, true)];
        assert!(analyze(&p).is_clean(), "{}", analyze(&p));

        // Width disagreeing with the table's row count.
        let mut p = tiny();
        p.packed = vec![section(4, 2, true)];
        let report = analyze(&p);
        assert!(
            report.find(DiagCode::PackedWidthMismatch).is_some(),
            "{report}"
        );

        // Op span not coinciding with any section.
        let mut p = tiny();
        p.packed = vec![section(1, 1, true)];
        let report = analyze(&p);
        assert!(
            report.find(DiagCode::PackedLayoutInvalid).is_some(),
            "{report}"
        );

        // Non-zero trailing pad bits.
        let mut p = tiny();
        p.packed = vec![section(1, 2, false)];
        let report = analyze(&p);
        assert!(
            report.find(DiagCode::PackedTrailingBits).is_some(),
            "{report}"
        );
    }

    #[test]
    fn composed_network_analyzes_clean() {
        use rapidnn_core::{ReinterpretOptions, ReinterpretedNetwork};
        use rapidnn_data::SyntheticSpec;
        use rapidnn_nn::{Activation, ActivationLayer, Dense, Network};
        use rapidnn_tensor::SeededRng;

        let mut rng = SeededRng::new(11);
        let mut net = Network::new(5);
        net.push(Dense::new(5, 8, &mut rng));
        net.push(ActivationLayer::new(Activation::Sigmoid));
        net.push(Dense::new(8, 2, &mut rng));
        let data = SyntheticSpec::new(5, 2, 2.0)
            .generate(30, &mut rng)
            .unwrap();
        let opts = ReinterpretOptions {
            weight_clusters: 8,
            input_clusters: 8,
            ..ReinterpretOptions::default()
        };
        let network =
            ReinterpretedNetwork::build(&mut net, data.inputs(), &opts, &mut rng).unwrap();
        let program = Program::from_reinterpreted(&network);
        let report = analyze(&program);
        assert!(!report.has_errors(), "{report}");
    }
}
