//! The analyzer's neutral program representation.
//!
//! [`Program`] mirrors the flattened op layout of
//! `rapidnn_serve::CompiledModel` — two contiguous pools plus a linear
//! op list — but with public fields and borrowed pools, so both halves
//! of the pipeline can be analyzed by one checker: the serving crate
//! lowers its compiled artifacts into a `Program`, and
//! [`Program::from_reinterpreted`] lowers the composer's stage graph
//! directly. Keeping the IR here (rather than depending on the serving
//! crate) is what lets `rapidnn-serve` depend on the analyzer for
//! strict loading without a crate cycle.

use rapidnn_core::{ActivationTable, ReinterpretedNetwork, Stage, StageKind};
use rapidnn_nn::Activation;
use std::borrow::Cow;

/// A `(start, len)` view into one of the program's pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First element index.
    pub start: usize,
    /// Element count.
    pub len: usize,
}

/// A flattened `w x u` product table inside the float pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRef {
    /// First element index of row 0 in the float pool.
    pub offset: usize,
    /// Number of weight rows (`w`).
    pub weight_count: usize,
    /// Number of input columns (`u`).
    pub input_count: usize,
}

/// Activation step of a neuron op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Act {
    /// Exact pass-through.
    Identity,
    /// Exact comparator ReLU.
    Relu,
    /// Nearest-input lookup: `inputs` sorted, aligned with `outputs`.
    Lookup {
        /// Sorted probe values.
        inputs: Span,
        /// Output value per probe row.
        outputs: Span,
    },
}

/// Convolution / pooling window geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geom {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub pad: usize,
    /// Output height.
    pub out_height: usize,
    /// Output width.
    pub out_width: usize,
}

impl Geom {
    /// Flattened input volume.
    pub fn in_volume(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }

    /// Output pixels per channel.
    pub fn out_pixels(&self) -> usize {
        self.out_height * self.out_width
    }

    /// Elements in one convolution patch.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// One step of the flattened inference program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Fully connected stage.
    Dense {
        /// Expected input width.
        inputs: usize,
        /// Output neuron count.
        outputs: usize,
        /// `outputs x inputs` weight codes in the code pool.
        weight_codes: Span,
        /// Per-output bias in the float pool.
        bias: Span,
        /// Shared product table.
        table: TableRef,
        /// Activation step.
        act: Act,
        /// Re-encoder codebook; `None` for the output stage.
        encoder: Option<Span>,
    },
    /// Convolution stage.
    Conv {
        /// Window geometry.
        geom: Geom,
        /// Output channels.
        out_channels: usize,
        /// `out_channels x patch_len` weight codes.
        weight_codes: Span,
        /// Per-channel bias.
        bias: Span,
        /// One product table per output channel.
        tables: Vec<TableRef>,
        /// Input code standing in for zero padding.
        zero_code: u16,
        /// Activation step.
        act: Act,
        /// Re-encoder codebook; `None` for the output stage.
        encoder: Option<Span>,
    },
    /// Max pooling directly on encoded values.
    MaxPool(Geom),
    /// Average pooling: decode, window-average, re-encode.
    AvgPool {
        /// Window geometry.
        geom: Geom,
        /// Codebook of the values flowing through the pool.
        codebook: Span,
    },
    /// Snapshot of decoded skip values for a residual join.
    ResidualBegin {
        /// Codebook of the skip-path codes.
        skip_codebook: Span,
    },
    /// Residual join: branch floats plus the popped skip snapshot.
    ResidualEnd {
        /// Re-encoder for the joined values; `None` at network output.
        encoder: Option<Span>,
    },
}

/// One bit-packed code section of a format-v2 artifact, as surfaced to
/// the analyzer: which code-pool range it holds, how many bits each
/// code is packed with, and whether the stream's trailing pad bits are
/// zero. The checker lints these directly ([`crate::DiagCode`]s
/// RNA0013/RNA0014); byte-level directory framing is checked by the
/// serving decoder before a `Program` exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedSection {
    /// First code-pool index the section holds.
    pub code_start: usize,
    /// Number of codes in the section.
    pub code_len: usize,
    /// Bits per code, `1..=16`.
    pub width_bits: u32,
    /// Whether the unused high bits of the section's final stream byte
    /// are zero.
    pub padding_clear: bool,
}

/// A flattened inference program over borrowed (or owned) pools — the
/// analyzer's input.
#[derive(Debug, Clone, PartialEq)]
pub struct Program<'a> {
    /// Input feature width.
    pub input_features: usize,
    /// Output feature width.
    pub output_features: usize,
    /// Virtual input-layer codebook in the float pool.
    pub virtual_encoder: Span,
    /// The linear op program.
    pub ops: Vec<Op>,
    /// All f32 data: codebooks, product tables, LUTs, biases.
    pub floats: Cow<'a, [f32]>,
    /// All encoded weights.
    pub codes: Cow<'a, [u16]>,
    /// Bit-packed section layout of the code pool, in ascending
    /// `code_start` order. Empty for wide (v1 / in-memory) pools, in
    /// which case the packed-form lints are skipped.
    pub packed: Vec<PackedSection>,
}

impl Program<'_> {
    /// Lowers a composed network's stage graph into the flat IR so the
    /// checker can analyze pipelines before they are ever compiled into
    /// a serving artifact. Mirrors the serving crate's flattener (the
    /// round-trip equivalence is pinned by a test over there).
    pub fn from_reinterpreted(network: &ReinterpretedNetwork) -> Program<'static> {
        let mut b = Builder::default();
        let virtual_encoder = b.push_floats(network.virtual_encoder().target().values());
        for stage in network.stages() {
            b.lower_stage(stage);
        }
        Program {
            input_features: network.input_features(),
            output_features: network.output_features(),
            virtual_encoder,
            ops: b.ops,
            floats: Cow::Owned(b.floats),
            codes: Cow::Owned(b.codes),
            packed: Vec::new(),
        }
    }
}

#[derive(Default)]
struct Builder {
    floats: Vec<f32>,
    codes: Vec<u16>,
    ops: Vec<Op>,
}

impl Builder {
    fn push_floats(&mut self, values: &[f32]) -> Span {
        let start = self.floats.len();
        self.floats.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn push_codes(&mut self, values: &[u16]) -> Span {
        let start = self.codes.len();
        self.codes.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn lower_act(&mut self, act: &ActivationTable) -> Act {
        // Only ReLU and identity have exact compiled forms today; an
        // exact table of any other activation still carries its sampled
        // rows, so lowering it as a lookup stays faithful.
        match (act.is_exact(), act.activation()) {
            (true, Activation::Relu) => Act::Relu,
            (true, Activation::Identity) => Act::Identity,
            _ => Act::Lookup {
                inputs: self.push_floats(act.inputs()),
                outputs: self.push_floats(act.outputs()),
            },
        }
    }

    fn lower_stage(&mut self, stage: &Stage) {
        match stage {
            Stage::Neuron(s) => {
                let weight_codes = self.push_codes(s.weight_codes());
                let bias = self.push_floats(s.bias());
                let act = self.lower_act(s.activation());
                let encoder = s.encoder().map(|e| self.push_floats(e.target().values()));
                match *s.kind() {
                    StageKind::Dense { inputs, outputs } => {
                        let t = &s.product_tables()[0];
                        let span = self.push_floats(t.products());
                        self.ops.push(Op::Dense {
                            inputs,
                            outputs,
                            weight_codes,
                            bias,
                            table: TableRef {
                                offset: span.start,
                                weight_count: t.weight_count(),
                                input_count: t.input_count(),
                            },
                            act,
                            encoder,
                        });
                    }
                    StageKind::Conv {
                        geometry,
                        out_channels,
                    } => {
                        let tables = s
                            .product_tables()
                            .iter()
                            .map(|t| {
                                let span = self.push_floats(t.products());
                                TableRef {
                                    offset: span.start,
                                    weight_count: t.weight_count(),
                                    input_count: t.input_count(),
                                }
                            })
                            .collect();
                        self.ops.push(Op::Conv {
                            geom: geom_of(&geometry),
                            out_channels,
                            weight_codes,
                            bias,
                            tables,
                            zero_code: s.zero_code(),
                            act,
                            encoder,
                        });
                    }
                }
            }
            Stage::MaxPool(g) => self.ops.push(Op::MaxPool(geom_of(g))),
            Stage::AvgPool { geometry, codebook } => {
                let codebook = self.push_floats(codebook.values());
                self.ops.push(Op::AvgPool {
                    geom: geom_of(geometry),
                    codebook,
                });
            }
            Stage::Residual {
                branch,
                input_codebook,
                join_encoder,
            } => {
                let skip_codebook = self.push_floats(input_codebook.values());
                self.ops.push(Op::ResidualBegin { skip_codebook });
                for inner in branch {
                    self.lower_stage(inner);
                }
                let encoder = join_encoder
                    .as_ref()
                    .map(|e| self.push_floats(e.target().values()));
                self.ops.push(Op::ResidualEnd { encoder });
            }
        }
    }
}

fn geom_of(g: &rapidnn_tensor::Conv2dGeometry) -> Geom {
    Geom {
        in_channels: g.in_channels,
        in_height: g.in_height,
        in_width: g.in_width,
        kernel_h: g.kernel_h,
        kernel_w: g.kernel_w,
        stride: g.stride,
        pad: g.pad,
        out_height: g.out_height,
        out_width: g.out_width,
    }
}
