//! The abstract interpreter.
//!
//! One forward walk over the op program tracks, per program point, the
//! value-vector *width*, the *domain* (encoded codes vs decoded
//! floats), and for each an abstract value:
//!
//! * decoded values carry an [`Interval`] hull;
//! * encoded values carry the codebook, the reachable code range
//!   (contiguous, because nearest-encode over a sorted book is
//!   monotone in the probe — see `rapidnn_core::nearest`), and the
//!   interval of the representatives that range decodes to.
//!
//! The walk proves the structural invariants the serving runtime's
//! `validate` relies on (span bounds, code domains, geometry, width
//! chaining — every check there has a mirror here, as an `error`), and
//! layers value-level findings on top: non-finite reachable entries
//! (`error`), hardware bit-width exceedances against
//! [`DatapathModel`] (`warning`), and liveness — dead codebook
//! entries, unused product-table rows, dead columns and LUT rows
//! (`warning`/`note`). Ops form a straight line, so every op is
//! reachable by construction; liveness findings are about dead *data*.
//!
//! The walk stops at the first `error`: later ops would be analyzed
//! against a flow state the error already invalidated.

use crate::diag::{DiagCode, Diagnostic, Report};
use crate::interval::Interval;
use crate::program::{Act, Geom, Op, PackedSection, Program, Span, TableRef};
use rapidnn_accel::DatapathModel;
use rapidnn_core::nearest::{load_keys, nearest_range};

/// Mirror of the serving format's extent cap (`1 << 31`): no single
/// dimension may exceed it, keeping index arithmetic far from overflow.
const MAX_EXTENT: u64 = 1 << 31;
/// Mirror of the serving format's codebook cap: codes are `u16`, so a
/// longer book would make nearest-encode silently wrap indices.
const MAX_CODEBOOK_LEN: usize = 1 << 16;

/// Bits needed to address `rows` rows: mirror of the serving writer's
/// width rule (`ceil(log2(rows))`, minimum 1, capped at 16 because
/// codes are `u16`).
fn bits_for(rows: usize) -> u32 {
    let top = rows.max(2) - 1;
    (usize::BITS - top.leading_zeros()).min(16)
}

/// Analyzes `program` against the paper's Table 1 datapath widths.
pub fn analyze(program: &Program<'_>) -> Report {
    analyze_with(program, DatapathModel::paper())
}

/// Analyzes `program` against an explicit hardware datapath model.
pub fn analyze_with(program: &Program<'_>, datapath: DatapathModel) -> Report {
    let mut checker = Checker {
        input_features: program.input_features,
        output_features: program.output_features,
        virtual_encoder: program.virtual_encoder,
        ops: &program.ops,
        floats: &program.floats,
        codes: &program.codes,
        packed: &program.packed,
        datapath,
        report: Report::new(),
    };
    // The Err case carries no data: the fatal diagnostic is already in
    // the report when the walk unwinds.
    let _ = checker.run();
    checker.report
}

/// A checked codebook: bounds-valid, non-empty, addressable, finite.
struct Book {
    span: Span,
    /// Sorted by `total_cmp`? When false the nearest map is not
    /// monotone and reachability falls back to the full range.
    sorted: bool,
    /// Hull of every entry.
    interval: Interval,
    /// Total-order keys for [`nearest_range`] (empty when unsorted).
    keys: Vec<i32>,
}

impl Book {
    fn len(&self) -> usize {
        self.span.len
    }
}

/// Abstract state of the value vector between ops.
#[derive(Clone, Copy)]
enum Flow {
    /// Encoded: codes in `reach` (inclusive) over a `domain`-entry
    /// book, decoding into `interval`.
    Codes {
        domain: usize,
        reach: (usize, usize),
        interval: Interval,
    },
    /// Decoded floats bounded by `interval`.
    Floats { interval: Interval },
}

struct Checker<'p> {
    input_features: usize,
    output_features: usize,
    virtual_encoder: Span,
    ops: &'p [Op],
    floats: &'p [f32],
    codes: &'p [u16],
    packed: &'p [PackedSection],
    datapath: DatapathModel,
    report: Report,
}

/// Fatal-error sentinel: the diagnostic is already reported.
struct Halt;

impl<'p> Checker<'p> {
    fn error(&mut self, code: DiagCode, op: Option<usize>, msg: String) -> Halt {
        self.report.push(Diagnostic::new(code, op, msg));
        Halt
    }

    fn warn(&mut self, code: DiagCode, op: Option<usize>, msg: String) {
        self.report.push(Diagnostic::new(code, op, msg));
    }

    // ------------------------------------------------------------------
    // Structural primitives (each mirrors a `validate` check in
    // rapidnn-serve; an `error` here must imply rejection there would
    // not have been *weaker* — see the subsumption test in that crate).
    // ------------------------------------------------------------------

    fn floats_span(&mut self, op: Option<usize>, s: Span, what: &str) -> Result<&'p [f32], Halt> {
        match s.start.checked_add(s.len) {
            Some(end) if end <= self.floats.len() => Ok(&self.floats[s.start..s.start + s.len]),
            _ => Err(self.error(
                DiagCode::SpanOutOfBounds,
                op,
                format!(
                    "{what}: float span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.floats.len()
                ),
            )),
        }
    }

    fn codes_span(&mut self, op: Option<usize>, s: Span, what: &str) -> Result<&'p [u16], Halt> {
        match s.start.checked_add(s.len) {
            Some(end) if end <= self.codes.len() => Ok(&self.codes[s.start..s.start + s.len]),
            _ => Err(self.error(
                DiagCode::SpanOutOfBounds,
                op,
                format!(
                    "{what}: code span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.codes.len()
                ),
            )),
        }
    }

    /// Checks a codebook span: in bounds, non-empty, addressable by a
    /// `u16` code, every entry finite. Unsortedness is a warning (the
    /// runtime stays in bounds, but reachability degrades to the full
    /// range).
    fn codebook(&mut self, op: Option<usize>, s: Span, what: &str) -> Result<Book, Halt> {
        let values = self.floats_span(op, s, what)?;
        if values.is_empty() {
            return Err(self.error(DiagCode::EmptyTable, op, format!("{what}: empty codebook")));
        }
        if values.len() > MAX_CODEBOOK_LEN {
            return Err(self.error(
                DiagCode::OversizedCodebook,
                op,
                format!(
                    "{what}: codebook holds {} values, 16-bit codes address at most {}",
                    values.len(),
                    MAX_CODEBOOK_LEN
                ),
            ));
        }
        let Some(interval) = Interval::of_slice(values) else {
            let bad = values.iter().find(|v| !v.is_finite()).copied();
            return Err(self.error(
                DiagCode::NonFinite,
                op,
                format!(
                    "{what}: codebook contains non-finite centroid {}",
                    bad.map_or_else(|| "?".into(), |v| v.to_string())
                ),
            ));
        };
        let sorted = values
            .windows(2)
            .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater);
        let mut keys = Vec::new();
        if sorted {
            load_keys(&mut keys, values);
        } else {
            self.warn(
                DiagCode::UnsortedCodebook,
                op,
                format!("{what}: codebook is not sorted; treating every entry as reachable"),
            );
        }
        Ok(Book {
            span: s,
            sorted,
            interval,
            keys,
        })
    }

    /// Mirror of `validate_geom`: dimensions non-zero and capped,
    /// output dims recomputed from input/kernel/stride/pad, volumes
    /// capped.
    fn check_geom(&mut self, op: usize, g: &Geom, label: &str) -> Result<(), Halt> {
        let dims = [
            g.in_channels,
            g.in_height,
            g.in_width,
            g.kernel_h,
            g.kernel_w,
            g.stride,
        ];
        if dims.contains(&0) {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!("{label}: geometry has a zero dimension"),
            ));
        }
        let all = [
            g.in_channels,
            g.in_height,
            g.in_width,
            g.kernel_h,
            g.kernel_w,
            g.stride,
            g.pad,
            g.out_height,
            g.out_width,
        ];
        if all.iter().any(|&d| d as u64 > MAX_EXTENT) {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!("{label}: geometry dimension too large"),
            ));
        }
        let padded_h = g.in_height + 2 * g.pad;
        let padded_w = g.in_width + 2 * g.pad;
        if padded_h < g.kernel_h || padded_w < g.kernel_w {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!(
                    "{label}: {}x{} kernel larger than padded {padded_h}x{padded_w} input",
                    g.kernel_h, g.kernel_w
                ),
            ));
        }
        if g.out_height != (padded_h - g.kernel_h) / g.stride + 1
            || g.out_width != (padded_w - g.kernel_w) / g.stride + 1
        {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!(
                    "{label}: declared {}x{} output inconsistent with geometry",
                    g.out_height, g.out_width
                ),
            ));
        }
        let volume = g.in_channels as u64 * g.in_height as u64 * g.in_width as u64;
        let out_volume = g.in_channels as u64 * g.out_height as u64 * g.out_width as u64;
        let patch = g.in_channels as u64 * g.kernel_h as u64 * g.kernel_w as u64;
        if volume > MAX_EXTENT || out_volume > MAX_EXTENT || patch > MAX_EXTENT {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!("{label}: geometry volume too large"),
            ));
        }
        Ok(())
    }

    /// A pool geometry additionally requires zero padding: pool kernels
    /// index `data[ch*h*w + (oy*s+kh)*w + ox*s+kw]` without padding, so
    /// any non-zero pad reads out of bounds (PR 1 panic class).
    fn check_pool_geom(
        &mut self,
        op: usize,
        g: &Geom,
        width: usize,
        label: &str,
    ) -> Result<usize, Halt> {
        self.check_geom(op, g, label)?;
        if g.pad != 0 {
            let diag = Diagnostic::new(
                DiagCode::PaddedPool,
                Some(op),
                format!(
                    "{label}: pool declares padding {} but pool kernels index without padding",
                    g.pad
                ),
            )
            .with_note(format!(
                "{}x{}x{} input, {}x{} kernel, stride {} -> {}x{} output",
                g.in_channels,
                g.in_height,
                g.in_width,
                g.kernel_h,
                g.kernel_w,
                g.stride,
                g.out_height,
                g.out_width
            ));
            self.report.push(diag);
            return Err(Halt);
        }
        if g.in_volume() != width {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                Some(op),
                format!(
                    "{label}: pool expects {} inputs, flow width is {width}",
                    g.in_volume()
                ),
            ));
        }
        match g.in_channels.checked_mul(g.out_pixels()) {
            Some(w) => Ok(w),
            None => Err(self.error(
                DiagCode::SpanOutOfBounds,
                Some(op),
                format!("{label}: output volume overflows"),
            )),
        }
    }

    /// Mirror of `check_table` plus the dead-column note: non-empty,
    /// in bounds, and wide enough for every upstream code.
    fn check_table(
        &mut self,
        op: usize,
        t: &TableRef,
        domain: usize,
        label: &str,
    ) -> Result<(), Halt> {
        if t.weight_count == 0 || t.input_count == 0 {
            return Err(self.error(
                DiagCode::EmptyTable,
                Some(op),
                format!("{label}: empty product table"),
            ));
        }
        let Some(len) = t.weight_count.checked_mul(t.input_count) else {
            return Err(self.error(
                DiagCode::SpanOutOfBounds,
                Some(op),
                format!("{label}: product table size overflows"),
            ));
        };
        self.floats_span(
            Some(op),
            Span {
                start: t.offset,
                len,
            },
            &format!("{label}: product table"),
        )?;
        if t.input_count < domain {
            return Err(self.error(
                DiagCode::IndexOutOfBounds,
                Some(op),
                format!(
                    "{label}: product table addresses {} input codes, upstream domain is {domain}",
                    t.input_count
                ),
            ));
        }
        if t.input_count > domain {
            self.report.push(Diagnostic::new(
                DiagCode::DeadTableColumns,
                Some(op),
                format!(
                    "{label}: {} of {} product-table columns lie beyond the {domain}-entry input codebook",
                    t.input_count - domain,
                    t.input_count
                ),
            ));
        }
        Ok(())
    }

    /// Bias span: in bounds, expected length, finite.
    fn check_bias(
        &mut self,
        op: usize,
        s: Span,
        expected: usize,
        label: &str,
    ) -> Result<&'p [f32], Halt> {
        if s.len != expected {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                Some(op),
                format!("{label}: bias holds {} values, expected {expected}", s.len),
            ));
        }
        let bias = self.floats_span(Some(op), s, &format!("{label}: bias"))?;
        if let Some((j, &v)) = bias.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(self.error(
                DiagCode::NonFinite,
                Some(op),
                format!("{label}: bias[{j}] is {v}"),
            ));
        }
        Ok(bias)
    }

    // ------------------------------------------------------------------
    // Value propagation
    // ------------------------------------------------------------------

    /// Inclusive code range reachable when `interval` is nearest-encoded
    /// through `book`. Widened first so `f32` summation order cannot
    /// push a concrete value just past the analytic hull.
    fn reach_of(&self, book: &Book, interval: Interval) -> (usize, usize) {
        if !book.sorted {
            return (0, book.len() - 1);
        }
        let values = &self.floats[book.span.start..book.span.start + book.span.len];
        let w = interval.widened();
        nearest_range(values, &book.keys, w.lo as f32, w.hi as f32)
    }

    /// Encode step: maps a decoded interval through `book`, reporting
    /// entries that can never be selected.
    fn encode(&mut self, op: Option<usize>, book: &Book, interval: Interval, what: &str) -> Flow {
        let reach = self.reach_of(book, interval);
        let live = reach.1 - reach.0 + 1;
        if live < book.len() {
            self.warn(
                DiagCode::DeadCodebookEntries,
                op,
                format!(
                    "{what}: {} of {} codebook entries can never be selected (reachable codes {}..={})",
                    book.len() - live,
                    book.len(),
                    reach.0,
                    reach.1
                ),
            );
        }
        let values = &self.floats[book.span.start + reach.0..=book.span.start + reach.1];
        let interval = Interval::of_slice(values).unwrap_or(book.interval);
        Flow::Codes {
            domain: book.len(),
            reach,
            interval,
        }
    }

    /// Applies an activation step to a pre-activation interval.
    fn apply_act(
        &mut self,
        op: usize,
        act: &Act,
        pre: Interval,
        label: &str,
    ) -> Result<Interval, Halt> {
        match act {
            Act::Identity => Ok(pre),
            Act::Relu => Ok(pre.relu()),
            Act::Lookup { inputs, outputs } => {
                let xs = self.floats_span(Some(op), *inputs, &format!("{label}: LUT inputs"))?;
                let ys = self.floats_span(Some(op), *outputs, &format!("{label}: LUT outputs"))?;
                if xs.is_empty() {
                    return Err(self.error(
                        DiagCode::EmptyTable,
                        Some(op),
                        format!("{label}: activation lookup table is empty"),
                    ));
                }
                if xs.len() != ys.len() {
                    return Err(self.error(
                        DiagCode::ShapeMismatch,
                        Some(op),
                        format!(
                            "{label}: activation LUT misaligned: {} inputs vs {} outputs",
                            xs.len(),
                            ys.len()
                        ),
                    ));
                }
                let sorted = xs
                    .windows(2)
                    .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater);
                let (lo, hi) = if sorted {
                    let mut keys = Vec::new();
                    load_keys(&mut keys, xs);
                    let w = pre.widened();
                    nearest_range(xs, &keys, w.lo as f32, w.hi as f32)
                } else {
                    self.warn(
                        DiagCode::UnsortedCodebook,
                        Some(op),
                        format!("{label}: activation LUT inputs are not sorted; treating every row as reachable"),
                    );
                    (0, xs.len() - 1)
                };
                if hi - lo + 1 < xs.len() {
                    self.report.push(Diagnostic::new(
                        DiagCode::DeadLutRows,
                        Some(op),
                        format!(
                            "{label}: {} of {} activation LUT rows lie outside the reachable pre-activation range [{:.4}, {:.4}]",
                            xs.len() - (hi - lo + 1),
                            xs.len(),
                            pre.lo,
                            pre.hi
                        ),
                    ));
                }
                match Interval::of_slice(&ys[lo..=hi]) {
                    Some(iv) => Ok(iv),
                    None => Err(self.error(
                        DiagCode::NonFinite,
                        Some(op),
                        format!("{label}: reachable activation LUT output is non-finite"),
                    )),
                }
            }
        }
    }

    /// Per-weight-row value hulls of `table` over the live input
    /// columns (`reach`, plus the zero-padding column when `extra_col`
    /// is set), erroring on any non-finite live entry. Rows not marked
    /// `used` are skipped — they are dead data.
    #[allow(clippy::too_many_arguments)]
    fn row_intervals(
        &mut self,
        op: usize,
        table: &TableRef,
        used: &[bool],
        domain: usize,
        reach: (usize, usize),
        extra_col: Option<usize>,
        label: &str,
    ) -> Result<Vec<Option<Interval>>, Halt> {
        // Bounds established by `check_table`.
        let data =
            &self.floats[table.offset..table.offset + table.weight_count * table.input_count];
        let mut rows: Vec<Option<Interval>> = vec![None; table.weight_count];
        let mut bad: Option<(usize, usize, f32)> = None;
        for (w, row_iv) in rows.iter_mut().enumerate() {
            if !used[w] {
                continue;
            }
            let row = &data[w * table.input_count..][..table.input_count];
            let mut iv: Option<Interval> = None;
            for (c, &v) in row.iter().enumerate().take(domain) {
                if !v.is_finite() {
                    bad = Some((w, c, v));
                    break;
                }
                if (c >= reach.0 && c <= reach.1) || extra_col == Some(c) {
                    let p = Interval::point(f64::from(v));
                    iv = Some(iv.map_or(p, |acc| acc.hull(p)));
                }
            }
            if bad.is_some() {
                break;
            }
            *row_iv = iv;
        }
        if let Some((w, c, v)) = bad {
            return Err(self.error(
                DiagCode::NonFinite,
                Some(op),
                format!("{label}: product-table entry [w={w}][x={c}] is {v}"),
            ));
        }
        Ok(rows)
    }

    /// Hardware bit-width findings for one neuron op: fan-in vs the
    /// occurrence counters, worst-case |partial sum| vs the fixed-point
    /// accumulator word.
    fn check_datapath(&mut self, op: usize, edges: usize, worst_mag: f64, label: &str) {
        if edges as u64 > self.datapath.max_count() {
            self.warn(
                DiagCode::CounterOverflow,
                Some(op),
                format!(
                    "{label}: fan-in {edges} exceeds the {}-bit occurrence counters (max count {})",
                    self.datapath.counter_bits,
                    self.datapath.max_count()
                ),
            );
        }
        let cap = self.datapath.max_accumulator_magnitude();
        if worst_mag > cap {
            self.warn(
                DiagCode::AccumulatorOverflow,
                Some(op),
                format!(
                    "{label}: worst-case |partial sum| {worst_mag:.3} exceeds the {}-bit fixed-point accumulator range \u{b1}{cap:.3}",
                    self.datapath.accumulator_bits
                ),
            );
        }
    }

    /// Mirror of the serving `validate`'s packed-form checks: when the
    /// code pool arrived bit-packed (format v2), an op's weight-code
    /// span must coincide with exactly one section, and the section's
    /// bit width must match the width implied by the rows of the
    /// product table(s) it feeds. No-op for wide pools.
    fn check_packed_op(
        &mut self,
        op: usize,
        span: Span,
        rows: usize,
        label: &str,
    ) -> Result<(), Halt> {
        if self.packed.is_empty() || span.len == 0 {
            return Ok(());
        }
        let found = self
            .packed
            .iter()
            .find(|s| s.code_start == span.start && s.code_len == span.len);
        let Some(section) = found else {
            return Err(self.error(
                DiagCode::PackedLayoutInvalid,
                Some(op),
                format!(
                    "{label}: weight-code span {}+{} does not coincide with a packed section",
                    span.start, span.len
                ),
            ));
        };
        let expected = bits_for(rows);
        if section.width_bits != expected {
            return Err(self.error(
                DiagCode::PackedWidthMismatch,
                Some(op),
                format!(
                    "{label}: packed section is {} bits wide, a {rows}-row table implies {expected}",
                    section.width_bits
                ),
            ));
        }
        Ok(())
    }

    /// Activation + optional re-encode shared by dense/conv/residual
    /// joins.
    fn finish_neuron(
        &mut self,
        op: usize,
        act: Option<&Act>,
        encoder: Option<Span>,
        pre: Interval,
        label: &str,
    ) -> Result<Flow, Halt> {
        let post = match act {
            Some(act) => self.apply_act(op, act, pre, label)?,
            None => pre,
        };
        match encoder {
            Some(span) => {
                let book = self.codebook(Some(op), span, &format!("{label}: encoder"))?;
                Ok(self.encode(Some(op), &book, post, &format!("{label}: encoder")))
            }
            None => Ok(Flow::Floats { interval: post }),
        }
    }

    // ------------------------------------------------------------------
    // The walk
    // ------------------------------------------------------------------

    fn run(&mut self) -> Result<(), Halt> {
        if self.input_features == 0 {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                None,
                "zero input features".to_string(),
            ));
        }
        for (s, section) in self.packed.iter().enumerate() {
            if !(1..=16).contains(&section.width_bits) {
                return Err(self.error(
                    DiagCode::PackedLayoutInvalid,
                    None,
                    format!(
                        "packed section {s}: bit width {} outside 1..=16",
                        section.width_bits
                    ),
                ));
            }
            if !section.padding_clear {
                return Err(self.error(
                    DiagCode::PackedTrailingBits,
                    None,
                    format!(
                        "packed section {s} (codes {}+{}) has non-zero trailing pad bits",
                        section.code_start, section.code_len
                    ),
                ));
            }
        }
        let venc = self.codebook(None, self.virtual_encoder, "virtual input encoder")?;
        // Every input feature is an arbitrary float, so (for a sorted
        // book) every centroid is reachable — each is nearest to itself.
        let mut flow = Flow::Codes {
            domain: venc.len(),
            reach: (0, venc.len() - 1),
            interval: venc.interval,
        };
        let mut width = self.input_features;
        // (width, decoded skip interval) per open residual.
        let mut residuals: Vec<(usize, Interval)> = Vec::new();

        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table,
                    act,
                    encoder,
                } => {
                    let Flow::Codes { domain, reach, .. } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "dense: op consumes encoded codes but the flow is decoded floats"
                                .to_string(),
                        ));
                    };
                    if *inputs != width {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!("dense: expects {inputs} inputs, flow width is {width}"),
                        ));
                    }
                    if *outputs == 0 {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            "dense: zero outputs".to_string(),
                        ));
                    }
                    self.check_table(i, table, domain, "dense")?;
                    let Some(expected) = inputs.checked_mul(*outputs) else {
                        return Err(self.error(
                            DiagCode::SpanOutOfBounds,
                            Some(i),
                            "dense: weight matrix size overflows".to_string(),
                        ));
                    };
                    if weight_codes.len != expected {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "dense: weight-code span holds {} codes, expected {expected}",
                                weight_codes.len
                            ),
                        ));
                    }
                    self.check_packed_op(i, *weight_codes, table.weight_count, "dense")?;
                    let wcodes = self.codes_span(Some(i), *weight_codes, "dense: weight codes")?;
                    let mut used = vec![false; table.weight_count];
                    for &c in wcodes {
                        if c as usize >= table.weight_count {
                            return Err(self.error(
                                DiagCode::IndexOutOfBounds,
                                Some(i),
                                format!(
                                    "dense: weight code {c} out of range for {}-row table",
                                    table.weight_count
                                ),
                            ));
                        }
                        used[c as usize] = true;
                    }
                    let unused = used.iter().filter(|u| !**u).count();
                    if unused > 0 {
                        self.report.push(Diagnostic::new(
                            DiagCode::DeadTableRows,
                            Some(i),
                            format!(
                                "dense: {unused} of {} product-table rows are referenced by no weight code",
                                table.weight_count
                            ),
                        ));
                    }
                    let bias = self.check_bias(i, *bias, *outputs, "dense")?;
                    let rows = self.row_intervals(i, table, &used, domain, reach, None, "dense")?;
                    let mut pre: Option<Interval> = None;
                    let mut worst = 0.0f64;
                    for (o, &b) in bias.iter().enumerate() {
                        let mut acc = Interval::point(f64::from(b));
                        let mut mag = f64::from(b).abs();
                        for &w in &wcodes[o * inputs..(o + 1) * inputs] {
                            // Used rows always carry an interval: reach
                            // is non-empty.
                            let r = rows[w as usize].unwrap_or(Interval::zero());
                            acc = acc + r;
                            mag += r.magnitude();
                        }
                        worst = worst.max(mag);
                        pre = Some(pre.map_or(acc, |p| p.hull(acc)));
                    }
                    let pre = pre.unwrap_or(Interval::zero());
                    self.check_datapath(i, *inputs, worst, "dense");
                    flow = self.finish_neuron(i, Some(act), *encoder, pre, "dense")?;
                    width = *outputs;
                }
                Op::Conv {
                    geom,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act,
                    encoder,
                } => {
                    let Flow::Codes { domain, reach, .. } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "conv: op consumes encoded codes but the flow is decoded floats"
                                .to_string(),
                        ));
                    };
                    self.check_geom(i, geom, "conv")?;
                    if geom.in_volume() != width {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "conv: expects {} inputs, flow width is {width}",
                                geom.in_volume()
                            ),
                        ));
                    }
                    if *out_channels == 0 || tables.len() != *out_channels {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "conv: {} tables for {out_channels} output channels",
                                tables.len()
                            ),
                        ));
                    }
                    if *zero_code as usize >= domain {
                        return Err(self.error(
                            DiagCode::IndexOutOfBounds,
                            Some(i),
                            format!(
                                "conv: zero-padding code {zero_code} out of range for domain {domain}"
                            ),
                        ));
                    }
                    let patch_len = geom.patch_len();
                    let Some(expected) = out_channels.checked_mul(patch_len) else {
                        return Err(self.error(
                            DiagCode::SpanOutOfBounds,
                            Some(i),
                            "conv: weight matrix size overflows".to_string(),
                        ));
                    };
                    if weight_codes.len != expected {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "conv: weight-code span holds {} codes, expected {expected}",
                                weight_codes.len
                            ),
                        ));
                    }
                    let max_rows = tables.iter().map(|t| t.weight_count).max().unwrap_or(0);
                    self.check_packed_op(i, *weight_codes, max_rows, "conv")?;
                    let wcodes = self.codes_span(Some(i), *weight_codes, "conv: weight codes")?;
                    // Padded windows read the zero column of every row.
                    let extra_col = (geom.pad > 0).then_some(*zero_code as usize);
                    let bias = self.check_bias(i, *bias, *out_channels, "conv")?;
                    let mut pre: Option<Interval> = None;
                    let mut worst = 0.0f64;
                    for (oc, table) in tables.iter().enumerate() {
                        let label = format!("conv channel {oc}");
                        self.check_table(i, table, domain, &label)?;
                        let patch = &wcodes[oc * patch_len..(oc + 1) * patch_len];
                        let mut used = vec![false; table.weight_count];
                        for &c in patch {
                            if c as usize >= table.weight_count {
                                return Err(self.error(
                                    DiagCode::IndexOutOfBounds,
                                    Some(i),
                                    format!(
                                        "{label}: weight code {c} out of range for {}-row table",
                                        table.weight_count
                                    ),
                                ));
                            }
                            used[c as usize] = true;
                        }
                        let rows =
                            self.row_intervals(i, table, &used, domain, reach, extra_col, &label)?;
                        let mut acc = Interval::point(f64::from(bias[oc]));
                        let mut mag = f64::from(bias[oc]).abs();
                        for &w in patch {
                            let r = rows[w as usize].unwrap_or(Interval::zero());
                            acc = acc + r;
                            mag += r.magnitude();
                        }
                        // Padded windows can also *drop* taps entirely
                        // only via the zero column, which is already in
                        // the hull; the all-zero-tap window stays inside
                        // `acc` because each tap hull contains the zero
                        // column's value when pad > 0.
                        worst = worst.max(mag);
                        pre = Some(pre.map_or(acc, |p| p.hull(acc)));
                    }
                    let pre = pre.unwrap_or(Interval::zero());
                    self.check_datapath(i, patch_len, worst, "conv");
                    let Some(w) = out_channels.checked_mul(geom.out_pixels()) else {
                        return Err(self.error(
                            DiagCode::SpanOutOfBounds,
                            Some(i),
                            "conv: output volume overflows".to_string(),
                        ));
                    };
                    if w == 0 {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            "conv: produces zero outputs".to_string(),
                        ));
                    }
                    width = w;
                    flow = self.finish_neuron(i, Some(act), *encoder, pre, "conv")?;
                }
                Op::MaxPool(geom) => {
                    width = self.check_pool_geom(i, geom, width, "maxpool")?;
                    // Max over a window keeps codes inside the reachable
                    // range and values inside the hull: flow unchanged.
                }
                Op::AvgPool { geom, codebook } => {
                    width = self.check_pool_geom(i, geom, width, "avgpool")?;
                    let book = self.codebook(Some(i), *codebook, "avgpool")?;
                    match flow {
                        Flow::Codes {
                            domain, interval, ..
                        } => {
                            if book.len() < domain {
                                return Err(self.error(
                                    DiagCode::IndexOutOfBounds,
                                    Some(i),
                                    format!(
                                        "avgpool: codebook holds {} values, incoming domain is {domain}",
                                        book.len()
                                    ),
                                ));
                            }
                            // Window averages stay inside the decoded
                            // hull, then re-encode through the book.
                            flow = self.encode(Some(i), &book, interval, "avgpool");
                        }
                        Flow::Floats { .. } => {
                            // Decoded-domain average stays in the hull;
                            // the runtime does not re-encode here.
                        }
                    }
                }
                Op::ResidualBegin { skip_codebook } => {
                    let Flow::Codes { domain, reach, .. } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "residual begin: op consumes encoded codes but the flow is decoded floats"
                                .to_string(),
                        ));
                    };
                    let book = self.codebook(Some(i), *skip_codebook, "residual skip")?;
                    if book.len() < domain {
                        return Err(self.error(
                            DiagCode::IndexOutOfBounds,
                            Some(i),
                            format!(
                                "residual skip codebook holds {} values, incoming domain is {domain}",
                                book.len()
                            ),
                        ));
                    }
                    // The runtime decodes the *incoming* codes through
                    // the skip book, so only indices in `reach` matter.
                    let values =
                        &self.floats[book.span.start + reach.0..=book.span.start + reach.1];
                    let skip_interval = Interval::of_slice(values).unwrap_or(book.interval);
                    residuals.push((width, skip_interval));
                }
                Op::ResidualEnd { encoder } => {
                    let Flow::Floats { interval } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "residual join: branch must end in decoded floats".to_string(),
                        ));
                    };
                    let Some((skip_width, skip_interval)) = residuals.pop() else {
                        return Err(self.error(
                            DiagCode::ResidualImbalance,
                            Some(i),
                            "residual join without matching begin".to_string(),
                        ));
                    };
                    if skip_width != width {
                        return Err(self.error(
                            DiagCode::ResidualImbalance,
                            Some(i),
                            format!(
                                "residual branch width {width} differs from skip width {skip_width}"
                            ),
                        ));
                    }
                    let joined = interval + skip_interval;
                    flow = self.finish_neuron(i, None, *encoder, joined, "residual join")?;
                }
            }
        }

        if !residuals.is_empty() {
            return Err(self.error(
                DiagCode::ResidualImbalance,
                None,
                format!("{} unclosed residual begin(s)", residuals.len()),
            ));
        }
        if matches!(flow, Flow::Codes { .. }) {
            return Err(self.error(
                DiagCode::DomainMismatch,
                None,
                "program ends in the encoded domain".to_string(),
            ));
        }
        if width != self.output_features {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                None,
                format!(
                    "program produces {width} outputs, header says {}",
                    self.output_features
                ),
            ));
        }
        Ok(())
    }
}
