//! The abstract interpreter.
//!
//! One forward walk over the op program tracks, per program point, the
//! value-vector *width*, the *domain* (encoded codes vs decoded
//! floats), and for each an abstract value:
//!
//! * decoded values carry an [`Interval`] hull;
//! * encoded values carry the codebook, the reachable code range
//!   (contiguous, because nearest-encode over a sorted book is
//!   monotone in the probe — see `rapidnn_core::nearest`), and the
//!   interval of the representatives that range decodes to.
//!
//! The walk proves the structural invariants the serving runtime's
//! `validate` relies on (span bounds, code domains, geometry, width
//! chaining — every check there has a mirror here, as an `error`), and
//! layers value-level findings on top: non-finite reachable entries
//! (`error`), hardware bit-width exceedances against
//! [`DatapathModel`] (`warning`), and liveness — dead codebook
//! entries, unused product-table rows, dead columns and LUT rows
//! (`warning`/`note`). Ops form a straight line, so every op is
//! reachable by construction; liveness findings are about dead *data*.
//!
//! The walk stops at the first `error`: later ops would be analyzed
//! against a flow state the error already invalidated.

use crate::diag::{DiagCode, Diagnostic, Report};
use crate::interval::{f32_sum_slack, Interval};
use crate::program::{Act, Geom, Op, PackedSection, Program, Span, TableRef};
use rapidnn_accel::DatapathModel;
use rapidnn_core::nearest::{load_keys, nearest_range};

/// Mirror of the serving format's extent cap (`1 << 31`): no single
/// dimension may exceed it, keeping index arithmetic far from overflow.
const MAX_EXTENT: u64 = 1 << 31;
/// Mirror of the serving format's codebook cap: codes are `u16`, so a
/// longer book would make nearest-encode silently wrap indices.
const MAX_CODEBOOK_LEN: usize = 1 << 16;

/// Bits needed to address `rows` rows: mirror of the serving writer's
/// width rule (`ceil(log2(rows))`, minimum 1, capped at 16 because
/// codes are `u16`).
fn bits_for(rows: usize) -> u32 {
    let top = rows.max(2) - 1;
    (usize::BITS - top.leading_zeros()).min(16)
}

/// Analyzes `program` against the paper's Table 1 datapath widths.
pub fn analyze(program: &Program<'_>) -> Report {
    analyze_with(program, DatapathModel::paper())
}

/// Analyzes `program` against an explicit hardware datapath model.
pub fn analyze_with(program: &Program<'_>, datapath: DatapathModel) -> Report {
    analyze_collect(program, datapath).0
}

/// Per-op liveness facts recorded during the walk — the data behind
/// the liveness diagnostics, in machine-usable form. The optimizer
/// (`crate::optimize`) consumes these to license its rewrites; they
/// are only meaningful when the accompanying report has no errors
/// (the walk stops at the first error).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct OpFacts {
    /// Per product table of the op (dense: one, conv: one per output
    /// channel): `used[w]` iff some weight code references row `w`.
    pub used_rows: Vec<Vec<bool>>,
    /// Inclusive reachable row range of the op's activation LUT.
    pub lut_reach: Option<(usize, usize)>,
    /// Inclusive reachable entry range of the codebook this op encodes
    /// its outputs through (dense/conv/residual-join encoder, or the
    /// avgpool book's re-encode).
    pub encoder_reach: Option<(usize, usize)>,
}

/// Facts for every op of one analysis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Facts {
    pub ops: Vec<OpFacts>,
}

/// Analysis entry point that also returns the liveness facts the
/// optimizer builds its rewrites from.
pub(crate) fn analyze_collect(program: &Program<'_>, datapath: DatapathModel) -> (Report, Facts) {
    let mut checker = Checker {
        input_features: program.input_features,
        output_features: program.output_features,
        virtual_encoder: program.virtual_encoder,
        ops: &program.ops,
        floats: &program.floats,
        codes: &program.codes,
        packed: &program.packed,
        datapath,
        report: Report::new(),
        facts: Facts {
            ops: vec![OpFacts::default(); program.ops.len()],
        },
    };
    // The Err case carries no data: the fatal diagnostic is already in
    // the report when the walk unwinds.
    let _ = checker.run();
    (checker.report, checker.facts)
}

/// Largest `f32` not above `x`: `as f32` rounds to nearest, which may
/// round *up* past a concrete value; reachability probes must round
/// outward instead.
fn f32_down(x: f64) -> f32 {
    let r = x as f32;
    if f64::from(r) > x {
        ulp_prev(r)
    } else {
        r
    }
}

/// Smallest `f32` not below `x`.
fn f32_up(x: f64) -> f32 {
    let r = x as f32;
    if f64::from(r) < x {
        ulp_next(r)
    } else {
        r
    }
}

/// One representable step toward `-inf` (finite input, `next_down`
/// without an MSRV requirement).
fn ulp_prev(v: f32) -> f32 {
    if v == 0.0 {
        return -f32::from_bits(1); // smallest negative subnormal
    }
    let bits = v.to_bits();
    if v > 0.0 {
        f32::from_bits(bits - 1)
    } else {
        f32::from_bits(bits + 1)
    }
}

/// One representable step toward `+inf`.
fn ulp_next(v: f32) -> f32 {
    if v == 0.0 {
        return f32::from_bits(1);
    }
    let bits = v.to_bits();
    if v > 0.0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

/// A checked codebook: bounds-valid, non-empty, addressable, finite.
struct Book {
    span: Span,
    /// Sorted by `total_cmp`? When false the nearest map is not
    /// monotone and reachability falls back to the full range.
    sorted: bool,
    /// Hull of every entry.
    interval: Interval,
    /// Total-order keys for [`nearest_range`] (empty when unsorted).
    keys: Vec<i32>,
}

impl Book {
    fn len(&self) -> usize {
        self.span.len
    }
}

/// Abstract state of the value vector between ops.
#[derive(Clone, Copy)]
enum Flow {
    /// Encoded: codes in `reach` (inclusive) over a `domain`-entry
    /// book, decoding into `interval`. Decoded representatives are
    /// exact stored `f32`s, so encoded flows carry no rounding slack.
    Codes {
        domain: usize,
        reach: (usize, usize),
        interval: Interval,
    },
    /// Decoded floats bounded by `interval` up to `slack`: a proven
    /// bound ([`f32_sum_slack`]) on how far the concrete `f32`
    /// evaluation can drift from the real-valued quantity the interval
    /// hulls. Reachability queries widen by exactly this much, which
    /// makes liveness findings sound for deletion (no spurious dead
    /// entries) without the old fixed `1e-4` heuristic margin.
    Floats { interval: Interval, slack: f64 },
}

struct Checker<'p> {
    input_features: usize,
    output_features: usize,
    virtual_encoder: Span,
    ops: &'p [Op],
    floats: &'p [f32],
    codes: &'p [u16],
    packed: &'p [PackedSection],
    datapath: DatapathModel,
    report: Report,
    facts: Facts,
}

/// Fatal-error sentinel: the diagnostic is already reported.
struct Halt;

impl<'p> Checker<'p> {
    fn error(&mut self, code: DiagCode, op: Option<usize>, msg: String) -> Halt {
        self.report.push(Diagnostic::new(code, op, msg));
        Halt
    }

    fn warn(&mut self, code: DiagCode, op: Option<usize>, msg: String) {
        self.report.push(Diagnostic::new(code, op, msg));
    }

    // ------------------------------------------------------------------
    // Structural primitives (each mirrors a `validate` check in
    // rapidnn-serve; an `error` here must imply rejection there would
    // not have been *weaker* — see the subsumption test in that crate).
    // ------------------------------------------------------------------

    fn floats_span(&mut self, op: Option<usize>, s: Span, what: &str) -> Result<&'p [f32], Halt> {
        match s.start.checked_add(s.len) {
            Some(end) if end <= self.floats.len() => Ok(&self.floats[s.start..s.start + s.len]),
            _ => Err(self.error(
                DiagCode::SpanOutOfBounds,
                op,
                format!(
                    "{what}: float span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.floats.len()
                ),
            )),
        }
    }

    fn codes_span(&mut self, op: Option<usize>, s: Span, what: &str) -> Result<&'p [u16], Halt> {
        match s.start.checked_add(s.len) {
            Some(end) if end <= self.codes.len() => Ok(&self.codes[s.start..s.start + s.len]),
            _ => Err(self.error(
                DiagCode::SpanOutOfBounds,
                op,
                format!(
                    "{what}: code span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.codes.len()
                ),
            )),
        }
    }

    /// Checks a codebook span: in bounds, non-empty, addressable by a
    /// `u16` code, every entry finite. Unsortedness is a warning (the
    /// runtime stays in bounds, but reachability degrades to the full
    /// range).
    fn codebook(&mut self, op: Option<usize>, s: Span, what: &str) -> Result<Book, Halt> {
        let values = self.floats_span(op, s, what)?;
        if values.is_empty() {
            return Err(self.error(DiagCode::EmptyTable, op, format!("{what}: empty codebook")));
        }
        if values.len() > MAX_CODEBOOK_LEN {
            return Err(self.error(
                DiagCode::OversizedCodebook,
                op,
                format!(
                    "{what}: codebook holds {} values, 16-bit codes address at most {}",
                    values.len(),
                    MAX_CODEBOOK_LEN
                ),
            ));
        }
        let Some(interval) = Interval::of_slice(values) else {
            let bad = values.iter().find(|v| !v.is_finite()).copied();
            return Err(self.error(
                DiagCode::NonFinite,
                op,
                format!(
                    "{what}: codebook contains non-finite centroid {}",
                    bad.map_or_else(|| "?".into(), |v| v.to_string())
                ),
            ));
        };
        let sorted = values
            .windows(2)
            .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater);
        let mut keys = Vec::new();
        if sorted {
            load_keys(&mut keys, values);
        } else {
            self.warn(
                DiagCode::UnsortedCodebook,
                op,
                format!("{what}: codebook is not sorted; treating every entry as reachable"),
            );
        }
        Ok(Book {
            span: s,
            sorted,
            interval,
            keys,
        })
    }

    /// Mirror of `validate_geom`: dimensions non-zero and capped,
    /// output dims recomputed from input/kernel/stride/pad, volumes
    /// capped.
    fn check_geom(&mut self, op: usize, g: &Geom, label: &str) -> Result<(), Halt> {
        let dims = [
            g.in_channels,
            g.in_height,
            g.in_width,
            g.kernel_h,
            g.kernel_w,
            g.stride,
        ];
        if dims.contains(&0) {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!("{label}: geometry has a zero dimension"),
            ));
        }
        let all = [
            g.in_channels,
            g.in_height,
            g.in_width,
            g.kernel_h,
            g.kernel_w,
            g.stride,
            g.pad,
            g.out_height,
            g.out_width,
        ];
        if all.iter().any(|&d| d as u64 > MAX_EXTENT) {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!("{label}: geometry dimension too large"),
            ));
        }
        let padded_h = g.in_height + 2 * g.pad;
        let padded_w = g.in_width + 2 * g.pad;
        if padded_h < g.kernel_h || padded_w < g.kernel_w {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!(
                    "{label}: {}x{} kernel larger than padded {padded_h}x{padded_w} input",
                    g.kernel_h, g.kernel_w
                ),
            ));
        }
        if g.out_height != (padded_h - g.kernel_h) / g.stride + 1
            || g.out_width != (padded_w - g.kernel_w) / g.stride + 1
        {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!(
                    "{label}: declared {}x{} output inconsistent with geometry",
                    g.out_height, g.out_width
                ),
            ));
        }
        let volume = g.in_channels as u64 * g.in_height as u64 * g.in_width as u64;
        let out_volume = g.in_channels as u64 * g.out_height as u64 * g.out_width as u64;
        let patch = g.in_channels as u64 * g.kernel_h as u64 * g.kernel_w as u64;
        if volume > MAX_EXTENT || out_volume > MAX_EXTENT || patch > MAX_EXTENT {
            return Err(self.error(
                DiagCode::GeometryInvalid,
                Some(op),
                format!("{label}: geometry volume too large"),
            ));
        }
        Ok(())
    }

    /// A pool geometry additionally requires zero padding: pool kernels
    /// index `data[ch*h*w + (oy*s+kh)*w + ox*s+kw]` without padding, so
    /// any non-zero pad reads out of bounds (PR 1 panic class).
    fn check_pool_geom(
        &mut self,
        op: usize,
        g: &Geom,
        width: usize,
        label: &str,
    ) -> Result<usize, Halt> {
        self.check_geom(op, g, label)?;
        if g.pad != 0 {
            let diag = Diagnostic::new(
                DiagCode::PaddedPool,
                Some(op),
                format!(
                    "{label}: pool declares padding {} but pool kernels index without padding",
                    g.pad
                ),
            )
            .with_note(format!(
                "{}x{}x{} input, {}x{} kernel, stride {} -> {}x{} output",
                g.in_channels,
                g.in_height,
                g.in_width,
                g.kernel_h,
                g.kernel_w,
                g.stride,
                g.out_height,
                g.out_width
            ));
            self.report.push(diag);
            return Err(Halt);
        }
        if g.in_volume() != width {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                Some(op),
                format!(
                    "{label}: pool expects {} inputs, flow width is {width}",
                    g.in_volume()
                ),
            ));
        }
        match g.in_channels.checked_mul(g.out_pixels()) {
            Some(w) => Ok(w),
            None => Err(self.error(
                DiagCode::SpanOutOfBounds,
                Some(op),
                format!("{label}: output volume overflows"),
            )),
        }
    }

    /// Mirror of `check_table` plus the dead-column note: non-empty,
    /// in bounds, and wide enough for every upstream code.
    fn check_table(
        &mut self,
        op: usize,
        t: &TableRef,
        domain: usize,
        label: &str,
    ) -> Result<(), Halt> {
        if t.weight_count == 0 || t.input_count == 0 {
            return Err(self.error(
                DiagCode::EmptyTable,
                Some(op),
                format!("{label}: empty product table"),
            ));
        }
        let Some(len) = t.weight_count.checked_mul(t.input_count) else {
            return Err(self.error(
                DiagCode::SpanOutOfBounds,
                Some(op),
                format!("{label}: product table size overflows"),
            ));
        };
        self.floats_span(
            Some(op),
            Span {
                start: t.offset,
                len,
            },
            &format!("{label}: product table"),
        )?;
        if t.input_count < domain {
            return Err(self.error(
                DiagCode::IndexOutOfBounds,
                Some(op),
                format!(
                    "{label}: product table addresses {} input codes, upstream domain is {domain}",
                    t.input_count
                ),
            ));
        }
        if t.input_count > domain {
            self.report.push_liveness(
                Diagnostic::new(
                    DiagCode::DeadTableColumns,
                    Some(op),
                    format!(
                        "{label}: {} of {} product-table columns lie beyond the {domain}-entry input codebook",
                        t.input_count - domain,
                        t.input_count
                    ),
                ),
                t.input_count - domain,
            );
        }
        Ok(())
    }

    /// Bias span: in bounds, expected length, finite.
    fn check_bias(
        &mut self,
        op: usize,
        s: Span,
        expected: usize,
        label: &str,
    ) -> Result<&'p [f32], Halt> {
        if s.len != expected {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                Some(op),
                format!("{label}: bias holds {} values, expected {expected}", s.len),
            ));
        }
        let bias = self.floats_span(Some(op), s, &format!("{label}: bias"))?;
        if let Some((j, &v)) = bias.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(self.error(
                DiagCode::NonFinite,
                Some(op),
                format!("{label}: bias[{j}] is {v}"),
            ));
        }
        Ok(bias)
    }

    // ------------------------------------------------------------------
    // Value propagation
    // ------------------------------------------------------------------

    /// Inclusive code range reachable when `interval` is nearest-encoded
    /// through `book`.
    ///
    /// Exactness argument: every concrete probe is an `f32` within
    /// `slack` of the real-valued quantity `interval` hulls, so it lies
    /// in `interval.widened_by(slack)`; the `f64 -> f32` probe bounds
    /// round *outward* (`f32_down`/`f32_up`), and `nearest_index` is
    /// monotone over a sorted book, so the returned range contains the
    /// code of every concrete probe. Entries outside it are dead on
    /// every execution — safe to delete, not just to note.
    fn reach_of(&self, book: &Book, interval: Interval, slack: f64) -> (usize, usize) {
        if !book.sorted {
            return (0, book.len() - 1);
        }
        let values = &self.floats[book.span.start..book.span.start + book.span.len];
        let w = interval.widened_by(slack);
        nearest_range(values, &book.keys, f32_down(w.lo), f32_up(w.hi))
    }

    /// Encode step: maps a decoded interval (with its rounding slack)
    /// through `book`, reporting entries that can never be selected.
    fn encode(
        &mut self,
        op: Option<usize>,
        book: &Book,
        interval: Interval,
        slack: f64,
        what: &str,
    ) -> Flow {
        let reach = self.reach_of(book, interval, slack);
        if let Some(i) = op {
            self.facts.ops[i].encoder_reach = Some(reach);
        }
        let live = reach.1 - reach.0 + 1;
        if live < book.len() {
            self.report.push_liveness(
                Diagnostic::new(
                    DiagCode::DeadCodebookEntries,
                    op,
                    format!(
                        "{what}: {} of {} codebook entries can never be selected (reachable codes {}..={})",
                        book.len() - live,
                        book.len(),
                        reach.0,
                        reach.1
                    ),
                ),
                book.len() - live,
            );
        }
        let values = &self.floats[book.span.start + reach.0..=book.span.start + reach.1];
        let interval = Interval::of_slice(values).unwrap_or(book.interval);
        Flow::Codes {
            domain: book.len(),
            reach,
            interval,
        }
    }

    /// Applies an activation step to a pre-activation interval carrying
    /// `slack` rounding drift, returning the post-activation interval
    /// and its slack. Identity and ReLU are exact maps, so drift passes
    /// through unchanged (`|relu(a) − relu(b)| ≤ |a − b|`); a lookup's
    /// outputs are exact stored `f32`s drawn from the reachable rows,
    /// so its output slack collapses to zero.
    fn apply_act(
        &mut self,
        op: usize,
        act: &Act,
        pre: Interval,
        slack: f64,
        label: &str,
    ) -> Result<(Interval, f64), Halt> {
        match act {
            Act::Identity => Ok((pre, slack)),
            Act::Relu => Ok((pre.relu(), slack)),
            Act::Lookup { inputs, outputs } => {
                let xs = self.floats_span(Some(op), *inputs, &format!("{label}: LUT inputs"))?;
                let ys = self.floats_span(Some(op), *outputs, &format!("{label}: LUT outputs"))?;
                if xs.is_empty() {
                    return Err(self.error(
                        DiagCode::EmptyTable,
                        Some(op),
                        format!("{label}: activation lookup table is empty"),
                    ));
                }
                if xs.len() != ys.len() {
                    return Err(self.error(
                        DiagCode::ShapeMismatch,
                        Some(op),
                        format!(
                            "{label}: activation LUT misaligned: {} inputs vs {} outputs",
                            xs.len(),
                            ys.len()
                        ),
                    ));
                }
                let sorted = xs
                    .windows(2)
                    .all(|w| w[0].total_cmp(&w[1]) != std::cmp::Ordering::Greater);
                let (lo, hi) = if sorted {
                    let mut keys = Vec::new();
                    load_keys(&mut keys, xs);
                    // Same outward-rounded, slack-widened probe rule as
                    // `reach_of`: the range contains every concrete
                    // probe's row.
                    let w = pre.widened_by(slack);
                    nearest_range(xs, &keys, f32_down(w.lo), f32_up(w.hi))
                } else {
                    self.warn(
                        DiagCode::UnsortedCodebook,
                        Some(op),
                        format!("{label}: activation LUT inputs are not sorted; treating every row as reachable"),
                    );
                    (0, xs.len() - 1)
                };
                self.facts.ops[op].lut_reach = Some((lo, hi));
                if hi - lo + 1 < xs.len() {
                    self.report.push_liveness(
                        Diagnostic::new(
                            DiagCode::DeadLutRows,
                            Some(op),
                            format!(
                                "{label}: {} of {} activation LUT rows lie outside the reachable pre-activation range [{:.4}, {:.4}]",
                                xs.len() - (hi - lo + 1),
                                xs.len(),
                                pre.lo,
                                pre.hi
                            ),
                        ),
                        xs.len() - (hi - lo + 1),
                    );
                }
                match Interval::of_slice(&ys[lo..=hi]) {
                    Some(iv) => Ok((iv, 0.0)),
                    None => Err(self.error(
                        DiagCode::NonFinite,
                        Some(op),
                        format!("{label}: reachable activation LUT output is non-finite"),
                    )),
                }
            }
        }
    }

    /// Per-weight-row value hulls of `table` over the live input
    /// columns (`reach`, plus the zero-padding column when `extra_col`
    /// is set), erroring on any non-finite live entry. Rows not marked
    /// `used` are skipped — they are dead data.
    #[allow(clippy::too_many_arguments)]
    fn row_intervals(
        &mut self,
        op: usize,
        table: &TableRef,
        used: &[bool],
        domain: usize,
        reach: (usize, usize),
        extra_col: Option<usize>,
        label: &str,
    ) -> Result<Vec<Option<Interval>>, Halt> {
        // Bounds established by `check_table`.
        let data =
            &self.floats[table.offset..table.offset + table.weight_count * table.input_count];
        let mut rows: Vec<Option<Interval>> = vec![None; table.weight_count];
        let mut bad: Option<(usize, usize, f32)> = None;
        for (w, row_iv) in rows.iter_mut().enumerate() {
            if !used[w] {
                continue;
            }
            let row = &data[w * table.input_count..][..table.input_count];
            let mut iv: Option<Interval> = None;
            for (c, &v) in row.iter().enumerate().take(domain) {
                if !v.is_finite() {
                    bad = Some((w, c, v));
                    break;
                }
                if (c >= reach.0 && c <= reach.1) || extra_col == Some(c) {
                    let p = Interval::point(f64::from(v));
                    iv = Some(iv.map_or(p, |acc| acc.hull(p)));
                }
            }
            if bad.is_some() {
                break;
            }
            *row_iv = iv;
        }
        if let Some((w, c, v)) = bad {
            return Err(self.error(
                DiagCode::NonFinite,
                Some(op),
                format!("{label}: product-table entry [w={w}][x={c}] is {v}"),
            ));
        }
        Ok(rows)
    }

    /// Hardware bit-width findings for one neuron op: fan-in vs the
    /// occurrence counters, worst-case |partial sum| vs the fixed-point
    /// accumulator word.
    fn check_datapath(&mut self, op: usize, edges: usize, worst_mag: f64, label: &str) {
        if edges as u64 > self.datapath.max_count() {
            self.warn(
                DiagCode::CounterOverflow,
                Some(op),
                format!(
                    "{label}: fan-in {edges} exceeds the {}-bit occurrence counters (max count {})",
                    self.datapath.counter_bits,
                    self.datapath.max_count()
                ),
            );
        }
        let cap = self.datapath.max_accumulator_magnitude();
        if worst_mag > cap {
            self.warn(
                DiagCode::AccumulatorOverflow,
                Some(op),
                format!(
                    "{label}: worst-case |partial sum| {worst_mag:.3} exceeds the {}-bit fixed-point accumulator range \u{b1}{cap:.3}",
                    self.datapath.accumulator_bits
                ),
            );
        }
    }

    /// Mirror of the serving `validate`'s packed-form checks: when the
    /// code pool arrived bit-packed (format v2), an op's weight-code
    /// span must coincide with exactly one section, and the section's
    /// bit width must match the width implied by the rows of the
    /// product table(s) it feeds. No-op for wide pools.
    fn check_packed_op(
        &mut self,
        op: usize,
        span: Span,
        rows: usize,
        label: &str,
    ) -> Result<(), Halt> {
        if self.packed.is_empty() || span.len == 0 {
            return Ok(());
        }
        let found = self
            .packed
            .iter()
            .find(|s| s.code_start == span.start && s.code_len == span.len);
        let Some(section) = found else {
            return Err(self.error(
                DiagCode::PackedLayoutInvalid,
                Some(op),
                format!(
                    "{label}: weight-code span {}+{} does not coincide with a packed section",
                    span.start, span.len
                ),
            ));
        };
        let expected = bits_for(rows);
        if section.width_bits != expected {
            return Err(self.error(
                DiagCode::PackedWidthMismatch,
                Some(op),
                format!(
                    "{label}: packed section is {} bits wide, a {rows}-row table implies {expected}",
                    section.width_bits
                ),
            ));
        }
        Ok(())
    }

    /// Activation + optional re-encode shared by dense/conv/residual
    /// joins. `slack` bounds the concrete `f32` drift of the
    /// pre-activation values.
    fn finish_neuron(
        &mut self,
        op: usize,
        act: Option<&Act>,
        encoder: Option<Span>,
        pre: Interval,
        slack: f64,
        label: &str,
    ) -> Result<Flow, Halt> {
        let (post, post_slack) = match act {
            Some(act) => self.apply_act(op, act, pre, slack, label)?,
            None => (pre, slack),
        };
        match encoder {
            Some(span) => {
                let book = self.codebook(Some(op), span, &format!("{label}: encoder"))?;
                Ok(self.encode(
                    Some(op),
                    &book,
                    post,
                    post_slack,
                    &format!("{label}: encoder"),
                ))
            }
            None => Ok(Flow::Floats {
                interval: post,
                slack: post_slack,
            }),
        }
    }

    // ------------------------------------------------------------------
    // The walk
    // ------------------------------------------------------------------

    fn run(&mut self) -> Result<(), Halt> {
        if self.input_features == 0 {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                None,
                "zero input features".to_string(),
            ));
        }
        for (s, section) in self.packed.iter().enumerate() {
            if !(1..=16).contains(&section.width_bits) {
                return Err(self.error(
                    DiagCode::PackedLayoutInvalid,
                    None,
                    format!(
                        "packed section {s}: bit width {} outside 1..=16",
                        section.width_bits
                    ),
                ));
            }
            if !section.padding_clear {
                return Err(self.error(
                    DiagCode::PackedTrailingBits,
                    None,
                    format!(
                        "packed section {s} (codes {}+{}) has non-zero trailing pad bits",
                        section.code_start, section.code_len
                    ),
                ));
            }
        }
        let venc = self.codebook(None, self.virtual_encoder, "virtual input encoder")?;
        // Every input feature is an arbitrary float, so (for a sorted
        // book) every centroid is reachable — each is nearest to itself.
        let mut flow = Flow::Codes {
            domain: venc.len(),
            reach: (0, venc.len() - 1),
            interval: venc.interval,
        };
        let mut width = self.input_features;
        // (width, decoded skip interval) per open residual.
        let mut residuals: Vec<(usize, Interval)> = Vec::new();

        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table,
                    act,
                    encoder,
                } => {
                    let Flow::Codes { domain, reach, .. } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "dense: op consumes encoded codes but the flow is decoded floats"
                                .to_string(),
                        ));
                    };
                    if *inputs != width {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!("dense: expects {inputs} inputs, flow width is {width}"),
                        ));
                    }
                    if *outputs == 0 {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            "dense: zero outputs".to_string(),
                        ));
                    }
                    self.check_table(i, table, domain, "dense")?;
                    let Some(expected) = inputs.checked_mul(*outputs) else {
                        return Err(self.error(
                            DiagCode::SpanOutOfBounds,
                            Some(i),
                            "dense: weight matrix size overflows".to_string(),
                        ));
                    };
                    if weight_codes.len != expected {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "dense: weight-code span holds {} codes, expected {expected}",
                                weight_codes.len
                            ),
                        ));
                    }
                    self.check_packed_op(i, *weight_codes, table.weight_count, "dense")?;
                    let wcodes = self.codes_span(Some(i), *weight_codes, "dense: weight codes")?;
                    let mut used = vec![false; table.weight_count];
                    for &c in wcodes {
                        if c as usize >= table.weight_count {
                            return Err(self.error(
                                DiagCode::IndexOutOfBounds,
                                Some(i),
                                format!(
                                    "dense: weight code {c} out of range for {}-row table",
                                    table.weight_count
                                ),
                            ));
                        }
                        used[c as usize] = true;
                    }
                    let unused = used.iter().filter(|u| !**u).count();
                    if unused > 0 {
                        self.report.push_liveness(
                            Diagnostic::new(
                                DiagCode::DeadTableRows,
                                Some(i),
                                format!(
                                    "dense: {unused} of {} product-table rows are referenced by no weight code",
                                    table.weight_count
                                ),
                            ),
                            unused,
                        );
                    }
                    self.facts.ops[i].used_rows = vec![used.clone()];
                    let bias = self.check_bias(i, *bias, *outputs, "dense")?;
                    let rows = self.row_intervals(i, table, &used, domain, reach, None, "dense")?;
                    let mut pre: Option<Interval> = None;
                    let mut worst = 0.0f64;
                    for (o, &b) in bias.iter().enumerate() {
                        let mut acc = Interval::point(f64::from(b));
                        let mut mag = f64::from(b).abs();
                        for &w in &wcodes[o * inputs..(o + 1) * inputs] {
                            // Used rows always carry an interval: reach
                            // is non-empty.
                            let r = rows[w as usize].unwrap_or(Interval::zero());
                            acc = acc + r;
                            mag += r.magnitude();
                        }
                        worst = worst.max(mag);
                        pre = Some(pre.map_or(acc, |p| p.hull(acc)));
                    }
                    let pre = pre.unwrap_or(Interval::zero());
                    self.check_datapath(i, *inputs, worst, "dense");
                    // The kernel evaluates bias + `inputs` products as
                    // one left-to-right f32 sum; `worst` bounds the
                    // magnitude sum of every neuron's terms.
                    let slack = f32_sum_slack(*inputs + 1, worst);
                    flow = self.finish_neuron(i, Some(act), *encoder, pre, slack, "dense")?;
                    width = *outputs;
                }
                Op::Conv {
                    geom,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act,
                    encoder,
                } => {
                    let Flow::Codes { domain, reach, .. } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "conv: op consumes encoded codes but the flow is decoded floats"
                                .to_string(),
                        ));
                    };
                    self.check_geom(i, geom, "conv")?;
                    if geom.in_volume() != width {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "conv: expects {} inputs, flow width is {width}",
                                geom.in_volume()
                            ),
                        ));
                    }
                    if *out_channels == 0 || tables.len() != *out_channels {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "conv: {} tables for {out_channels} output channels",
                                tables.len()
                            ),
                        ));
                    }
                    if *zero_code as usize >= domain {
                        return Err(self.error(
                            DiagCode::IndexOutOfBounds,
                            Some(i),
                            format!(
                                "conv: zero-padding code {zero_code} out of range for domain {domain}"
                            ),
                        ));
                    }
                    let patch_len = geom.patch_len();
                    let Some(expected) = out_channels.checked_mul(patch_len) else {
                        return Err(self.error(
                            DiagCode::SpanOutOfBounds,
                            Some(i),
                            "conv: weight matrix size overflows".to_string(),
                        ));
                    };
                    if weight_codes.len != expected {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            format!(
                                "conv: weight-code span holds {} codes, expected {expected}",
                                weight_codes.len
                            ),
                        ));
                    }
                    let max_rows = tables.iter().map(|t| t.weight_count).max().unwrap_or(0);
                    self.check_packed_op(i, *weight_codes, max_rows, "conv")?;
                    let wcodes = self.codes_span(Some(i), *weight_codes, "conv: weight codes")?;
                    // Padded windows read the zero column of every row.
                    let extra_col = (geom.pad > 0).then_some(*zero_code as usize);
                    let bias = self.check_bias(i, *bias, *out_channels, "conv")?;
                    let mut pre: Option<Interval> = None;
                    let mut worst = 0.0f64;
                    let mut unused_rows = 0usize;
                    let mut total_rows = 0usize;
                    for (oc, table) in tables.iter().enumerate() {
                        let label = format!("conv channel {oc}");
                        self.check_table(i, table, domain, &label)?;
                        let patch = &wcodes[oc * patch_len..(oc + 1) * patch_len];
                        let mut used = vec![false; table.weight_count];
                        for &c in patch {
                            if c as usize >= table.weight_count {
                                return Err(self.error(
                                    DiagCode::IndexOutOfBounds,
                                    Some(i),
                                    format!(
                                        "{label}: weight code {c} out of range for {}-row table",
                                        table.weight_count
                                    ),
                                ));
                            }
                            used[c as usize] = true;
                        }
                        unused_rows += used.iter().filter(|u| !**u).count();
                        total_rows += table.weight_count;
                        let rows =
                            self.row_intervals(i, table, &used, domain, reach, extra_col, &label)?;
                        self.facts.ops[i].used_rows.push(used);
                        let mut acc = Interval::point(f64::from(bias[oc]));
                        let mut mag = f64::from(bias[oc]).abs();
                        for &w in patch {
                            let r = rows[w as usize].unwrap_or(Interval::zero());
                            acc = acc + r;
                            mag += r.magnitude();
                        }
                        // Padded windows can also *drop* taps entirely
                        // only via the zero column, which is already in
                        // the hull; the all-zero-tap window stays inside
                        // `acc` because each tap hull contains the zero
                        // column's value when pad > 0.
                        worst = worst.max(mag);
                        pre = Some(pre.map_or(acc, |p| p.hull(acc)));
                    }
                    if unused_rows > 0 {
                        self.report.push_liveness(
                            Diagnostic::new(
                                DiagCode::DeadTableRows,
                                Some(i),
                                format!(
                                    "conv: {unused_rows} of {total_rows} product-table rows (across {out_channels} channels) are referenced by no weight code",
                                ),
                            ),
                            unused_rows,
                        );
                    }
                    let pre = pre.unwrap_or(Interval::zero());
                    self.check_datapath(i, patch_len, worst, "conv");
                    let Some(w) = out_channels.checked_mul(geom.out_pixels()) else {
                        return Err(self.error(
                            DiagCode::SpanOutOfBounds,
                            Some(i),
                            "conv: output volume overflows".to_string(),
                        ));
                    };
                    if w == 0 {
                        return Err(self.error(
                            DiagCode::ShapeMismatch,
                            Some(i),
                            "conv: produces zero outputs".to_string(),
                        ));
                    }
                    width = w;
                    // One f32 sum of bias + `patch_len` products per
                    // output pixel.
                    let slack = f32_sum_slack(patch_len + 1, worst);
                    flow = self.finish_neuron(i, Some(act), *encoder, pre, slack, "conv")?;
                }
                Op::MaxPool(geom) => {
                    width = self.check_pool_geom(i, geom, width, "maxpool")?;
                    // Max over a window keeps codes inside the reachable
                    // range and values inside the hull: flow unchanged.
                }
                Op::AvgPool { geom, codebook } => {
                    width = self.check_pool_geom(i, geom, width, "avgpool")?;
                    let book = self.codebook(Some(i), *codebook, "avgpool")?;
                    // One f32 sum over the window plus the final scale.
                    let window = geom.kernel_h * geom.kernel_w;
                    match flow {
                        Flow::Codes {
                            domain, interval, ..
                        } => {
                            if book.len() < domain {
                                return Err(self.error(
                                    DiagCode::IndexOutOfBounds,
                                    Some(i),
                                    format!(
                                        "avgpool: codebook holds {} values, incoming domain is {domain}",
                                        book.len()
                                    ),
                                ));
                            }
                            // Window averages stay inside the decoded
                            // hull (exact representatives, so only the
                            // averaging itself rounds), then re-encode
                            // through the book.
                            let slack = f32_sum_slack(window + 1, interval.magnitude());
                            flow = self.encode(Some(i), &book, interval, slack, "avgpool");
                        }
                        Flow::Floats { interval, slack } => {
                            // Decoded-domain average stays in the hull;
                            // the runtime does not re-encode here, but
                            // the averaging adds its own rounding drift.
                            flow = Flow::Floats {
                                interval,
                                slack: slack
                                    + f32_sum_slack(window + 1, interval.magnitude() + slack),
                            };
                        }
                    }
                }
                Op::ResidualBegin { skip_codebook } => {
                    let Flow::Codes { domain, reach, .. } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "residual begin: op consumes encoded codes but the flow is decoded floats"
                                .to_string(),
                        ));
                    };
                    let book = self.codebook(Some(i), *skip_codebook, "residual skip")?;
                    if book.len() < domain {
                        return Err(self.error(
                            DiagCode::IndexOutOfBounds,
                            Some(i),
                            format!(
                                "residual skip codebook holds {} values, incoming domain is {domain}",
                                book.len()
                            ),
                        ));
                    }
                    // The runtime decodes the *incoming* codes through
                    // the skip book, so only indices in `reach` matter.
                    let values =
                        &self.floats[book.span.start + reach.0..=book.span.start + reach.1];
                    let skip_interval = Interval::of_slice(values).unwrap_or(book.interval);
                    residuals.push((width, skip_interval));
                }
                Op::ResidualEnd { encoder } => {
                    let Flow::Floats { interval, slack } = flow else {
                        return Err(self.error(
                            DiagCode::DomainMismatch,
                            Some(i),
                            "residual join: branch must end in decoded floats".to_string(),
                        ));
                    };
                    let Some((skip_width, skip_interval)) = residuals.pop() else {
                        return Err(self.error(
                            DiagCode::ResidualImbalance,
                            Some(i),
                            "residual join without matching begin".to_string(),
                        ));
                    };
                    if skip_width != width {
                        return Err(self.error(
                            DiagCode::ResidualImbalance,
                            Some(i),
                            format!(
                                "residual branch width {width} differs from skip width {skip_width}"
                            ),
                        ));
                    }
                    let joined = interval + skip_interval;
                    // One f32 add of the branch value (drift `slack`)
                    // and an exact skip representative.
                    let slack = slack + f32_sum_slack(2, joined.magnitude() + slack);
                    flow = self.finish_neuron(i, None, *encoder, joined, slack, "residual join")?;
                }
            }
        }

        if !residuals.is_empty() {
            return Err(self.error(
                DiagCode::ResidualImbalance,
                None,
                format!("{} unclosed residual begin(s)", residuals.len()),
            ));
        }
        if matches!(flow, Flow::Codes { .. }) {
            return Err(self.error(
                DiagCode::DomainMismatch,
                None,
                "program ends in the encoded domain".to_string(),
            ));
        }
        if width != self.output_features {
            return Err(self.error(
                DiagCode::ShapeMismatch,
                None,
                format!(
                    "program produces {width} outputs, header says {}",
                    self.output_features
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidnn_core::nearest::nearest_index;
    use std::borrow::Cow;

    /// Two-layer dense program with adversarial product magnitudes
    /// (1e7-scale cancellation) so `f32` accumulation error is far
    /// above one ulp of the true sums, a lookup activation, and a
    /// re-encoder whose outer entries are unreachable.
    fn adversarial() -> Program<'static> {
        let mut floats = vec![-2.5, -1.0, -0.25, 0.5, 1.5, 3.0]; // virtual book (6)
        let table = floats.len();
        #[rustfmt::skip]
        floats.extend_from_slice(&[
            // 4 weight rows x 6 input columns.
            1.0e7, -1.0e7, 3.25, -7.5, 0.125, 2.0e6,
            -9.999e6, 1.0e7, -3.25, 7.75, 0.5, -2.0e6,
            11.0, -2.0, 0.75, -0.125, 4.5, -6.0,
            -3.5, 8.0, -0.25, 2.25, -1.75, 0.5,
        ]);
        let bias = floats.len();
        floats.extend_from_slice(&[0.5, -0.25]);
        let lut_x = floats.len();
        floats.extend_from_slice(&[-3.0e7, -5.0e5, -10.0, 0.0, 10.0, 5.0e5, 3.0e7]);
        let lut_y = floats.len();
        floats.extend_from_slice(&[-1.5, -0.5, 0.0, 0.25, 0.75, 1.25, 2.0]);
        let enc = floats.len();
        // LUT outputs span [-1.5, 2.0]: the -4.0 and 5.0 entries are dead.
        floats.extend_from_slice(&[-4.0, -2.0, -1.0, 0.0, 0.5, 1.0, 2.5, 5.0]);
        let table2 = floats.len();
        #[rustfmt::skip]
        floats.extend_from_slice(&[
            // 2 rows x 8 columns for the head layer.
            0.5, -0.5, 1.0, -1.0, 0.25, -0.25, 2.0, -2.0,
            -1.5, 1.5, 0.75, -0.75, 3.0, -3.0, 0.125, -0.125,
        ]);
        let bias2 = floats.len();
        floats.push(0.0625);
        Program {
            input_features: 3,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 6 },
            ops: vec![
                Op::Dense {
                    inputs: 3,
                    outputs: 2,
                    weight_codes: Span { start: 0, len: 6 },
                    bias: Span {
                        start: bias,
                        len: 2,
                    },
                    table: TableRef {
                        offset: table,
                        weight_count: 4,
                        input_count: 6,
                    },
                    act: Act::Lookup {
                        inputs: Span {
                            start: lut_x,
                            len: 7,
                        },
                        outputs: Span {
                            start: lut_y,
                            len: 7,
                        },
                    },
                    encoder: Some(Span { start: enc, len: 8 }),
                },
                Op::Dense {
                    inputs: 2,
                    outputs: 1,
                    weight_codes: Span { start: 6, len: 2 },
                    bias: Span {
                        start: bias2,
                        len: 1,
                    },
                    table: TableRef {
                        offset: table2,
                        weight_count: 2,
                        input_count: 8,
                    },
                    act: Act::Identity,
                    encoder: None,
                },
            ],
            floats: Cow::Owned(floats),
            codes: Cow::Owned(vec![0, 1, 2, 3, 1, 0, 0, 1]),
            packed: vec![],
        }
    }

    /// The exactness pin behind deletion-grade liveness: enumerate
    /// every concrete input (all 6^3 virtual-code combinations), run
    /// the kernel's exact f32 arithmetic, and check that every
    /// concrete LUT row and encoder code lands inside the analyzer's
    /// reachable ranges — so entries *outside* those ranges are dead on
    /// every execution, even under 1e7-scale catastrophic cancellation
    /// where f32 rounding error dwarfs the true sums.
    #[test]
    fn reach_contains_every_concrete_f32_sum() {
        let p = adversarial();
        let (report, facts) = analyze_collect(&p, DatapathModel::paper());
        assert!(!report.has_errors(), "{report}");
        let (llo, lhi) = facts.ops[0].lut_reach.expect("lut analyzed");
        let (elo, ehi) = facts.ops[0].encoder_reach.expect("encoder analyzed");

        let floats = &p.floats;
        // Pool layout: book 0..6, table 6..30, bias 30..32, then the
        // LUT pair and the encoder book.
        let lut_x = &floats[32..39];
        let lut_y = &floats[39..46];
        let enc = &floats[46..54];
        let mut lut_keys = Vec::new();
        load_keys(&mut lut_keys, lut_x);
        let mut enc_keys = Vec::new();
        load_keys(&mut enc_keys, enc);

        let table = |w: usize, x: usize| floats[6 + w * 6 + x];
        let wcodes: [usize; 6] = [0, 1, 2, 3, 1, 0];
        let bias = [floats[30], floats[31]];
        let mut seen_codes = [false; 8];
        for a in 0..6 {
            for b in 0..6 {
                for c in 0..6 {
                    for o in 0..2 {
                        // Kernel-order f32 accumulation: bias first,
                        // then one product per input.
                        let mut acc: f32 = bias[o];
                        for (j, &x) in [a, b, c].iter().enumerate() {
                            acc += table(wcodes[o * 3 + j], x);
                        }
                        let row = nearest_index(lut_x, &lut_keys, acc);
                        assert!(
                            (llo..=lhi).contains(&row),
                            "concrete LUT row {row} outside analyzed reach {llo}..={lhi}"
                        );
                        let code = nearest_index(enc, &enc_keys, lut_y[row]);
                        assert!(
                            (elo..=ehi).contains(&code),
                            "concrete code {code} outside analyzed reach {elo}..={ehi}"
                        );
                        seen_codes[code] = true;
                    }
                }
            }
        }
        // The finding is real: the analyzer proves entries dead, and
        // the exhaustive run confirms some truly are (the book has 8
        // entries, the LUT can only output [-1.5, 2.0]).
        assert!(ehi - elo + 1 < 8, "expected a strict reach subset");
        assert_eq!(report.liveness().dead_codebook_entries, 8 - (ehi - elo + 1));
        for (code, seen) in seen_codes.iter().enumerate() {
            if !(elo..=ehi).contains(&code) {
                assert!(
                    !seen,
                    "analyzer called code {code} dead but it was selected"
                );
            }
        }
    }

    /// Probe-rounding helpers round outward, never inward.
    #[test]
    fn f32_probe_rounding_is_outward() {
        for &x in &[0.1f64, -0.1, 1.0e-30, 3.3333333333333337, -7.7e18, 0.0] {
            assert!(f64::from(f32_down(x)) <= x);
            assert!(f64::from(f32_up(x)) >= x);
        }
        let exact = 0.25f64; // representable: conversions stay exact
        assert_eq!(f32_down(exact), 0.25);
        assert_eq!(f32_up(exact), 0.25);
    }
}
