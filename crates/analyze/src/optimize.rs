//! Certified artifact optimizer: analyzer-licensed rewrite passes with
//! translation validation.
//!
//! The checker already *proves* where a compiled program's footprint is
//! dead — encoder entries outside the reachable code range (RNA0104),
//! product-table rows no weight code references (RNA0201), columns
//! beyond or outside the input domain (RNA0202), LUT rows outside the
//! reachable pre-activation range (RNA0203). This module acts on those
//! proofs: [`optimize`] rewrites a program to drop the dead data and
//! emits, alongside the optimized program, a machine-checkable
//! [`Certificate`] — per-op remap tables plus a pass log — and
//! [`validate_certificate`] independently re-proves the rewrite:
//!
//! 1. it re-runs the analyzer on the *input* and checks every deletion
//!    the certificate declares is licensed by the input's liveness
//!    facts (kept ranges cover reachable ranges, kept rows cover every
//!    referenced row) — [`DiagCode::RewriteUnproven`] otherwise;
//! 2. it structurally checks the output is exactly the input's image
//!    under the certificate — every kept table/codebook/LUT/bias entry
//!    bit-identical, every weight code remapped as stated, every row
//!    map an order-preserving injection onto a prefix (a
//!    *permutation-compaction*, never a re-ordering or synthesis) —
//!    [`DiagCode::RewriteMismatch`] / [`DiagCode::CertificateInvalid`];
//! 3. it re-runs the analyzer on the *output* and requires an
//!    error-free report.
//!
//! Soundness of the passes leans on the exactness argument in
//! `checker.rs`/`interval.rs`: reachability is widened by a proven
//! `f32` rounding slack, so a deleted entry is unselectable on every
//! concrete execution and deletion preserves bit-identical inference.
//! Compacting an encoder book from `[lo, hi]` renames the codes it
//! emits by `-lo`; nearest-encode over a contiguous slice that contains
//! the full book's winner returns the same entry (ties included, since
//! tie-breaks resolve toward the lower index in both), so slicing every
//! consumer of that domain by the same range — product-table columns,
//! residual skip books, conv zero-padding codes — keeps every fetched
//! value identical. Row compaction renames stored weight codes through
//! the same map that moved the rows. Code-*width* narrowing falls out
//! downstream: fewer rows ⇒ fewer bits per packed code when the
//! serving writer re-serializes the program (its v2 sections are sized
//! at `ceil(log2(rows))`).
//!
//! One deliberate limitation: a domain consumed by an `AvgPool` is
//! never head-compacted. The avgpool book both *decodes* incoming
//! codes (indexing must stay aligned at 0) and *re-encodes* averages,
//! so only its tail can be trimmed; the planner records the barrier
//! and keeps that domain at full width.

use crate::checker::analyze_collect;
use crate::diag::{DiagCode, Diagnostic, Report};
use crate::program::{Act, Op, Program, Span, TableRef};
use rapidnn_accel::DatapathModel;
use std::borrow::Cow;

/// One rewrite pass of the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Dead codebook-entry elimination: encoder/avgpool books sliced to
    /// their reachable entry range.
    DeadEntryElimination,
    /// Product-table row compaction with weight-code remapping.
    RowCompaction,
    /// Product-table column / decode-book compaction to the kept range
    /// of the input domain.
    ColumnCompaction,
    /// Dead activation-LUT row pruning.
    LutPruning,
}

impl Pass {
    /// Stable lower-case name used in logs and stats JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Pass::DeadEntryElimination => "dead-entry-elimination",
            Pass::RowCompaction => "row-compaction",
            Pass::ColumnCompaction => "column-compaction",
            Pass::LutPruning => "lut-pruning",
        }
    }
}

/// One applied rewrite, recorded in the certificate's pass log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRecord {
    /// Which pass fired.
    pub pass: Pass,
    /// The op it rewrote.
    pub op: usize,
    /// Elements (entries, rows, columns, LUT rows) removed.
    pub removed: usize,
}

/// Per-op remap tables: how the optimized op's data indexes map back
/// to the input op's. All ranges are inclusive and in *input* indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpRemap {
    /// Per product table of the op (dense: one, conv: one per output
    /// channel): `row_maps[t][w_old] = Some(w_new)` when input row
    /// `w_old` was kept as output row `w_new`, `None` when deleted.
    /// Must be an order-preserving injection onto `0..new_rows`.
    pub row_maps: Vec<Vec<Option<u16>>>,
    /// Kept input-code range: the columns kept of each product table,
    /// or the entries kept of a residual skip book. Mirrors the kept
    /// range of the producing codebook upstream.
    pub kept_cols: Option<(usize, usize)>,
    /// Kept activation-LUT row range.
    pub kept_lut_rows: Option<(usize, usize)>,
    /// Kept entry range of the codebook this op encodes through (the
    /// dense/conv/residual-join encoder, or the avgpool book).
    pub kept_encoder: Option<(usize, usize)>,
}

/// Machine-checkable witness that an optimized program is a
/// permutation-compaction of its input: per-op remap tables plus the
/// log of passes that fired. Checked by [`validate_certificate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Kept entry range of the virtual input encoder. Always the full
    /// book: any input float can select any centroid, so the input
    /// book is never compacted.
    pub kept_virtual: (usize, usize),
    /// One remap record per op, aligned with the op list.
    pub ops: Vec<OpRemap>,
    /// Which passes fired where, with removal counts.
    pub log: Vec<PassRecord>,
}

impl Certificate {
    /// Total elements removed by `pass` across all ops.
    pub fn removed(&self, pass: Pass) -> usize {
        self.log
            .iter()
            .filter(|r| r.pass == pass)
            .map(|r| r.removed)
            .sum()
    }

    /// Total elements removed across all passes.
    pub fn removed_total(&self) -> usize {
        self.log.iter().map(|r| r.removed).sum()
    }
}

/// Result of a successful [`optimize`] run.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten program, over owned wide pools. Re-serializing it
    /// through the serving writer realizes the code-width narrowing.
    pub program: Program<'static>,
    /// The translation-validation witness.
    pub certificate: Certificate,
    /// The analysis report of the *input* program: its liveness counts
    /// are what licensed the passes.
    pub report: Report,
}

/// Inclusive kept range of one code domain, in old code indices.
type Keep = (usize, usize);

/// Which codebook produced the codes currently flowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Producer {
    /// The virtual input encoder.
    Input,
    /// Op `i`'s output book (its encoder, or the avgpool book).
    Op(usize),
}

/// Optimizes `program`: runs the analyzer, licenses the pass set from
/// its liveness facts, and returns the rewritten program plus its
/// [`Certificate`]. A program with nothing dead round-trips unchanged
/// (empty pass log, identity remaps).
///
/// The optimizer does not self-certify: callers (the serving crate's
/// `CompiledModel::optimize` does this unconditionally) should run
/// [`validate_certificate`] over (input, output, certificate) and
/// refuse the output on any error.
///
/// # Errors
///
/// The analysis report, boxed, when the input program has errors — an
/// invalid program licenses nothing.
pub fn optimize(program: &Program<'_>) -> Result<Optimized, Box<Report>> {
    let (report, facts) = analyze_collect(program, DatapathModel::paper());
    if report.has_errors() {
        return Err(Box::new(report));
    }

    // ------------------------------------------------------------------
    // Pass 1: plan the kept range of every code domain. A domain's keep
    // starts at its producer's reachable range and is only ever widened
    // by consumer constraints (conv zero-padding codes, the avgpool
    // barrier), so one forward scan suffices: constraints always refer
    // to the domain currently flowing.
    // ------------------------------------------------------------------
    let venc_len = program.virtual_encoder.len;
    let mut input_keep: Keep = (0, venc_len - 1);
    let mut op_keeps: Vec<Option<Keep>> = vec![None; program.ops.len()];
    {
        let mut cur: Option<(Producer, usize)> = Some((Producer::Input, venc_len));
        let widen = |keeps: &mut Vec<Option<Keep>>,
                     input_keep: &mut Keep,
                     p: Producer,
                     lo: usize,
                     hi: usize| {
            let k = match p {
                Producer::Input => input_keep,
                Producer::Op(i) => keeps[i].as_mut().expect("producer planned"),
            };
            k.0 = k.0.min(lo);
            k.1 = k.1.max(hi);
        };
        for (i, op) in program.ops.iter().enumerate() {
            match op {
                Op::Dense { encoder, .. } => {
                    cur = encoder.map(|s| {
                        op_keeps[i] = Some(facts.ops[i].encoder_reach.unwrap_or((0, s.len - 1)));
                        (Producer::Op(i), s.len)
                    });
                }
                Op::Conv {
                    geom,
                    zero_code,
                    encoder,
                    ..
                } => {
                    if geom.pad > 0 {
                        let (p, _) = cur.expect("conv consumes an encoded flow");
                        let z = *zero_code as usize;
                        widen(&mut op_keeps, &mut input_keep, p, z, z);
                    }
                    cur = encoder.map(|s| {
                        op_keeps[i] = Some(facts.ops[i].encoder_reach.unwrap_or((0, s.len - 1)));
                        (Producer::Op(i), s.len)
                    });
                }
                Op::MaxPool(_) | Op::ResidualBegin { .. } => {}
                Op::AvgPool { codebook, .. } => {
                    if let Some((p, domain)) = cur {
                        // Barrier: the avgpool book decodes incoming
                        // codes by direct indexing, so the incoming
                        // domain keeps its full width...
                        widen(&mut op_keeps, &mut input_keep, p, 0, domain - 1);
                        // ...and the book itself only trims its tail:
                        // kept head must cover both the decode role
                        // (indices up to domain-1) and the re-encode
                        // reach.
                        let reach = facts.ops[i].encoder_reach.unwrap_or((0, codebook.len - 1));
                        op_keeps[i] = Some((0, (domain - 1).max(reach.1)));
                        cur = Some((Producer::Op(i), codebook.len));
                    }
                }
                Op::ResidualEnd { encoder } => {
                    cur = encoder.map(|s| {
                        op_keeps[i] = Some(facts.ops[i].encoder_reach.unwrap_or((0, s.len - 1)));
                        (Producer::Op(i), s.len)
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: rebuild the program against the planned keeps, recording
    // the certificate as we go.
    // ------------------------------------------------------------------
    let floats = &program.floats[..];
    let codes = &program.codes[..];
    let mut b = Builder::default();
    let mut cert = Certificate {
        kept_virtual: input_keep,
        ops: vec![OpRemap::default(); program.ops.len()],
        log: Vec::new(),
    };
    let virtual_encoder = b.floats_span(slice(floats, program.virtual_encoder));
    let mut ops = Vec::with_capacity(program.ops.len());
    let mut cur: Option<Keep> = Some(input_keep);

    for (i, op) in program.ops.iter().enumerate() {
        let remap = &mut cert.ops[i];
        match op {
            Op::Dense {
                inputs,
                outputs,
                weight_codes,
                bias,
                table,
                act,
                encoder,
            } => {
                let keep = cur.expect("dense consumes an encoded flow");
                let (new_table, row_map) =
                    b.rebuild_table(floats, table, &facts.ops[i].used_rows[0], keep);
                let wc: Vec<u16> = slice_codes(codes, *weight_codes)
                    .iter()
                    .map(|&c| row_map[c as usize].expect("referenced rows are kept"))
                    .collect();
                log_table(&mut cert.log, i, table, &new_table, &row_map);
                let new_act = b.rebuild_act(floats, act, facts.ops[i].lut_reach, remap);
                if let (Act::Lookup { inputs: x, .. }, Some((llo, lhi))) =
                    (act, remap.kept_lut_rows)
                {
                    log_removed(&mut cert.log, Pass::LutPruning, i, x.len - (lhi - llo + 1));
                }
                let new_encoder = encoder.map(|s| {
                    let ekeep = op_keeps[i].expect("encoder planned");
                    remap.kept_encoder = Some(ekeep);
                    log_removed(
                        &mut cert.log,
                        Pass::DeadEntryElimination,
                        i,
                        s.len - (ekeep.1 - ekeep.0 + 1),
                    );
                    b.floats_span(&slice(floats, s)[ekeep.0..=ekeep.1])
                });
                remap.row_maps = vec![row_map];
                remap.kept_cols = Some(keep);
                ops.push(Op::Dense {
                    inputs: *inputs,
                    outputs: *outputs,
                    weight_codes: b.codes_span(&wc),
                    bias: b.floats_span(slice(floats, *bias)),
                    table: new_table,
                    act: new_act,
                    encoder: new_encoder,
                });
                cur = encoder.map(|_| op_keeps[i].expect("encoder planned"));
            }
            Op::Conv {
                geom,
                out_channels,
                weight_codes,
                bias,
                tables,
                zero_code,
                act,
                encoder,
            } => {
                let keep = cur.expect("conv consumes an encoded flow");
                let patch_len = geom.patch_len();
                let wc_old = slice_codes(codes, *weight_codes);
                let mut wc = Vec::with_capacity(wc_old.len());
                let mut new_tables = Vec::with_capacity(tables.len());
                let mut row_maps = Vec::with_capacity(tables.len());
                for (oc, table) in tables.iter().enumerate() {
                    let (new_table, row_map) =
                        b.rebuild_table(floats, table, &facts.ops[i].used_rows[oc], keep);
                    for &c in &wc_old[oc * patch_len..(oc + 1) * patch_len] {
                        wc.push(row_map[c as usize].expect("referenced rows are kept"));
                    }
                    log_table(&mut cert.log, i, table, &new_table, &row_map);
                    new_tables.push(new_table);
                    row_maps.push(row_map);
                }
                let new_zero = if (keep.0..=keep.1).contains(&(*zero_code as usize)) {
                    (*zero_code as usize - keep.0) as u16
                } else {
                    // pad == 0 (the planner widened the keep over the
                    // zero code otherwise): the code is never used at
                    // runtime, any in-domain value is valid.
                    0
                };
                let new_act = b.rebuild_act(floats, act, facts.ops[i].lut_reach, remap);
                if let (Act::Lookup { inputs: x, .. }, Some((llo, lhi))) =
                    (act, remap.kept_lut_rows)
                {
                    log_removed(&mut cert.log, Pass::LutPruning, i, x.len - (lhi - llo + 1));
                }
                let new_encoder = encoder.map(|s| {
                    let ekeep = op_keeps[i].expect("encoder planned");
                    remap.kept_encoder = Some(ekeep);
                    log_removed(
                        &mut cert.log,
                        Pass::DeadEntryElimination,
                        i,
                        s.len - (ekeep.1 - ekeep.0 + 1),
                    );
                    b.floats_span(&slice(floats, s)[ekeep.0..=ekeep.1])
                });
                remap.row_maps = row_maps;
                remap.kept_cols = Some(keep);
                ops.push(Op::Conv {
                    geom: *geom,
                    out_channels: *out_channels,
                    weight_codes: b.codes_span(&wc),
                    bias: b.floats_span(slice(floats, *bias)),
                    tables: new_tables,
                    zero_code: new_zero,
                    act: new_act,
                    encoder: new_encoder,
                });
                cur = encoder.map(|_| op_keeps[i].expect("encoder planned"));
            }
            Op::MaxPool(g) => ops.push(Op::MaxPool(*g)),
            Op::AvgPool { geom, codebook } => {
                let book = slice(floats, *codebook);
                let new_book = match cur {
                    Some(_) => {
                        let keep = op_keeps[i].expect("avgpool book planned");
                        remap.kept_encoder = Some(keep);
                        log_removed(
                            &mut cert.log,
                            Pass::DeadEntryElimination,
                            i,
                            codebook.len - (keep.1 + 1),
                        );
                        cur = Some(keep);
                        b.floats_span(&book[keep.0..=keep.1])
                    }
                    None => b.floats_span(book),
                };
                ops.push(Op::AvgPool {
                    geom: *geom,
                    codebook: new_book,
                });
            }
            Op::ResidualBegin { skip_codebook } => {
                let keep = cur.expect("residual begin consumes an encoded flow");
                remap.kept_cols = Some(keep);
                log_removed(
                    &mut cert.log,
                    Pass::ColumnCompaction,
                    i,
                    skip_codebook.len - (keep.1 - keep.0 + 1),
                );
                let book = slice(floats, *skip_codebook);
                ops.push(Op::ResidualBegin {
                    skip_codebook: b.floats_span(&book[keep.0..=keep.1]),
                });
            }
            Op::ResidualEnd { encoder } => {
                let new_encoder = encoder.map(|s| {
                    let ekeep = op_keeps[i].expect("encoder planned");
                    remap.kept_encoder = Some(ekeep);
                    log_removed(
                        &mut cert.log,
                        Pass::DeadEntryElimination,
                        i,
                        s.len - (ekeep.1 - ekeep.0 + 1),
                    );
                    b.floats_span(&slice(floats, s)[ekeep.0..=ekeep.1])
                });
                ops.push(Op::ResidualEnd {
                    encoder: new_encoder,
                });
                cur = encoder.map(|_| op_keeps[i].expect("encoder planned"));
            }
        }
    }

    Ok(Optimized {
        program: Program {
            input_features: program.input_features,
            output_features: program.output_features,
            virtual_encoder,
            ops,
            floats: Cow::Owned(b.floats),
            codes: Cow::Owned(b.codes),
            packed: Vec::new(),
        },
        certificate: cert,
        report,
    })
}

fn slice(floats: &[f32], s: Span) -> &[f32] {
    &floats[s.start..s.start + s.len]
}

fn slice_codes(codes: &[u16], s: Span) -> &[u16] {
    &codes[s.start..s.start + s.len]
}

fn log_removed(log: &mut Vec<PassRecord>, pass: Pass, op: usize, removed: usize) {
    if removed > 0 {
        log.push(PassRecord { pass, op, removed });
    }
}

fn log_table(
    log: &mut Vec<PassRecord>,
    op: usize,
    old: &TableRef,
    new: &TableRef,
    row_map: &[Option<u16>],
) {
    let dropped_rows = row_map.iter().filter(|m| m.is_none()).count();
    log_removed(log, Pass::RowCompaction, op, dropped_rows);
    log_removed(
        log,
        Pass::ColumnCompaction,
        op,
        (old.input_count - new.input_count) * new.weight_count,
    );
}

#[derive(Default)]
struct Builder {
    floats: Vec<f32>,
    codes: Vec<u16>,
}

impl Builder {
    fn floats_span(&mut self, values: &[f32]) -> Span {
        let start = self.floats.len();
        self.floats.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn codes_span(&mut self, values: &[u16]) -> Span {
        let start = self.codes.len();
        self.codes.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    /// Copies `table` keeping only `used` rows and the `keep` column
    /// range; returns the new ref and the order-preserving row map.
    fn rebuild_table(
        &mut self,
        floats: &[f32],
        table: &TableRef,
        used: &[bool],
        keep: Keep,
    ) -> (TableRef, Vec<Option<u16>>) {
        let cols = keep.1 - keep.0 + 1;
        let mut row_map = vec![None; table.weight_count];
        let start = self.floats.len();
        let mut next = 0u16;
        for (w, m) in row_map.iter_mut().enumerate() {
            if !used[w] {
                continue;
            }
            let row = &floats[table.offset + w * table.input_count..][..table.input_count];
            self.floats.extend_from_slice(&row[keep.0..=keep.1]);
            *m = Some(next);
            next += 1;
        }
        (
            TableRef {
                offset: start,
                weight_count: next as usize,
                input_count: cols,
            },
            row_map,
        )
    }

    /// Copies an activation step, pruning a lookup to its reachable
    /// rows and recording the kept range in `remap`.
    fn rebuild_act(
        &mut self,
        floats: &[f32],
        act: &Act,
        lut_reach: Option<(usize, usize)>,
        remap: &mut OpRemap,
    ) -> Act {
        match act {
            Act::Identity => Act::Identity,
            Act::Relu => Act::Relu,
            Act::Lookup { inputs, outputs } => {
                let (lo, hi) = lut_reach.unwrap_or((0, inputs.len - 1));
                remap.kept_lut_rows = Some((lo, hi));
                Act::Lookup {
                    inputs: self.floats_span(&slice(floats, *inputs)[lo..=hi]),
                    outputs: self.floats_span(&slice(floats, *outputs)[lo..=hi]),
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Translation validation
// ----------------------------------------------------------------------

/// Independently re-proves that `output` is the certified image of
/// `input`: re-analyzes the input and checks every deletion is
/// licensed by its liveness facts, structurally checks the
/// permutation-compaction against the certificate entry by entry (bit
/// comparisons throughout), and re-analyzes the output. The returned
/// report is error-free exactly when the rewrite is proven; callers
/// must treat any error ([`DiagCode::CertificateInvalid`],
/// [`DiagCode::RewriteMismatch`], [`DiagCode::RewriteUnproven`], or an
/// output re-analysis error) as a refusal to serve the output.
pub fn validate_certificate(
    input: &Program<'_>,
    output: &Program<'_>,
    cert: &Certificate,
) -> Report {
    let mut v = Validator {
        report: Report::new(),
    };
    v.run(input, output, cert);
    v.report
}

struct Validator {
    report: Report,
}

impl Validator {
    fn fail(&mut self, code: DiagCode, op: Option<usize>, msg: String) {
        self.report.push(Diagnostic::new(code, op, msg));
    }

    fn run(&mut self, input: &Program<'_>, output: &Program<'_>, cert: &Certificate) {
        // Shape-level certificate checks before touching any pool.
        if cert.ops.len() != input.ops.len() || input.ops.len() != output.ops.len() {
            self.fail(
                DiagCode::CertificateInvalid,
                None,
                format!(
                    "certificate covers {} ops, input has {}, output has {}",
                    cert.ops.len(),
                    input.ops.len(),
                    output.ops.len()
                ),
            );
            return;
        }
        if input.input_features != output.input_features
            || input.output_features != output.output_features
        {
            self.fail(
                DiagCode::RewriteMismatch,
                None,
                "optimized program changes the input/output feature widths".to_string(),
            );
            return;
        }

        // The input analysis supplies the liveness facts that license
        // every deletion; the output analysis proves the rewritten
        // program well-formed and bounds-safe (which also makes the
        // structural span indexing below panic-free).
        let (in_report, facts) = analyze_collect(input, DatapathModel::paper());
        if in_report.has_errors() {
            self.fail(
                DiagCode::RewriteUnproven,
                None,
                format!(
                    "input program fails analysis ({}); nothing is licensed",
                    in_report.summary()
                ),
            );
            return;
        }
        let out_report = crate::checker::analyze(output);
        if out_report.has_errors() {
            let mut d = Diagnostic::new(
                DiagCode::RewriteUnproven,
                None,
                format!(
                    "re-analysis of the optimized program fails ({})",
                    out_report.summary()
                ),
            );
            for diag in out_report.diagnostics() {
                d = d.with_note(diag.to_string());
            }
            self.report.push(d);
            return;
        }

        // Virtual encoder: never compacted, bit-identical.
        if cert.kept_virtual != (0, input.virtual_encoder.len - 1) {
            self.fail(
                DiagCode::CertificateInvalid,
                None,
                "certificate compacts the virtual input encoder".to_string(),
            );
        } else if !bits_eq(
            slice(&input.floats, input.virtual_encoder),
            slice(&output.floats, output.virtual_encoder),
        ) {
            self.fail(
                DiagCode::RewriteMismatch,
                None,
                "virtual input encoder changed".to_string(),
            );
        }

        // Structural walk. `cert_keep` is the certificate's kept range
        // of the domain currently flowing; `reach` is the analyzer's
        // reachable range for it on the *input* — every consumer
        // requires cert_keep ⊇ reach (deletion licensed), and every
        // consumer's slice must equal cert_keep (consistent renaming).
        let mut cert_keep: Keep = cert.kept_virtual;
        let mut reach: Keep = (0, input.virtual_encoder.len - 1);
        let mut domain = input.virtual_encoder.len;
        let mut encoded = true;
        for (i, (io, oo)) in input.ops.iter().zip(&output.ops).enumerate() {
            let m = &cert.ops[i];
            match (io, oo) {
                (
                    Op::Dense {
                        inputs: ii,
                        outputs: io_out,
                        weight_codes: iwc,
                        bias: ib,
                        table: it,
                        act: ia,
                        encoder: ie,
                    },
                    Op::Dense {
                        inputs: oi,
                        outputs: oo_out,
                        weight_codes: owc,
                        bias: ob,
                        table: ot,
                        act: oa,
                        encoder: oe,
                    },
                ) => {
                    if ii != oi || io_out != oo_out {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "dense: shape changed".to_string(),
                        );
                        return;
                    }
                    if !self.check_consumer(i, m, cert_keep, reach, domain) {
                        return;
                    }
                    let Some(row_map) = self.check_table_pair(
                        i,
                        input,
                        output,
                        it,
                        ot,
                        m.row_maps.first(),
                        cert_keep,
                    ) else {
                        return;
                    };
                    if !self.check_codes(
                        i,
                        slice_codes(&input.codes, *iwc),
                        slice_codes(&output.codes, *owc),
                        row_map,
                    ) {
                        return;
                    }
                    if !bits_eq(slice(&input.floats, *ib), slice(&output.floats, *ob)) {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "dense: bias changed".to_string(),
                        );
                        return;
                    }
                    if !self.check_act(i, input, output, ia, oa, m, facts.ops[i].lut_reach) {
                        return;
                    }
                    match self.check_encoder(i, input, output, *ie, *oe, m, &facts.ops[i]) {
                        Ok(Some((keep, r, d))) => {
                            cert_keep = keep;
                            reach = r;
                            domain = d;
                            encoded = true;
                        }
                        Ok(None) => encoded = false,
                        Err(()) => return,
                    }
                }
                (
                    Op::Conv {
                        geom: ig,
                        out_channels: ic,
                        weight_codes: iwc,
                        bias: ib,
                        tables: its,
                        zero_code: iz,
                        act: ia,
                        encoder: ie,
                    },
                    Op::Conv {
                        geom: og,
                        out_channels: oc,
                        weight_codes: owc,
                        bias: ob,
                        tables: ots,
                        zero_code: oz,
                        act: oa,
                        encoder: oe,
                    },
                ) => {
                    if ig != og || ic != oc || its.len() != ots.len() {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "conv: geometry or channel count changed".to_string(),
                        );
                        return;
                    }
                    if !self.check_consumer(i, m, cert_keep, reach, domain) {
                        return;
                    }
                    if ig.pad > 0 {
                        let z = *iz as usize;
                        if !(cert_keep.0..=cert_keep.1).contains(&z) {
                            self.fail(
                                DiagCode::RewriteUnproven,
                                Some(i),
                                format!(
                                    "conv: zero-padding code {z} deleted by kept range {}..={}",
                                    cert_keep.0, cert_keep.1
                                ),
                            );
                            return;
                        }
                        if *oz as usize != z - cert_keep.0 {
                            self.fail(
                                DiagCode::RewriteMismatch,
                                Some(i),
                                "conv: zero-padding code not remapped with its domain".to_string(),
                            );
                            return;
                        }
                    }
                    if m.row_maps.len() != its.len() {
                        self.fail(
                            DiagCode::CertificateInvalid,
                            Some(i),
                            format!(
                                "conv: {} row maps for {} channel tables",
                                m.row_maps.len(),
                                its.len()
                            ),
                        );
                        return;
                    }
                    let patch_len = ig.patch_len();
                    let iw = slice_codes(&input.codes, *iwc);
                    let ow = slice_codes(&output.codes, *owc);
                    for (t, (it, ot)) in its.iter().zip(ots).enumerate() {
                        let Some(row_map) = self.check_table_pair(
                            i,
                            input,
                            output,
                            it,
                            ot,
                            m.row_maps.get(t),
                            cert_keep,
                        ) else {
                            return;
                        };
                        if !self.check_codes(
                            i,
                            &iw[t * patch_len..(t + 1) * patch_len],
                            &ow[t * patch_len..(t + 1) * patch_len],
                            row_map,
                        ) {
                            return;
                        }
                    }
                    if !bits_eq(slice(&input.floats, *ib), slice(&output.floats, *ob)) {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "conv: bias changed".to_string(),
                        );
                        return;
                    }
                    if !self.check_act(i, input, output, ia, oa, m, facts.ops[i].lut_reach) {
                        return;
                    }
                    match self.check_encoder(i, input, output, *ie, *oe, m, &facts.ops[i]) {
                        Ok(Some((keep, r, d))) => {
                            cert_keep = keep;
                            reach = r;
                            domain = d;
                            encoded = true;
                        }
                        Ok(None) => encoded = false,
                        Err(()) => return,
                    }
                }
                (Op::MaxPool(ig), Op::MaxPool(og)) => {
                    if ig != og {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "maxpool: geometry changed".to_string(),
                        );
                        return;
                    }
                }
                (
                    Op::AvgPool {
                        geom: ig,
                        codebook: ibk,
                    },
                    Op::AvgPool {
                        geom: og,
                        codebook: obk,
                    },
                ) => {
                    if ig != og {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "avgpool: geometry changed".to_string(),
                        );
                        return;
                    }
                    if !encoded {
                        if !bits_eq(slice(&input.floats, *ibk), slice(&output.floats, *obk)) {
                            self.fail(
                                DiagCode::RewriteMismatch,
                                Some(i),
                                "avgpool: decoded-domain codebook changed".to_string(),
                            );
                            return;
                        }
                        continue;
                    }
                    // Encoded: the barrier requires the incoming domain
                    // at full width, and the book may only trim its
                    // tail past both the decode range and the
                    // re-encode reach.
                    if cert_keep != (0, domain - 1) {
                        self.fail(
                            DiagCode::RewriteUnproven,
                            Some(i),
                            "avgpool: incoming domain was compacted across the decode barrier"
                                .to_string(),
                        );
                        return;
                    }
                    let Some((blo, bhi)) = m.kept_encoder else {
                        self.fail(
                            DiagCode::CertificateInvalid,
                            Some(i),
                            "avgpool: certificate missing the book's kept range".to_string(),
                        );
                        return;
                    };
                    let book_reach = facts.ops[i].encoder_reach.unwrap_or((0, ibk.len - 1));
                    if blo != 0 || bhi >= ibk.len || bhi < (domain - 1).max(book_reach.1) {
                        self.fail(
                            DiagCode::RewriteUnproven,
                            Some(i),
                            format!(
                                "avgpool: kept book range {blo}..={bhi} does not cover decode \
                                 domain {domain} and re-encode reach {}..={}",
                                book_reach.0, book_reach.1
                            ),
                        );
                        return;
                    }
                    let ib = slice(&input.floats, *ibk);
                    let ob = slice(&output.floats, *obk);
                    if ob.len() != bhi - blo + 1 || !bits_eq(&ib[blo..=bhi], ob) {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "avgpool: book is not the certified slice of its input".to_string(),
                        );
                        return;
                    }
                    cert_keep = (blo, bhi);
                    reach = book_reach;
                    domain = ibk.len;
                }
                (
                    Op::ResidualBegin { skip_codebook: ibk },
                    Op::ResidualBegin { skip_codebook: obk },
                ) => {
                    if !self.check_consumer(i, m, cert_keep, reach, domain) {
                        return;
                    }
                    let (klo, khi) = cert_keep;
                    if khi >= ibk.len {
                        self.fail(
                            DiagCode::CertificateInvalid,
                            Some(i),
                            "residual skip: kept range exceeds the book".to_string(),
                        );
                        return;
                    }
                    let ib = slice(&input.floats, *ibk);
                    let ob = slice(&output.floats, *obk);
                    if ob.len() != khi - klo + 1 || !bits_eq(&ib[klo..=khi], ob) {
                        self.fail(
                            DiagCode::RewriteMismatch,
                            Some(i),
                            "residual skip: book is not the certified slice of its input"
                                .to_string(),
                        );
                        return;
                    }
                }
                (Op::ResidualEnd { encoder: ie }, Op::ResidualEnd { encoder: oe }) => {
                    match self.check_encoder(i, input, output, *ie, *oe, m, &facts.ops[i]) {
                        Ok(Some((keep, r, d))) => {
                            cert_keep = keep;
                            reach = r;
                            domain = d;
                            encoded = true;
                        }
                        Ok(None) => encoded = false,
                        Err(()) => return,
                    }
                }
                _ => {
                    self.fail(
                        DiagCode::RewriteMismatch,
                        Some(i),
                        "op kind changed".to_string(),
                    );
                    return;
                }
            }
        }
    }

    /// A consumer of the flowing domain: the certificate's kept range
    /// must cover the input's reachable range (deletion licensed) and
    /// the op's recorded slice must equal it (consistent renaming).
    fn check_consumer(
        &mut self,
        op: usize,
        m: &OpRemap,
        cert_keep: Keep,
        reach: Keep,
        domain: usize,
    ) -> bool {
        if m.kept_cols != Some(cert_keep) {
            self.fail(
                DiagCode::CertificateInvalid,
                Some(op),
                format!(
                    "kept columns {:?} disagree with the domain's kept range {}..={}",
                    m.kept_cols, cert_keep.0, cert_keep.1
                ),
            );
            return false;
        }
        if cert_keep.0 > reach.0 || cert_keep.1 < reach.1 || cert_keep.1 >= domain {
            self.fail(
                DiagCode::RewriteUnproven,
                Some(op),
                format!(
                    "kept range {}..={} does not cover the reachable codes {}..={} of the \
                     {domain}-entry domain",
                    cert_keep.0, cert_keep.1, reach.0, reach.1
                ),
            );
            return false;
        }
        true
    }

    /// Checks one (input table, output table, row map) triple: the map
    /// is an order-preserving injection onto `0..new_rows`, and the
    /// output rows are bit-identical projections of kept input rows
    /// over the kept columns. Returns the map on success.
    #[allow(clippy::too_many_arguments)]
    fn check_table_pair<'m>(
        &mut self,
        op: usize,
        input: &Program<'_>,
        output: &Program<'_>,
        it: &TableRef,
        ot: &TableRef,
        row_map: Option<&'m Vec<Option<u16>>>,
        keep: Keep,
    ) -> Option<&'m Vec<Option<u16>>> {
        let Some(row_map) = row_map else {
            self.fail(
                DiagCode::CertificateInvalid,
                Some(op),
                "missing row map for a product table".to_string(),
            );
            return None;
        };
        if row_map.len() != it.weight_count || keep.1 >= it.input_count {
            self.fail(
                DiagCode::CertificateInvalid,
                Some(op),
                format!(
                    "row map covers {} of {} rows, or kept columns {}..={} exceed {}",
                    row_map.len(),
                    it.weight_count,
                    keep.0,
                    keep.1,
                    it.input_count
                ),
            );
            return None;
        }
        let mut next = 0u16;
        for n in row_map.iter().flatten() {
            if *n != next {
                self.fail(
                    DiagCode::CertificateInvalid,
                    Some(op),
                    "row map is not an order-preserving compaction".to_string(),
                );
                return None;
            }
            next += 1;
        }
        let cols = keep.1 - keep.0 + 1;
        if ot.weight_count != next as usize || ot.input_count != cols {
            self.fail(
                DiagCode::RewriteMismatch,
                Some(op),
                format!(
                    "output table is {}x{}, certificate implies {}x{cols}",
                    ot.weight_count, ot.input_count, next
                ),
            );
            return None;
        }
        for (w, m) in row_map.iter().enumerate() {
            let Some(n) = m else { continue };
            let old = &input.floats[it.offset + w * it.input_count..][keep.0..=keep.1];
            let new = &output.floats[ot.offset + *n as usize * cols..][..cols];
            if !bits_eq(old, new) {
                self.fail(
                    DiagCode::RewriteMismatch,
                    Some(op),
                    format!("table row {w} is not preserved bit-identically"),
                );
                return None;
            }
        }
        Some(row_map)
    }

    /// Every input weight code must be kept by the map (it references
    /// a live row) and remapped to exactly the stated new row.
    fn check_codes(
        &mut self,
        op: usize,
        input: &[u16],
        output: &[u16],
        row_map: &[Option<u16>],
    ) -> bool {
        if input.len() != output.len() {
            self.fail(
                DiagCode::RewriteMismatch,
                Some(op),
                "weight-code count changed".to_string(),
            );
            return false;
        }
        for (j, (&ic, &oc)) in input.iter().zip(output).enumerate() {
            match row_map.get(ic as usize).copied().flatten() {
                None => {
                    self.fail(
                        DiagCode::RewriteUnproven,
                        Some(op),
                        format!("weight code {ic} (index {j}) references a deleted row"),
                    );
                    return false;
                }
                Some(n) if n != oc => {
                    self.fail(
                        DiagCode::RewriteMismatch,
                        Some(op),
                        format!("weight code {ic} remapped to {oc}, certificate says {n}"),
                    );
                    return false;
                }
                Some(_) => {}
            }
        }
        true
    }

    /// Activation step: exact kinds copy through; lookups must keep a
    /// range covering the input's reachable rows and slice both spans
    /// bit-identically.
    #[allow(clippy::too_many_arguments)]
    fn check_act(
        &mut self,
        op: usize,
        input: &Program<'_>,
        output: &Program<'_>,
        ia: &Act,
        oa: &Act,
        m: &OpRemap,
        lut_reach: Option<(usize, usize)>,
    ) -> bool {
        match (ia, oa) {
            (Act::Identity, Act::Identity) | (Act::Relu, Act::Relu) => true,
            (
                Act::Lookup {
                    inputs: ix,
                    outputs: iy,
                },
                Act::Lookup {
                    inputs: ox,
                    outputs: oy,
                },
            ) => {
                let Some((lo, hi)) = m.kept_lut_rows else {
                    self.fail(
                        DiagCode::CertificateInvalid,
                        Some(op),
                        "lookup activation without a kept-row range".to_string(),
                    );
                    return false;
                };
                if hi >= ix.len {
                    self.fail(
                        DiagCode::CertificateInvalid,
                        Some(op),
                        "kept LUT rows exceed the table".to_string(),
                    );
                    return false;
                }
                let (rlo, rhi) = lut_reach.unwrap_or((0, ix.len - 1));
                if lo > rlo || hi < rhi {
                    self.fail(
                        DiagCode::RewriteUnproven,
                        Some(op),
                        format!(
                            "kept LUT rows {lo}..={hi} do not cover the reachable rows \
                             {rlo}..={rhi}"
                        ),
                    );
                    return false;
                }
                let len = hi - lo + 1;
                if ox.len != len
                    || oy.len != len
                    || !bits_eq(
                        &slice(&input.floats, *ix)[lo..=hi],
                        slice(&output.floats, *ox),
                    )
                    || !bits_eq(
                        &slice(&input.floats, *iy)[lo..=hi],
                        slice(&output.floats, *oy),
                    )
                {
                    self.fail(
                        DiagCode::RewriteMismatch,
                        Some(op),
                        "LUT is not the certified slice of its input".to_string(),
                    );
                    return false;
                }
                true
            }
            _ => {
                self.fail(
                    DiagCode::RewriteMismatch,
                    Some(op),
                    "activation kind changed".to_string(),
                );
                false
            }
        }
    }

    /// Encoder step of a neuron/join op. On success returns the new
    /// flowing-domain state `(cert_keep, reach, old_domain)` when the
    /// op re-encodes, `None` when it ends in floats.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn check_encoder(
        &mut self,
        op: usize,
        input: &Program<'_>,
        output: &Program<'_>,
        ie: Option<Span>,
        oe: Option<Span>,
        m: &OpRemap,
        facts: &crate::checker::OpFacts,
    ) -> Result<Option<(Keep, Keep, usize)>, ()> {
        match (ie, oe) {
            (None, None) => Ok(None),
            (Some(is), Some(os)) => {
                let Some((elo, ehi)) = m.kept_encoder else {
                    self.fail(
                        DiagCode::CertificateInvalid,
                        Some(op),
                        "encoder without a kept-entry range".to_string(),
                    );
                    return Err(());
                };
                if ehi >= is.len {
                    self.fail(
                        DiagCode::CertificateInvalid,
                        Some(op),
                        "kept encoder entries exceed the book".to_string(),
                    );
                    return Err(());
                }
                let reach = facts.encoder_reach.unwrap_or((0, is.len - 1));
                if elo > reach.0 || ehi < reach.1 {
                    self.fail(
                        DiagCode::RewriteUnproven,
                        Some(op),
                        format!(
                            "kept encoder entries {elo}..={ehi} do not cover the reachable \
                             codes {}..={}",
                            reach.0, reach.1
                        ),
                    );
                    return Err(());
                }
                let len = ehi - elo + 1;
                if os.len != len
                    || !bits_eq(
                        &slice(&input.floats, is)[elo..=ehi],
                        slice(&output.floats, os),
                    )
                {
                    self.fail(
                        DiagCode::RewriteMismatch,
                        Some(op),
                        "encoder book is not the certified slice of its input".to_string(),
                    );
                    return Err(());
                }
                Ok(Some(((elo, ehi), reach, is.len)))
            }
            _ => {
                self.fail(
                    DiagCode::RewriteMismatch,
                    Some(op),
                    "encoder presence changed".to_string(),
                );
                Err(())
            }
        }
    }
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

// ----------------------------------------------------------------------
// Synthetic degradation (test/bench utility)
// ----------------------------------------------------------------------

/// Returns a semantically identical program whose dense/conv product
/// tables carry `extra` additional rows that no weight code references.
/// Inference is bit-identical (the new rows are never fetched), but
/// the footprint — and, once serialized, the per-code bit width — grows,
/// giving tests and benchmarks a model the optimizer provably shrinks.
pub fn inject_dead_rows(program: &Program<'_>, extra: usize) -> Program<'static> {
    let mut floats = program.floats.to_vec();
    let pad_table = |floats: &mut Vec<f32>, t: &TableRef| -> TableRef {
        let start = floats.len();
        let data: Vec<f32> = floats[t.offset..t.offset + t.weight_count * t.input_count].to_vec();
        floats.extend_from_slice(&data);
        for j in 0..extra * t.input_count {
            // Arbitrary finite filler, distinct from real entries so a
            // buggy "optimizer" that kept them would be caught.
            floats.push(1.0e4 + j as f32);
        }
        TableRef {
            offset: start,
            weight_count: t.weight_count + extra,
            input_count: t.input_count,
        }
    };
    let ops = program
        .ops
        .iter()
        .map(|op| match op {
            Op::Dense {
                inputs,
                outputs,
                weight_codes,
                bias,
                table,
                act,
                encoder,
            } => Op::Dense {
                inputs: *inputs,
                outputs: *outputs,
                weight_codes: *weight_codes,
                bias: *bias,
                table: pad_table(&mut floats, table),
                act: act.clone(),
                encoder: *encoder,
            },
            Op::Conv {
                geom,
                out_channels,
                weight_codes,
                bias,
                tables,
                zero_code,
                act,
                encoder,
            } => Op::Conv {
                geom: *geom,
                out_channels: *out_channels,
                weight_codes: *weight_codes,
                bias: *bias,
                tables: tables.iter().map(|t| pad_table(&mut floats, t)).collect(),
                zero_code: *zero_code,
                act: act.clone(),
                encoder: *encoder,
            },
            other => other.clone(),
        })
        .collect();
    Program {
        input_features: program.input_features,
        output_features: program.output_features,
        virtual_encoder: program.virtual_encoder,
        ops,
        floats: Cow::Owned(floats),
        codes: Cow::Owned(program.codes.to_vec()),
        packed: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::analyze;

    /// Two dense layers with every kind of dead data the pass set
    /// targets: a never-referenced product-table row, columns beyond
    /// the input domain, dead LUT head/tail rows, dead outer encoder
    /// entries, and second-layer columns outside the reachable code
    /// range of that compacted encoder.
    fn deadweight() -> Program<'static> {
        let mut floats = vec![-1.0, -0.5, 0.5, 1.0]; // virtual book (4)
        let table = floats.len();
        #[rustfmt::skip]
        floats.extend_from_slice(&[
            // 4 weight rows x 6 columns; the domain is 4, so columns
            // 4..6 (the 9.0 filler) are dead. Row 2 is unreferenced.
            0.5, -0.25, 0.25, 0.75, 9.0, 9.0,
            -0.5, 0.5, -0.75, 1.0, 9.0, 9.0,
            7.0, 7.0, 7.0, 7.0, 9.0, 9.0,
            0.25, -1.0, 0.5, -0.25, 9.0, 9.0,
        ]);
        let bias = floats.len();
        floats.extend_from_slice(&[0.1, -0.1]);
        let lut_x = floats.len();
        floats.extend_from_slice(&[-100.0, -1.0, 0.0, 1.0, 100.0]);
        let lut_y = floats.len();
        // Pre-activations stay within [-2.2, 2.2]: LUT rows 0 and 4
        // (keyed at +-100) are dead.
        floats.extend_from_slice(&[-5.0, 0.1, 0.2, 0.3, 5.0]);
        let enc = floats.len();
        // Reachable LUT outputs are [0.1, 0.3]: entries 0 and 4 of the
        // re-encoder are dead (codes compact from 5 to 3 entries, so
        // the packed width narrows from 3 bits to 2).
        floats.extend_from_slice(&[-10.0, 0.0, 0.2, 0.4, 10.0]);
        let table2 = floats.len();
        #[rustfmt::skip]
        floats.extend_from_slice(&[
            // 2 rows x 5 columns; only columns 1..=3 are reachable.
            0.5, -0.5, 1.0, -1.0, 0.25,
            -1.5, 1.5, 0.75, -0.75, 3.0,
        ]);
        let bias2 = floats.len();
        floats.push(0.0625);
        Program {
            input_features: 2,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 4 },
            ops: vec![
                Op::Dense {
                    inputs: 2,
                    outputs: 2,
                    weight_codes: Span { start: 0, len: 4 },
                    bias: Span {
                        start: bias,
                        len: 2,
                    },
                    table: TableRef {
                        offset: table,
                        weight_count: 4,
                        input_count: 6,
                    },
                    act: Act::Lookup {
                        inputs: Span {
                            start: lut_x,
                            len: 5,
                        },
                        outputs: Span {
                            start: lut_y,
                            len: 5,
                        },
                    },
                    encoder: Some(Span { start: enc, len: 5 }),
                },
                Op::Dense {
                    inputs: 2,
                    outputs: 1,
                    weight_codes: Span { start: 4, len: 2 },
                    bias: Span {
                        start: bias2,
                        len: 1,
                    },
                    table: TableRef {
                        offset: table2,
                        weight_count: 2,
                        input_count: 5,
                    },
                    act: Act::Identity,
                    encoder: None,
                },
            ],
            floats: Cow::Owned(floats),
            codes: Cow::Owned(vec![0, 1, 3, 3, 0, 1]),
            packed: vec![],
        }
    }

    #[test]
    fn dead_data_is_compacted_and_certified() {
        let p = deadweight();
        let opt = optimize(&p).expect("input analyzes clean");
        let cert = &opt.certificate;

        // Every pass fired.
        assert!(cert.removed(Pass::RowCompaction) == 1, "{:?}", cert.log);
        assert!(cert.removed(Pass::LutPruning) == 2, "{:?}", cert.log);
        assert!(
            cert.removed(Pass::DeadEntryElimination) == 2,
            "{:?}",
            cert.log
        );
        // Layer 1 drops 2 dead columns on each of 3 kept rows; layer 2
        // drops columns 0 and 4 on each of 2 rows.
        assert!(cert.removed(Pass::ColumnCompaction) == 10, "{:?}", cert.log);

        // Structure of the rewrite.
        let Op::Dense { table, encoder, .. } = &opt.program.ops[0] else {
            panic!("op kind preserved");
        };
        assert_eq!((table.weight_count, table.input_count), (3, 4));
        assert_eq!(encoder.unwrap().len, 3);
        let Op::Dense { table, .. } = &opt.program.ops[1] else {
            panic!("op kind preserved");
        };
        assert_eq!((table.weight_count, table.input_count), (2, 3));
        // Weight codes remapped through the row map (row 2 deleted).
        assert_eq!(&opt.program.codes[..4], &[0, 1, 2, 2]);
        assert!(opt.program.floats.len() < p.floats.len());

        // The validator re-proves the rewrite...
        let vr = validate_certificate(&p, &opt.program, cert);
        assert!(!vr.has_errors(), "{vr}");
        // ...the optimized program is itself clean of liveness findings
        // (a second run is the identity)...
        let again = optimize(&opt.program).expect("optimized analyzes clean");
        assert!(
            again.certificate.log.is_empty(),
            "{:?}",
            again.certificate.log
        );
        assert_eq!(analyze(&opt.program).liveness().total(), 0);
        // ...and the licensing report counted what was removed.
        assert_eq!(opt.report.liveness().dead_codebook_entries, 2);
        assert_eq!(opt.report.liveness().dead_lut_rows, 2);
        assert!(opt.report.liveness().dead_table_rows >= 1);
    }

    #[test]
    fn clean_program_round_trips_unchanged() {
        let p = deadweight();
        let clean = optimize(&p).unwrap().program;
        let opt = optimize(&clean).unwrap();
        assert!(opt.certificate.log.is_empty());
        assert_eq!(opt.program.floats.len(), clean.floats.len());
        assert_eq!(opt.program.codes[..], clean.codes[..]);
        let vr = validate_certificate(&clean, &opt.program, &opt.certificate);
        assert!(!vr.has_errors(), "{vr}");
    }

    #[test]
    fn corrupted_certificate_is_typed_invalid() {
        let p = deadweight();
        let opt = optimize(&p).unwrap();

        // Row map reordered: no longer an order-preserving compaction.
        let mut cert = opt.certificate.clone();
        cert.ops[0].row_maps[0] = vec![Some(1), Some(0), None, Some(2)];
        let vr = validate_certificate(&p, &opt.program, &cert);
        assert!(vr.find(DiagCode::CertificateInvalid).is_some(), "{vr}");

        // Wrong op count.
        let mut cert = opt.certificate.clone();
        cert.ops.pop();
        let vr = validate_certificate(&p, &opt.program, &cert);
        assert!(vr.find(DiagCode::CertificateInvalid).is_some(), "{vr}");
    }

    #[test]
    fn unlicensed_deletion_is_typed_unproven() {
        let p = deadweight();
        let opt = optimize(&p).unwrap();
        // Claim a narrower encoder keep than the reachable range: the
        // deletion is no longer licensed by the input's facts.
        let mut cert = opt.certificate.clone();
        cert.ops[0].kept_encoder = Some((2, 3));
        let vr = validate_certificate(&p, &opt.program, &cert);
        assert!(vr.find(DiagCode::RewriteUnproven).is_some(), "{vr}");
    }

    #[test]
    fn tampered_output_is_typed_mismatch() {
        let p = deadweight();
        let opt = optimize(&p).unwrap();

        // Flip one kept table entry: projection no longer bit-equal.
        let mut out = opt.program.clone();
        let Op::Dense { table, .. } = &out.ops[0] else {
            unreachable!()
        };
        out.floats.to_mut()[table.offset] += 1.0;
        let vr = validate_certificate(&p, &out, &opt.certificate);
        assert!(vr.find(DiagCode::RewriteMismatch).is_some(), "{vr}");

        // Mis-remap one weight code (still in bounds: row 1 exists).
        let mut out = opt.program.clone();
        out.codes.to_mut()[0] = 1;
        let vr = validate_certificate(&p, &out, &opt.certificate);
        assert!(vr.find(DiagCode::RewriteMismatch).is_some(), "{vr}");
    }

    #[test]
    fn ill_formed_output_is_typed_unproven() {
        let p = deadweight();
        let opt = optimize(&p).unwrap();
        // Break the output so its re-analysis fails (weight code out of
        // range): the validator refuses before structural checks.
        let mut out = opt.program.clone();
        out.codes.to_mut()[0] = 999;
        let vr = validate_certificate(&p, &out, &opt.certificate);
        let d = vr.find(DiagCode::RewriteUnproven).expect("refused");
        assert!(!d.notes.is_empty());
    }

    #[test]
    fn injected_dead_rows_are_removed_exactly() {
        let p = deadweight();
        let clean = optimize(&p).unwrap().program;
        let padded = inject_dead_rows(&clean, 5);
        // Padding is invisible to analysis except as dead rows.
        assert!(!analyze(&padded).has_errors());
        let opt = optimize(&padded).unwrap();
        // 5 extra rows on each of the two dense tables.
        assert_eq!(opt.certificate.removed(Pass::RowCompaction), 10);
        let vr = validate_certificate(&padded, &opt.program, &opt.certificate);
        assert!(!vr.has_errors(), "{vr}");
        assert_eq!(opt.program.floats.len(), clean.floats.len());
    }
}
