//! The interval abstract domain.
//!
//! Every value flowing through a compiled RAPIDNN program is drawn
//! from a finite set — codebook centroids, product-table entries, LUT
//! outputs — so a closed interval `[lo, hi]` is an exact-enough
//! abstraction: the hull of a finite set, widened by a *proven* `f32`
//! rounding slack ([`f32_sum_slack`]) exactly where accumulation order
//! could nudge a concrete sum past the real hull. Bounds are kept in
//! `f64` so interval arithmetic itself never loses to rounding.

/// Closed interval `[lo, hi]` with `lo <= hi`, both finite.
///
/// Construction from data with NaN/Inf entries is refused
/// ([`Interval::of_slice`] returns `None`); the checker reports those
/// entries as [`NonFinite`](crate::DiagCode::NonFinite) errors before
/// interval propagation would consume them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Degenerate interval holding a single value.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The interval `[0, 0]`.
    pub fn zero() -> Self {
        Interval::point(0.0)
    }

    /// Hull of a slice; `None` when the slice is empty or any entry is
    /// non-finite.
    pub fn of_slice(values: &[f32]) -> Option<Self> {
        let mut it = values.iter();
        let first = f64::from(*it.next()?);
        if !first.is_finite() {
            return None;
        }
        let mut iv = Interval::point(first);
        for &v in it {
            let v = f64::from(v);
            if !v.is_finite() {
                return None;
            }
            iv.lo = iv.lo.min(v);
            iv.hi = iv.hi.max(v);
        }
        Some(iv)
    }

    /// Smallest interval containing both operands.
    #[must_use]
    pub fn hull(self, other: Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Image under `max(0, x)` (the ReLU comparator).
    #[must_use]
    pub fn relu(self) -> Self {
        Interval {
            lo: self.lo.max(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Largest absolute value in the interval.
    pub fn magnitude(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval widened by an explicit non-negative `margin` on both
    /// sides, used before reachability queries.
    ///
    /// The margin is not a heuristic: callers pass
    /// [`f32_sum_slack`] (or a composition of such slacks), a proven
    /// bound on how far a concrete `f32` evaluation can land from the
    /// real-valued quantity this interval hulls. With that bound the
    /// widened interval *contains every concrete runtime value*, so any
    /// codebook entry whose nearest-selection region lies wholly
    /// outside it is dead for every execution — liveness findings are
    /// sound enough to license deletion, not merely advisory. The
    /// exactness argument is pinned by the exhaustive-enumeration test
    /// in `checker.rs` (`reach_contains_every_concrete_f32_sum`).
    #[must_use]
    pub fn widened_by(self, margin: f64) -> Self {
        debug_assert!(margin >= 0.0 && margin.is_finite());
        Interval {
            lo: self.lo - margin,
            hi: self.hi + margin,
        }
    }
}

/// Proven bound on `|fl(Σ x_i) − Σ x_i|` for a left-to-right `f32`
/// summation of `terms` values whose absolute sum is at most `mag`.
///
/// The standard forward error bound for recursive summation is
/// `γ_n · Σ|x_i|` with `γ_n = n·u / (1 − n·u)` and `u = 2⁻²⁴` the
/// `f32` unit roundoff. We use `n · f32::EPSILON · mag` instead:
/// `f32::EPSILON = 2u`, so the result is at least twice `γ_n` whenever
/// `n·u ≤ 1/2` — the slack absorbs both the first-order bound and the
/// `f64` rounding of the interval arithmetic that produced `mag`
/// (whose own relative error is `2⁻²⁹` times smaller). The absolute
/// `f32::MIN_POSITIVE` term covers subnormal rounding, where relative
/// bounds do not apply (each subnormal rounding errs by at most
/// `2⁻¹⁴⁹`, so the normal-range floor dominates any realistic `n`).
pub fn f32_sum_slack(terms: usize, mag: f64) -> f64 {
    terms as f64 * f64::from(f32::EPSILON) * mag + f64::from(f32::MIN_POSITIVE)
}

/// Interval sum (exact for independent operands, an over-approx of
/// the true range otherwise — always sound).
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_hull_and_rejection() {
        let iv = Interval::of_slice(&[0.5, -1.25, 2.0]).unwrap();
        assert_eq!(iv, Interval { lo: -1.25, hi: 2.0 });
        assert!(Interval::of_slice(&[]).is_none());
        assert!(Interval::of_slice(&[1.0, f32::NAN]).is_none());
        assert!(Interval::of_slice(&[f32::INFINITY]).is_none());
    }

    #[test]
    fn arithmetic() {
        let a = Interval { lo: -1.0, hi: 2.0 };
        let b = Interval { lo: 0.5, hi: 0.5 };
        assert_eq!(a + b, Interval { lo: -0.5, hi: 2.5 });
        assert_eq!(a.hull(b), Interval { lo: -1.0, hi: 2.0 });
        assert_eq!(a.relu(), Interval { lo: 0.0, hi: 2.0 });
        assert_eq!(a.magnitude(), 2.0);
        assert!(a.contains(0.0));
        assert!(!a.contains(2.1));
        let w = a.widened_by(0.25);
        assert_eq!(
            w,
            Interval {
                lo: -1.25,
                hi: 2.25
            }
        );
    }

    /// `f32_sum_slack` really bounds the summation error: for every
    /// ordering of a stress set of magnitudes, `|fl(Σ) − Σ_f64|` stays
    /// under the slack computed from the term count and the magnitude
    /// sum.
    #[test]
    fn sum_slack_bounds_concrete_f32_summation() {
        let sets: &[&[f32]] = &[
            &[1.0e7, 1.0, -1.0e7, 3.5, 0.25, -2.0, 1.0e6, -999_983.0],
            &[0.1; 64],
            &[-3.25e-3, 7.5e4, 1.0e-8, -7.5e4, 2.0, 11.0, -13.5, 0.75],
        ];
        for xs in sets {
            let mag: f64 = xs.iter().map(|&x| f64::from(x).abs()).sum();
            let exact: f64 = xs.iter().map(|&x| f64::from(x)).sum();
            let slack = f32_sum_slack(xs.len(), mag);
            // Forward, reverse, and pairwise-rotated orders.
            for rot in 0..xs.len() {
                let mut fwd = 0.0f32;
                let mut rev = 0.0f32;
                for k in 0..xs.len() {
                    fwd += xs[(k + rot) % xs.len()];
                    rev += xs[(xs.len() - 1 - k + rot) % xs.len()];
                }
                assert!((f64::from(fwd) - exact).abs() <= slack);
                assert!((f64::from(rev) - exact).abs() <= slack);
            }
        }
        // The subnormal floor keeps the slack positive at zero magnitude.
        assert!(f32_sum_slack(0, 0.0) > 0.0);
    }
}
