//! The interval abstract domain.
//!
//! Every value flowing through a compiled RAPIDNN program is drawn
//! from a finite set — codebook centroids, product-table entries, LUT
//! outputs — so a closed interval `[lo, hi]` is an exact-enough
//! abstraction: the hull of a finite set, widened slightly where
//! `f32` accumulation order could nudge a concrete sum past the real
//! hull. Bounds are kept in `f64` so interval arithmetic itself never
//! loses to rounding.

/// Closed interval `[lo, hi]` with `lo <= hi`, both finite.
///
/// Construction from data with NaN/Inf entries is refused
/// ([`Interval::of_slice`] returns `None`); the checker reports those
/// entries as [`NonFinite`](crate::DiagCode::NonFinite) errors before
/// interval propagation would consume them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Degenerate interval holding a single value.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The interval `[0, 0]`.
    pub fn zero() -> Self {
        Interval::point(0.0)
    }

    /// Hull of a slice; `None` when the slice is empty or any entry is
    /// non-finite.
    pub fn of_slice(values: &[f32]) -> Option<Self> {
        let mut it = values.iter();
        let first = f64::from(*it.next()?);
        if !first.is_finite() {
            return None;
        }
        let mut iv = Interval::point(first);
        for &v in it {
            let v = f64::from(v);
            if !v.is_finite() {
                return None;
            }
            iv.lo = iv.lo.min(v);
            iv.hi = iv.hi.max(v);
        }
        Some(iv)
    }

    /// Smallest interval containing both operands.
    #[must_use]
    pub fn hull(self, other: Interval) -> Self {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Image under `max(0, x)` (the ReLU comparator).
    #[must_use]
    pub fn relu(self) -> Self {
        Interval {
            lo: self.lo.max(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Largest absolute value in the interval.
    pub fn magnitude(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Interval widened by a relative-plus-absolute margin, used before
    /// reachability queries so `f32` summation order can't push a
    /// concrete value just past the analytically derived hull and
    /// produce a spurious dead-entry finding.
    #[must_use]
    pub fn widened(self) -> Self {
        let margin = 1e-4 * self.magnitude() + 1e-6;
        Interval {
            lo: self.lo - margin,
            hi: self.hi + margin,
        }
    }
}

/// Interval sum (exact for independent operands, an over-approx of
/// the true range otherwise — always sound).
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_hull_and_rejection() {
        let iv = Interval::of_slice(&[0.5, -1.25, 2.0]).unwrap();
        assert_eq!(iv, Interval { lo: -1.25, hi: 2.0 });
        assert!(Interval::of_slice(&[]).is_none());
        assert!(Interval::of_slice(&[1.0, f32::NAN]).is_none());
        assert!(Interval::of_slice(&[f32::INFINITY]).is_none());
    }

    #[test]
    fn arithmetic() {
        let a = Interval { lo: -1.0, hi: 2.0 };
        let b = Interval { lo: 0.5, hi: 0.5 };
        assert_eq!(a + b, Interval { lo: -0.5, hi: 2.5 });
        assert_eq!(a.hull(b), Interval { lo: -1.0, hi: 2.0 });
        assert_eq!(a.relu(), Interval { lo: 0.0, hi: 2.0 });
        assert_eq!(a.magnitude(), 2.0);
        assert!(a.contains(0.0));
        assert!(!a.contains(2.1));
        let w = a.widened();
        assert!(w.lo < a.lo && w.hi > a.hi);
    }
}
