//! Per-op execution-cost estimates for pipeline sharding.
//!
//! The paper's chip pipelines layers across tiles: once the pipeline is
//! full, throughput is bounded by the *slowest* stage, so splitting a
//! model into balanced stages needs a per-op cost estimate. This module
//! derives one from the same [`Program`] IR the checker walks.
//!
//! Costs are unitless work estimates, not wall-clock promises: one unit
//! is one product-table lookup-and-accumulate — the operation the RNA
//! datapath retires once per cycle, so a stage's `lookups` total is also
//! its cycle estimate on the modeled accelerator (Table 1 clock,
//! `rapidnn_accel::CLOCK_GHZ`). Software pays extra for nearest-code
//! encodes (a branch-free binary search, ~`log2(book)` probes) where the
//! hardware's associative memory answers in one cycle; [`OpCost::units`]
//! weighs encodes accordingly so the estimate balances *software* stages
//! while [`OpCost::lookups`] remains the hardware-cycle view.

use crate::program::{Act, Op, Program};

/// Weight of one nearest-code encode relative to one table lookup in
/// [`OpCost::units`]: roughly the probe depth of the branch-free binary
/// search over the codebooks real models carry (8–64 entries).
const ENCODE_WEIGHT: u64 = 4;

/// Estimated work of one op over one sample, split by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCost {
    /// Product-table lookup-and-accumulate steps (= RNA datapath
    /// cycles: the hardware retires one per cycle).
    pub lookups: u64,
    /// Nearest-code searches: activation LUTs, re-encoders, pooling
    /// codebooks.
    pub encodes: u64,
    /// Element-wise touches: activations, pooling reductions, residual
    /// snapshots and joins.
    pub elementwise: u64,
}

impl OpCost {
    /// Folds the components into one scalar software-work estimate.
    pub fn units(&self) -> u64 {
        self.lookups + ENCODE_WEIGHT * self.encodes + self.elementwise
    }
}

/// Estimates every op's per-sample cost in program order.
///
/// The walk mirrors the checker's shape propagation; it never touches
/// pool data, so it is safe on malformed programs (costs for ops past a
/// shape error are still best-effort estimates).
pub fn op_costs(program: &Program<'_>) -> Vec<OpCost> {
    let mut width = program.input_features as u64;
    program
        .ops
        .iter()
        .map(|op| {
            let mut c = OpCost::default();
            match op {
                Op::Dense {
                    inputs,
                    outputs,
                    act,
                    encoder,
                    ..
                } => {
                    let (nin, nout) = (*inputs as u64, *outputs as u64);
                    c.lookups = nin * nout;
                    c.elementwise = nout;
                    if matches!(act, Act::Lookup { .. }) {
                        c.encodes += nout;
                    }
                    if encoder.is_some() {
                        c.encodes += nout;
                    }
                    width = nout;
                }
                Op::Conv {
                    geom,
                    out_channels,
                    act,
                    encoder,
                    ..
                } => {
                    let nout = (*out_channels * geom.out_pixels()) as u64;
                    c.lookups = nout * geom.patch_len() as u64;
                    c.elementwise = nout;
                    if matches!(act, Act::Lookup { .. }) {
                        c.encodes += nout;
                    }
                    if encoder.is_some() {
                        c.encodes += nout;
                    }
                    width = nout;
                }
                Op::MaxPool(g) => {
                    let out = (g.in_channels * g.out_pixels()) as u64;
                    c.elementwise = out * (g.kernel_h * g.kernel_w) as u64;
                    width = out;
                }
                Op::AvgPool { geom: g, .. } => {
                    let out = (g.in_channels * g.out_pixels()) as u64;
                    c.elementwise = out * (g.kernel_h * g.kernel_w) as u64;
                    // Decode-average-re-encode on encoded flows; the
                    // re-encode dominates, count it unconditionally.
                    c.encodes = out;
                    width = out;
                }
                Op::ResidualBegin { .. } => {
                    // Snapshot (decode) of the current flow.
                    c.elementwise = width;
                }
                Op::ResidualEnd { encoder } => {
                    c.elementwise = width;
                    if encoder.is_some() {
                        c.encodes = width;
                    }
                }
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Geom, Span, TableRef};
    use std::borrow::Cow;

    fn dense(nin: usize, nout: usize, encoded: bool) -> Op {
        Op::Dense {
            inputs: nin,
            outputs: nout,
            weight_codes: Span { start: 0, len: 0 },
            bias: Span { start: 0, len: 0 },
            table: TableRef {
                offset: 0,
                weight_count: 1,
                input_count: 1,
            },
            act: Act::Relu,
            encoder: encoded.then_some(Span { start: 0, len: 2 }),
        }
    }

    fn program(ops: Vec<Op>) -> Program<'static> {
        Program {
            input_features: 4,
            output_features: 3,
            virtual_encoder: Span { start: 0, len: 2 },
            ops,
            floats: Cow::Owned(vec![-1.0, 1.0]),
            codes: Cow::Owned(vec![]),
            packed: vec![],
        }
    }

    #[test]
    fn dense_cost_scales_with_fanin_times_fanout() {
        let p = program(vec![dense(4, 8, true), dense(8, 3, false)]);
        let costs = op_costs(&p);
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0].lookups, 32);
        assert_eq!(costs[0].encodes, 8);
        assert_eq!(costs[1].lookups, 24);
        assert_eq!(costs[1].encodes, 0);
        assert!(costs[0].units() > costs[1].units());
    }

    #[test]
    fn pooling_and_residual_cost_track_volume() {
        let g = Geom {
            in_channels: 2,
            in_height: 4,
            in_width: 4,
            kernel_h: 2,
            kernel_w: 2,
            stride: 2,
            pad: 0,
            out_height: 2,
            out_width: 2,
        };
        let p = program(vec![
            Op::MaxPool(g),
            Op::ResidualBegin {
                skip_codebook: Span { start: 0, len: 2 },
            },
        ]);
        let costs = op_costs(&p);
        // 2 channels x 4 output pixels x 4-tap window.
        assert_eq!(costs[0].elementwise, 32);
        assert_eq!(costs[0].units(), 32);
        // Snapshot of the pooled 2x4-wide flow.
        assert_eq!(costs[1].elementwise, 8);
    }

    #[test]
    fn units_weight_encodes_over_elementwise() {
        let c = OpCost {
            lookups: 10,
            encodes: 5,
            elementwise: 3,
        };
        assert_eq!(c.units(), 10 + 4 * 5 + 3);
    }
}
