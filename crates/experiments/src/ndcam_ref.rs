//! §4.2.2 reference point — NDCAM vs CMOS for a 4×4 max pool, plus the
//! search-fidelity and Monte-Carlo separability studies behind the 8-bit
//! pipeline-stage decision.

use crate::context::{render_table, Ctx};
use rapidnn::ndcam::{DischargeModel, NdcamArray, CMOS_MAXPOOL_REFERENCE, NDCAM_MAXPOOL_REFERENCE};
use rapidnn::tensor::SeededRng;

pub fn run(ctx: &Ctx) {
    println!("\n=== NDCAM vs CMOS (4x4 max pooling, §4.2.2) ===\n");
    let rows = vec![
        vec![
            "NDCAM".to_string(),
            format!("{:.0}um2", NDCAM_MAXPOOL_REFERENCE.area_um2),
            format!("{:.1}ns", NDCAM_MAXPOOL_REFERENCE.latency_ns),
            format!("{:.0}fJ", NDCAM_MAXPOOL_REFERENCE.energy_fj),
        ],
        vec![
            "CMOS".to_string(),
            format!("{:.0}um2", CMOS_MAXPOOL_REFERENCE.area_um2),
            format!("{:.1}ns", CMOS_MAXPOOL_REFERENCE.latency_ns),
            format!("{:.0}fJ", CMOS_MAXPOOL_REFERENCE.energy_fj),
        ],
    ];
    println!(
        "{}",
        render_table(&["design", "area", "latency", "energy"], &rows)
    );

    // Weighted vs plain-Hamming search fidelity on a codebook-like array.
    let cam = NdcamArray::from_values(&[5, 40, 64, 101, 130, 170, 200, 240], 8).expect("valid cam");
    println!(
        "precise-search fidelity (8-row codebook, 256 queries):\n\
         bit-weighted {:.1}%  vs plain Hamming {:.1}%\n",
        100.0 * cam.fidelity(256),
        100.0 * cam.fidelity_hamming(256)
    );

    // Monte-Carlo separability at 10 % variation (5000 runs, as in the
    // paper's HSPICE analysis).
    let model = DischargeModel::default();
    let mut rng = SeededRng::new(ctx.seed ^ 0xca3);
    let races = [
        ("128 vs 255 (MSB decides)", 128u64, 255u64),
        ("200 vs 220", 200, 220),
        ("254 vs 255 (LSB decides)", 254, 255),
    ];
    let rows: Vec<Vec<String>> = races
        .iter()
        .map(|&(label, lo, hi)| {
            let p = model.separability(lo, hi, 5000, &mut rng);
            vec![label.to_string(), format!("{:.1}%", 100.0 * p)]
        })
        .collect();
    println!("match-line race correctness under 10% process variation (5000 Monte-Carlo runs)");
    println!("{}", render_table(&["race", "correct winner"], &rows));
    println!(
        "shape check: decisions at significant bits are reliable, LSB races are\n\
         not — which is why 32-bit searches pipeline as four 8-bit stages"
    );
}
