//! Figure 15 — speedup and energy-efficiency improvement over the GPU
//! for DaDianNao, ISAAC, PipeLayer and RAPIDNN (1 chip and 8 chips).
//!
//! Pure performance experiment: the full paper topologies are simulated
//! via `PerformanceModeler` with the near-zero-loss configuration
//! (w = u = 64, as §5.5 sets per application).

use crate::context::{fmt_factor, render_table, Ctx, PerformanceModeler};
use rapidnn::accel::{AcceleratorConfig, SimulationReport, Simulator};
use rapidnn::baselines::{dadiannao, gpu_gtx1080, isaac, pipelayer, Workload};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

/// RAPIDNN per-inference latency and energy, exploiting idle RNAs to run
/// independent inferences in parallel (replication), which is how the
/// paper's throughput numbers use the full chip on small models. The
/// controller replicates at tile granularity, so at most one replica per
/// tile.
pub fn rapidnn_point(report: &SimulationReport) -> (f64, f64) {
    let neurons: usize = report.stages.iter().map(|s| s.neurons).sum();
    let tiles = report.config.chips * report.config.tiles_per_chip;
    let replicas =
        (report.config.effective_neuron_capacity() / neurons.max(1)).clamp(1, tiles.max(1)) as f64;
    let latency_s = report.hardware.pipeline_interval_ns * 1e-9 / replicas;
    let energy_j = report.hardware.energy_pj * 1e-12;
    (latency_s, energy_j)
}

pub fn run(ctx: &Ctx) {
    println!("\n=== Figure 15: RAPIDNN vs PIM accelerators (normalized to GPU) ===\n");
    let gpu = gpu_gtx1080();
    let baselines = [dadiannao(), isaac(), pipelayer()];
    let sim1 = Simulator::new(AcceleratorConfig::with_chips(1));
    let sim8 = Simulator::new(AcceleratorConfig::with_chips(8));

    let mut speed_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut geo_speed = [0.0f64; 5];
    let mut geo_energy = [0.0f64; 5];
    let mut apps = 0usize;

    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ 0xf15 ^ benchmark.name().len() as u64);
        let modeler = PerformanceModeler::new(benchmark, &mut rng);
        let workload: Workload = modeler.workload(benchmark.name());
        let gpu_latency = gpu.latency_s(&workload);
        let gpu_energy = gpu.energy_j(&workload);

        let model = modeler.model(64, 64, &mut rng);
        let (r1_lat, r1_energy) = rapidnn_point(&sim1.simulate(&model));
        let (r8_lat, r8_energy) = rapidnn_point(&sim8.simulate(&model));

        let mut speeds = Vec::new();
        let mut energies = Vec::new();
        for model in &baselines {
            speeds.push(gpu_latency / model.latency_s(&workload));
            energies.push(gpu_energy / model.energy_j(&workload));
        }
        speeds.push(gpu_latency / r1_lat);
        speeds.push(gpu_latency / r8_lat);
        energies.push(gpu_energy / r1_energy);
        energies.push(gpu_energy / r8_energy);

        for (acc, v) in geo_speed.iter_mut().zip(&speeds) {
            *acc += v.ln();
        }
        for (acc, v) in geo_energy.iter_mut().zip(&energies) {
            *acc += v.ln();
        }
        apps += 1;

        let mut s_row = vec![benchmark.name().to_string()];
        s_row.extend(speeds.iter().map(|&v| fmt_factor(v)));
        speed_rows.push(s_row);
        let mut e_row = vec![benchmark.name().to_string()];
        e_row.extend(energies.iter().map(|&v| fmt_factor(v)));
        energy_rows.push(e_row);
    }

    let mut mean_s = vec!["geo-mean".to_string()];
    mean_s.extend(
        geo_speed
            .iter()
            .map(|&v| fmt_factor((v / apps as f64).exp())),
    );
    speed_rows.push(mean_s);
    let mut mean_e = vec!["geo-mean".to_string()];
    mean_e.extend(
        geo_energy
            .iter()
            .map(|&v| fmt_factor((v / apps as f64).exp())),
    );
    energy_rows.push(mean_e);

    let headers = [
        "app",
        "DaDianNao",
        "ISAAC",
        "PipeLayer",
        "RAPIDNN(1)",
        "RAPIDNN(8)",
    ];
    println!("speedup over GPU");
    println!("{}", render_table(&headers, &speed_rows));
    println!("energy-efficiency improvement over GPU");
    println!("{}", render_table(&headers, &energy_rows));
    println!(
        "shape check (paper): RAPIDNN-1chip beats DaDianNao/ISAAC/PipeLayer by\n\
         24.3x/5.6x/1.5x (speed) and 40.3x/13.4x/49.6x (energy); 8 chips add\n\
         ~8x more throughput (48.1x/10.9x vs ISAAC/PipeLayer)"
    );
}
