//! Table 4 — RNA sharing: quality loss at 0–30 % sharing plus compute
//! efficiency (GOPS/s/mm²).
//!
//! Quality loss is measured by actually remapping shared conv channels
//! onto donor codebooks (`ReinterpretedNetwork::with_rna_sharing`);
//! compute efficiency follows the paper's density argument — sharing
//! packs `1/(1-s)` neurons per RNA, scaling GOPS/mm² accordingly.

use crate::context::{prepare_app, render_table, Ctx};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

const SHARING: [f64; 7] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

pub fn run(ctx: &Ctx) {
    println!("\n=== Table 4: RNA sharing — quality loss and efficiency ===\n");
    // The paper reports the four ImageNet-class networks; our stand-ins
    // are the convolutional benchmarks with the codebook sizes the paper
    // lists (64 for AlexNet/VGG/GoogLeNet-class, 128 for ResNet-class).
    let nets: [(&str, Benchmark, usize); 3] = [
        ("CIFAR-10 (AlexNet-class)", Benchmark::Cifar10, 64),
        ("CIFAR-100 (VGG-class)", Benchmark::Cifar100, 64),
        ("ImageNet-sub (ResNet-class)", Benchmark::ImageNet, 128),
    ];

    let mut rows = Vec::new();
    for (label, benchmark, codebooks) in nets {
        let mut rng = SeededRng::new(ctx.seed ^ 0x7ab1e4 ^ benchmark.name().len() as u64);
        let app = prepare_app(benchmark, ctx, &mut rng);
        let (base_delta, model) = app.compose_with(codebooks, codebooks, 2, &mut rng);
        let mut cells = vec![label.to_string(), codebooks.to_string()];
        for &s in &SHARING {
            // Average over several random sharing assignments to separate
            // the sharing effect from assignment noise.
            let draws = 3;
            let mut total = 0.0f32;
            for _ in 0..draws {
                let shared = model.with_rna_sharing(s, &mut rng);
                let err = shared.evaluate(&app.validation).expect("evaluation");
                total += err - app.baseline_error;
            }
            let delta = (total / draws as f32).max(base_delta);
            cells.push(format!("{:+.1}%", 100.0 * delta));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = ["RNA Sharing", "Codebooks"]
        .iter()
        .map(|s| s.to_string())
        .chain(SHARING.iter().map(|s| format!("{:.0}%", s * 100.0)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_table(&header_refs, &rows));

    // Compute-efficiency row: density scaling from the zero-sharing anchor
    // (the paper's 1 905 GOPS/s/mm²).
    const BASE_GOPS_MM2: f64 = 1905.0;
    let mut eff = vec!["GOPS/s/mm2".to_string(), String::new()];
    for &s in &SHARING {
        eff.push(format!("{:.0}", BASE_GOPS_MM2 / (1.0 - s)));
    }
    println!("{}", render_table(&header_refs, &[eff]));
    println!(
        "paper: quality loss grows from ~0.1–0.5% at 0% sharing to 1.1–2.4% at 30%;\n\
         efficiency grows 1905 -> 2661 GOPS/s/mm2 (= 1/(1-s) density scaling)"
    );
}
