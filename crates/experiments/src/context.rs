//! Shared infrastructure for the experiment harness: sizing, app
//! preparation (train-once float models) and text-table rendering.

use rapidnn::composer::{Composer, ComposerConfig};
use rapidnn::data::{benchmark_dataset, Dataset};
use rapidnn::nn::topology::Benchmark;
use rapidnn::nn::{Network, Trainer, TrainerConfig};
use rapidnn::tensor::SeededRng;

/// Experiment-wide knobs.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// `--full`: run the paper-sized topologies (slow); default is a
    /// reduced-size run that preserves every trend.
    pub full: bool,
    /// Base seed; every experiment derives from it deterministically.
    pub seed: u64,
}

impl Ctx {
    /// Network shrink factor for a benchmark under the current sizing.
    /// 100-class CNNs keep more width — a narrower head cannot separate
    /// 100 classes at all.
    pub fn reduction(&self, benchmark: Benchmark) -> usize {
        if self.full {
            1
        } else if benchmark.is_type2() {
            if benchmark == Benchmark::ImageNet {
                2
            } else if benchmark.classes() >= 100 {
                4
            } else {
                8
            }
        } else {
            4
        }
    }

    /// Synthetic sample count for a benchmark under the current sizing:
    /// many-class benchmarks need several samples per class.
    pub fn samples(&self, benchmark: Benchmark) -> usize {
        let base = if self.full { 600 } else { 320 };
        base.max(benchmark.classes() * if self.full { 10 } else { 7 })
    }

    /// Baseline training epochs (CNNs converge later than the MLPs).
    pub fn train_epochs(&self, benchmark: Benchmark) -> usize {
        match (self.full, benchmark.is_type2()) {
            (true, true) => 24,
            (true, false) => 15,
            (false, true) => 20,
            (false, false) => 8,
        }
    }

    /// Validation rows kept for quality estimation; capped so encoded
    /// inference sweeps stay fast (the paper likewise cross-validates on
    /// "a portion of the original data", §3.2).
    pub fn validation_rows(&self) -> usize {
        if self.full {
            240
        } else {
            160
        }
    }
}

/// A trained float model plus its data splits — the starting point of
/// every accuracy experiment. Cloning the network lets one trained model
/// feed many composer configurations.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `benchmark` is part of the public record even where unused
pub struct TrainedApp {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The trained float network.
    pub network: Network,
    /// Training split.
    pub train: Dataset,
    /// Validation split.
    pub validation: Dataset,
    /// Float validation error (the paper's `e_baseline`).
    pub baseline_error: f32,
}

/// Trains the float model for `benchmark` under the context sizing.
pub fn prepare_app(benchmark: Benchmark, ctx: &Ctx, rng: &mut SeededRng) -> TrainedApp {
    let data = benchmark_dataset(benchmark, ctx.samples(benchmark), rng)
        .expect("dataset generation cannot fail for valid specs");
    let val_rows = ctx.validation_rows().min(data.len() / 3);
    let cut = data.len() - val_rows;
    let train = data.subset(0..cut);
    let validation = data.subset(cut..data.len());
    let mut network = benchmark
        .build_reduced(ctx.reduction(benchmark), rng)
        .expect("topology construction");
    // CNN substitutes train with Adam (DESIGN.md §5): plain SGD+momentum
    // occasionally stalls on the 100-class uniform-logit plateau with so
    // little synthetic data. Training is plateau-fragile on these tiny
    // sets, so the harness retries over a small learning-rate ladder when
    // a run fails to leave chance level — only the float baseline's
    // training procedure changes, never the composer.
    let epochs = ctx.train_epochs(benchmark);
    if benchmark.is_type2() {
        let chance = 1.0 - 1.0 / benchmark.classes() as f32;
        let mut best: Option<(f32, Network)> = None;
        for &lr in &[0.005f32, 0.01, 0.02] {
            let mut candidate = network.clone();
            let mut trainer = Trainer::new(
                TrainerConfig {
                    learning_rate: lr,
                    lr_decay: 0.97,
                    adam: true,
                    ..TrainerConfig::default()
                },
                rng,
            );
            trainer
                .fit(&mut candidate, train.inputs(), train.labels(), epochs)
                .expect("training");
            let train_err = candidate
                .evaluate(train.inputs(), train.labels())
                .expect("evaluation");
            let improved = best
                .as_ref()
                .map(|(err, _)| train_err < *err)
                .unwrap_or(true);
            if improved {
                best = Some((train_err, candidate));
            }
            // Stop as soon as a run clearly escaped chance level.
            if best.as_ref().map(|(e, _)| *e).unwrap_or(1.0) < 0.5 * chance {
                break;
            }
        }
        network = best.expect("at least one attempt ran").1;
    } else {
        let mut trainer = Trainer::new(TrainerConfig::default(), rng);
        trainer
            .fit(&mut network, train.inputs(), train.labels(), epochs)
            .expect("training");
    }
    let baseline_error = network
        .evaluate(validation.inputs(), validation.labels())
        .expect("evaluation");
    TrainedApp {
        benchmark,
        network,
        train,
        validation,
        baseline_error,
    }
}

impl TrainedApp {
    /// Composes a copy of the trained model with `(w, u)` codebooks and
    /// returns `(Δe, reinterpreted model)`.
    pub fn compose_with(
        &self,
        w: usize,
        u: usize,
        iterations: usize,
        rng: &mut SeededRng,
    ) -> (f32, rapidnn::composer::ReinterpretedNetwork) {
        let mut net = self.network.clone();
        let config = ComposerConfig::default()
            .with_weights(w)
            .with_inputs(u)
            .with_max_iterations(iterations.max(1))
            .with_retrain_epochs(1);
        let outcome = Composer::new(config)
            .compose(&mut net, &self.train, &self.validation, rng)
            .expect("composition");
        (outcome.delta_e, outcome.reinterpreted)
    }
}

/// Builds full-topology reinterpreted models for *performance* studies.
///
/// Accuracy experiments run on reduced networks (training a full CIFAR
/// CNN on a laptop-scale synthetic set would be wasteful), but hardware
/// cost depends only on the model *structure* — neuron counts, fan-ins
/// and codebook sizes — which needs no training. This helper builds the
/// paper-sized topology untrained and reinterprets it with the requested
/// codebook sizes, giving the simulator the exact layer dimensions the
/// paper evaluates.
#[derive(Debug)]
pub struct PerformanceModeler {
    network: Network,
    sample: rapidnn::tensor::Tensor,
}

impl PerformanceModeler {
    /// Prepares the full topology for `benchmark`.
    pub fn new(benchmark: Benchmark, rng: &mut SeededRng) -> Self {
        let network = benchmark.build(rng).expect("topology construction");
        // A handful of rows is enough to give the input clustering a
        // realistic value distribution.
        let data = benchmark_dataset(benchmark, 8, rng).expect("dataset");
        PerformanceModeler {
            network,
            sample: data.inputs().clone(),
        }
    }

    /// Reinterprets the full topology with `(w, u)` codebooks.
    pub fn model(
        &self,
        w: usize,
        u: usize,
        rng: &mut SeededRng,
    ) -> rapidnn::composer::ReinterpretedNetwork {
        let mut net = self.network.clone();
        let options = rapidnn::composer::ReinterpretOptions {
            weight_clusters: w,
            input_clusters: u,
            max_sample_rows: 8,
            ..rapidnn::composer::ReinterpretOptions::default()
        };
        rapidnn::composer::ReinterpretedNetwork::build(&mut net, &self.sample, &options, rng)
            .expect("reinterpretation")
    }

    /// Op-count workload of the full topology.
    pub fn workload(&self, name: &str) -> rapidnn::baselines::Workload {
        rapidnn::baselines::workload_of(name, &self.network)
    }
}

/// Renders an aligned text table: a header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a ratio as `N.Nx`.
pub fn fmt_factor(f: f64) -> String {
    if f >= 100.0 {
        format!("{f:.0}x")
    } else if f >= 10.0 {
        format!("{f:.1}x")
    } else {
        format!("{f:.2}x")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", 100.0 * f)
}

/// Formats bytes with binary prefixes.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.1}{}", UNITS[unit])
}
