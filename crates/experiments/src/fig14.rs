//! Figure 14 — RAPIDNN area breakdown: system level and inside one RNA.

use crate::context::{fmt_pct, render_table, Ctx};
use rapidnn::accel::{rna_area_breakdown, system_area_breakdown};

pub fn run(_ctx: &Ctx) {
    println!("\n=== Figure 14: area breakdown ===\n");

    let system = system_area_breakdown();
    let rows: Vec<Vec<String>> = system
        .fractions()
        .into_iter()
        .zip(system.entries())
        .map(|((label, fraction), (_, mm2))| {
            vec![
                label.to_string(),
                format!("{mm2:.1} mm2"),
                fmt_pct(fraction),
            ]
        })
        .collect();
    println!("system level");
    println!("{}", render_table(&["component", "area", "share"], &rows));

    let rna = rna_area_breakdown();
    let rows: Vec<Vec<String>> = rna
        .fractions()
        .into_iter()
        .zip(rna.entries())
        .map(|((label, fraction), (_, um2))| {
            vec![
                label.to_string(),
                format!("{um2:.1} um2"),
                fmt_pct(fraction),
            ]
        })
        .collect();
    println!("inside one RNA block (Table 1 areas)");
    println!("{}", render_table(&["component", "area", "share"], &rows));

    println!(
        "shape check (paper): RNA 56.7% / memory 38.2% / buffer 3.4% /\n\
         controller 1.7%; inside the RNA the product crossbar dominates\n\
         (87.8% in the paper, which folds the counters into the crossbar\n\
         datapath; split out here as crossbar+counter = 95.7%), while the\n\
         two AM lookup blocks stay a small share — the paper's point that\n\
         table-lookup functionality is nearly free in area"
    );
}
