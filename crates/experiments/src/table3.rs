//! Table 3 — model-reinterpretation (composer) overhead: retraining
//! epochs and measured wall time per application.

use crate::context::{prepare_app, render_table, Ctx};
use rapidnn::composer::{Composer, ComposerConfig};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;
use std::time::Instant;

pub fn run(ctx: &Ctx) {
    println!("\n=== Table 3: RAPIDNN composer overhead ===\n");
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ 0x7ab1e3 ^ benchmark.name().len() as u64);
        let app = prepare_app(benchmark, ctx, &mut rng);
        // Paper budget: 5 epochs for the small apps, 1 for ImageNet-class.
        let epochs = if benchmark == Benchmark::ImageNet {
            1
        } else {
            5
        };
        let mut net = app.network.clone();
        let config = ComposerConfig::default()
            .with_weights(16)
            .with_inputs(16)
            .with_max_iterations(epochs)
            .with_retrain_epochs(1)
            .with_epsilon(-1.0); // force the full budget, as in Table 3
        let start = Instant::now();
        let outcome = Composer::new(config)
            .compose(&mut net, &app.train, &app.validation, &mut rng)
            .expect("composition");
        let elapsed = start.elapsed();
        rows.push(vec![
            benchmark.name().to_string(),
            epochs.to_string(),
            format!("{:.2}s", elapsed.as_secs_f64()),
            format!("{:+.1}%", 100.0 * outcome.delta_e),
        ]);
    }
    println!(
        "{}",
        render_table(&["Application", "Epochs", "Time (measured)", "Δe"], &rows)
    );
    println!(
        "paper: 51s (MNIST) … 4.8min (CIFAR-100), 11.2–37.1min for ImageNet-class\n\
         (absolute times differ — the paper retrains on real datasets with a GPU;\n\
          the one-off overhead amortises over all future inferences either way)"
    );
}
