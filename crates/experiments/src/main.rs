//! `rapidnn-experiments` — regenerates every table and figure of the
//! RAPIDNN evaluation (§5).
//!
//! ```text
//! rapidnn-experiments <experiment> [--full] [--seed N]
//!
//! experiments:
//!   table1  RAPIDNN hardware parameters
//!   table2  DNN models and baseline error rates
//!   table3  composer (reinterpretation) overhead
//!   table4  RNA sharing: quality loss and compute efficiency
//!   fig6    weight distributions and retraining convergence
//!   fig10   accuracy loss vs input/weight cluster counts
//!   fig11   energy & speedup vs GPU across (w, u) configurations
//!   fig12   EDP and memory usage vs allowed accuracy loss
//!   fig13   energy/time breakdown by hardware block
//!   fig14   area breakdown
//!   fig15   comparison with PIM accelerators (DaDianNao/ISAAC/PipeLayer)
//!   fig16   comparison with ASIC accelerators (Eyeriss/SnaPEA)
//!   ndcam   NDCAM vs CMOS reference point and search fidelity (§4.2.2)
//!   all     everything above, in order
//! ```
//!
//! Reduced-size topologies are the default so the full suite runs in
//! minutes; pass `--full` for the paper-sized networks.

mod context;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
mod fig15;
mod fig16;
mod fig6;
mod ndcam_ref;
mod table1;
mod table2;
mod table3;
mod table4;

use context::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut full = false;
    let mut seed = 42u64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let experiment = experiment.unwrap_or_else(|| "all".to_string());
    let ctx = Ctx { full, seed };

    let start = std::time::Instant::now();
    match experiment.as_str() {
        "table1" => table1::run(&ctx),
        "table2" => table2::run(&ctx),
        "table3" => table3::run(&ctx),
        "table4" => table4::run(&ctx),
        "fig6" => fig6::run(&ctx),
        "fig10" => fig10::run(&ctx),
        "fig11" => fig11::run(&ctx),
        "fig12" => fig12::run(&ctx),
        "fig13" => fig13::run(&ctx),
        "fig14" => fig14::run(&ctx),
        "fig15" => fig15::run(&ctx),
        "fig16" => fig16::run(&ctx),
        "ndcam" => ndcam_ref::run(&ctx),
        "all" => {
            table1::run(&ctx);
            table2::run(&ctx);
            table3::run(&ctx);
            table4::run(&ctx);
            fig6::run(&ctx);
            fig10::run(&ctx);
            fig11::run(&ctx);
            fig12::run(&ctx);
            fig13::run(&ctx);
            fig14::run(&ctx);
            fig15::run(&ctx);
            fig16::run(&ctx);
            ndcam_ref::run(&ctx);
        }
        other => usage(&format!("unknown experiment {other}")),
    }
    eprintln!("\n[{experiment} finished in {:.1?}]", start.elapsed());
}

fn usage(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!(
        "usage: rapidnn-experiments <table1|table2|table3|table4|fig6|fig10|fig11|fig12|fig13|fig14|fig15|fig16|ndcam|all> [--full] [--seed N]"
    );
    std::process::exit(2);
}
