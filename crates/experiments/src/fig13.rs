//! Figure 13 — energy and execution-time breakdown across the hardware
//! blocks, aggregated for Type 1 (fully connected) and Type 2
//! (convolutional) applications at w = u = 64.

use crate::context::{fmt_pct, prepare_app, render_table, Ctx};
use rapidnn::accel::{AcceleratorConfig, BlockBreakdown, BlockClass, Simulator};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

pub fn run(ctx: &Ctx) {
    println!("\n=== Figure 13: energy/time breakdown by block (w=u=64) ===\n");
    let simulator = Simulator::new(AcceleratorConfig::default());

    let mut type1 = BlockBreakdown::default();
    let mut type2 = BlockBreakdown::default();
    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ 0xf13 ^ benchmark.name().len() as u64);
        let app = prepare_app(benchmark, ctx, &mut rng);
        let (_, model) = app.compose_with(64, 64, 1, &mut rng);
        let report = simulator.simulate(&model);
        if benchmark.is_type2() {
            type2.merge(&report.hardware.breakdown);
        } else {
            type1.merge(&report.hardware.breakdown);
        }
    }

    for (label, breakdown) in [
        ("Type 1 (FC models)", &type1),
        ("Type 2 (CNN models)", &type2),
    ] {
        let energy = breakdown.energy_fractions();
        let time = breakdown.time_fractions();
        let rows: Vec<Vec<String>> = BlockClass::ALL
            .iter()
            .enumerate()
            .map(|(i, class)| {
                vec![
                    class.label().to_string(),
                    fmt_pct(energy[i]),
                    fmt_pct(time[i]),
                ]
            })
            .collect();
        println!("{label}");
        println!("{}", render_table(&["block", "energy", "time"], &rows));
    }
    println!(
        "shape check (paper): weighted accumulation dominates (77.1% Type 1,\n\
         81.4% Type 2); activation/encoding are small; pooling appears only in\n\
         Type 2 (~3.2% energy); buffer/controller land in 'others' (~11-15%)"
    );
}
