//! Figure 11 — energy-efficiency improvement and speedup over the GPU
//! for nine (w, u) codebook configurations per application.
//!
//! This is a pure performance experiment: hardware cost depends only on
//! model structure, so the full paper topologies are simulated directly
//! (no training needed; see `PerformanceModeler`).

use crate::context::{fmt_factor, render_table, Ctx, PerformanceModeler};
use crate::fig15::rapidnn_point;
use rapidnn::accel::{AcceleratorConfig, Simulator};
use rapidnn::baselines::gpu_gtx1080;
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

const WEIGHT_SWEEP: [usize; 3] = [8, 16, 32];
const INPUT_SWEEP: [usize; 3] = [4, 16, 64];

pub fn run(ctx: &Ctx) {
    println!("\n=== Figure 11: energy & speedup vs GPU across (w, u) ===\n");
    let gpu = gpu_gtx1080();
    let simulator = Simulator::new(AcceleratorConfig::default());

    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ 0xf11 ^ benchmark.name().len() as u64);
        let modeler = PerformanceModeler::new(benchmark, &mut rng);
        let workload = modeler.workload(benchmark.name());
        let gpu_latency = gpu.latency_s(&workload);
        let gpu_energy = gpu.energy_j(&workload);

        let mut energy_rows = Vec::new();
        let mut speed_rows = Vec::new();
        for &w in &WEIGHT_SWEEP {
            let mut e_cells = vec![format!("w={w}")];
            let mut s_cells = vec![format!("w={w}")];
            for &u in &INPUT_SWEEP {
                let model = modeler.model(w, u, &mut rng);
                let report = simulator.simulate(&model);
                // Idle RNAs carry independent inferences (replication),
                // the parallelism the paper's throughput numbers rely on.
                let (rapid_latency_s, rapid_energy_j) = rapidnn_point(&report);
                e_cells.push(fmt_factor(gpu_energy / rapid_energy_j));
                s_cells.push(fmt_factor(gpu_latency / rapid_latency_s));
            }
            energy_rows.push(e_cells);
            speed_rows.push(s_cells);
        }
        let headers: Vec<String> = std::iter::once("".to_string())
            .chain(INPUT_SWEEP.iter().map(|u| format!("u={u}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!("{benchmark} — energy-efficiency improvement (vs GPU)");
        println!("{}", render_table(&header_refs, &energy_rows));
        println!("{benchmark} — speedup (vs GPU, pipelined throughput)");
        println!("{}", render_table(&header_refs, &speed_rows));
    }
    println!(
        "shape check (paper): both factors are large (10x-600x) and shrink as\n\
         codebooks grow; u affects energy more than w (it sizes two memories)"
    );
}
