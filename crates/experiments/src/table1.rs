//! Table 1 — RAPIDNN hardware parameters, regenerated from the model
//! constants in `rapidnn::accel::params`.

use crate::context::{render_table, Ctx};
use rapidnn::accel::params;

pub fn run(_ctx: &Ctx) {
    println!("\n=== Table 1: RAPIDNN parameters ===\n");
    let rows = vec![
        vec![
            "Crossbar".into(),
            "1K*1K".into(),
            format!("{:.0}um2", params::CROSSBAR_AREA_UM2),
            format!("{:.1}mW", params::CROSSBAR_POWER_MW),
        ],
        vec![
            "Counter".into(),
            format!("1k*{}-bits", params::COUNTER_BITS),
            format!("{:.1}um2", params::COUNTER_AREA_UM2),
            format!("{:.1}mW", params::COUNTER_POWER_MW),
        ],
        vec![
            "Activation".into(),
            "64-rows".into(),
            format!("{:.1}um2", params::ACTIVATION_AREA_UM2),
            format!("{:.1}mW", params::ACTIVATION_POWER_MW),
        ],
        vec![
            "Encoder".into(),
            "64-rows".into(),
            format!("{:.1}um2", params::ENCODER_AREA_UM2),
            format!("{:.1}mW", params::ENCODER_POWER_MW),
        ],
        vec![
            "Total RNA".into(),
            String::new(),
            format!("{:.0}um2", params::RNA_AREA_UM2),
            format!("{:.1}mW", params::RNA_POWER_MW),
        ],
    ];
    println!(
        "{}",
        render_table(&["1-RNA block", "Size", "Area", "Power"], &rows)
    );

    let cfg = rapidnn::accel::AcceleratorConfig::default();
    let rows = vec![
        vec![
            "RNAs".into(),
            "1k".into(),
            format!(
                "{:.2}mm2",
                cfg.rnas_per_tile as f64 * params::RNA_AREA_UM2 / 1e6
            ),
            format!("{:.1}W", params::TILE_POWER_W),
        ],
        vec![
            "Buffer".into(),
            "1K-reg".into(),
            format!("{:.1}um2", params::BUFFER_AREA_UM2),
            format!("{:.1}mW", params::BUFFER_POWER_MW),
        ],
        vec![
            "Total Tile".into(),
            String::new(),
            format!("{:.2}mm2", params::TILE_AREA_MM2),
            format!("{:.1}W", params::TILE_POWER_W),
        ],
        vec![
            "Total Chip (32-Tiles)".into(),
            String::new(),
            format!("{:.1}mm2", cfg.total_area_mm2()),
            format!("{:.1}W", cfg.max_power_w()),
        ],
    ];
    println!(
        "{}",
        render_table(&["Tile", "Size", "Area", "Power"], &rows)
    );
    println!(
        "paper: chip 124.1mm2 / 153.6W; model reproduces {:.1}mm2 / {:.1}W",
        cfg.total_area_mm2(),
        cfg.max_power_w()
    );
}
