//! Figure 12 — normalized energy-delay product and memory usage of the
//! minimum-EDP configuration under each accuracy-loss budget.

use crate::context::{fmt_bytes, prepare_app, render_table, Ctx};
use rapidnn::accel::{AcceleratorConfig, Simulator};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

const CLUSTER_CHOICES: [usize; 4] = [4, 8, 16, 32];
const BUDGETS: [f32; 4] = [0.0, 0.01, 0.02, 0.04];

pub fn run(ctx: &Ctx) {
    println!("\n=== Figure 12: EDP and memory usage vs accuracy budget ===\n");
    let simulator = Simulator::new(AcceleratorConfig::default());

    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ 0xf12 ^ benchmark.name().len() as u64);
        let app = prepare_app(benchmark, ctx, &mut rng);

        // Evaluate the whole configuration grid once.
        struct Point {
            w: usize,
            u: usize,
            delta_e: f32,
            edp: f64,
            memory: usize,
        }
        let mut grid = Vec::new();
        for &w in &CLUSTER_CHOICES {
            for &u in &CLUSTER_CHOICES {
                let (delta_e, model) = app.compose_with(w, u, 1, &mut rng);
                let report = simulator.simulate(&model);
                grid.push(Point {
                    w,
                    u,
                    delta_e,
                    edp: report.edp(),
                    memory: model.memory_bytes(),
                });
            }
        }
        let min_delta = grid.iter().map(|p| p.delta_e).fold(f32::INFINITY, f32::min);

        // For each budget, pick the min-EDP config meeting it.
        let mut rows = Vec::new();
        let mut reference_edp = None;
        for &budget in &BUDGETS {
            let effective = budget.max(min_delta);
            let best = grid
                .iter()
                .filter(|p| p.delta_e <= effective + 1e-6)
                .min_by(|a, b| a.edp.total_cmp(&b.edp));
            if let Some(p) = best {
                let reference = *reference_edp.get_or_insert(p.edp);
                rows.push(vec![
                    format!("{:.0}%", 100.0 * budget),
                    format!("w={}, u={}", p.w, p.u),
                    format!("{:.2}", p.edp / reference),
                    fmt_bytes(p.memory),
                    format!("{:+.1}%", 100.0 * p.delta_e),
                ]);
            }
        }
        println!("{benchmark}");
        println!(
            "{}",
            render_table(
                &[
                    "Δe budget",
                    "best config",
                    "normalized EDP",
                    "memory",
                    "achieved Δe"
                ],
                &rows
            )
        );
    }
    println!(
        "shape check (paper): allowing 2-4% loss cuts EDP by ~11-15% and memory\n\
         to ~77-87% of the minimum-loss configuration; hard apps keep larger\n\
         codebooks (largest memory: ImageNet/CIFAR-100)"
    );
}
