//! Table 2 — DNN models and baseline error rates.
//!
//! Topologies follow the paper exactly; error rates are measured on the
//! seeded *synthetic* stand-in datasets (DESIGN.md §5), so the absolute
//! values differ from the paper's while the relative difficulty ordering
//! (MNIST/HAR easy, CIFAR-100/ImageNet hard) is preserved.

use crate::context::{fmt_pct, prepare_app, render_table, Ctx};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

fn topology_string(benchmark: Benchmark) -> &'static str {
    match benchmark {
        Benchmark::Mnist => "IN:784, FC:512, FC:512, FC:10",
        Benchmark::Isolet => "IN:617, FC:512, FC:512, FC:26",
        Benchmark::Har => "IN:561, FC:512, FC:512, FC:19",
        Benchmark::Cifar10 => "IN:32x32x3, CV:32, PL:2x2, CV:64, CV:64, FC:512, FC:10",
        Benchmark::Cifar100 => "IN:32x32x3, CV:32, PL:2x2, CV:64, CV:64, FC:512, FC:100",
        Benchmark::ImageNet => "scaled VGG/ResNet-family substitute (DESIGN.md §5)",
        _ => "unknown",
    }
}

pub fn run(ctx: &Ctx) {
    println!("\n=== Table 2: DNN models and baseline error rates ===\n");
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ benchmark.name().len() as u64);
        let app = prepare_app(benchmark, ctx, &mut rng);
        rows.push(vec![
            benchmark.name().to_string(),
            topology_string(benchmark).to_string(),
            fmt_pct(app.baseline_error as f64),
            fmt_pct(benchmark.paper_error() as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset",
                "Network Topology",
                "Error (synthetic)",
                "Error (paper)"
            ],
            &rows
        )
    );
    if !ctx.full {
        println!("(reduced-size networks; pass --full for the paper topologies)");
    }
}
