//! Figure 6 — weight distributions before/after clustering and after
//! retraining, plus classification error across clustering/retraining
//! iterations.

use crate::context::{prepare_app, render_table, Ctx};
use rapidnn::composer::{quantize_network_weights, Composer, ComposerConfig};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::{histogram, SeededRng};

/// Extracts the second dense layer's weights (the layer Figure 6 plots).
fn hidden_weights(network: &mut rapidnn::nn::Network) -> Vec<f32> {
    let mut collected = Vec::new();
    for layer in network.layers_mut() {
        if layer.kind().is_weighted() {
            let params = layer.params();
            collected.push(params[0].value.as_slice().to_vec());
        }
    }
    collected.into_iter().nth(1).unwrap_or_default()
}

pub fn run(ctx: &Ctx) {
    println!("\n=== Figure 6: weight clustering and retraining ===\n");
    let mut rng = SeededRng::new(ctx.seed ^ 0xf16);
    let app = prepare_app(Benchmark::Mnist, ctx, &mut rng);

    // (a) original distribution.
    let mut net = app.network.clone();
    let original = hidden_weights(&mut net);
    let h_orig = histogram(&original, 64);

    // (b) clustered distribution: k-means with 16 centroids.
    quantize_network_weights(&mut net, 16, &mut rng).expect("clustering");
    let clustered = hidden_weights(&mut net);
    let h_clustered = histogram(&clustered, 64);

    // (c) retrained-then-reclustered distribution.
    let config = ComposerConfig::default()
        .with_weights(16)
        .with_inputs(16)
        .with_epsilon(-1.0)
        .with_max_iterations(6)
        .with_retrain_epochs(1);
    let mut retrain_net = app.network.clone();
    let outcome = Composer::new(config)
        .compose(&mut retrain_net, &app.train, &app.validation, &mut rng)
        .expect("composition");
    let retrained = hidden_weights(&mut retrain_net);
    let h_retrained = histogram(&retrained, 64);

    println!(
        "{}",
        render_table(
            &["distribution", "weights", "occupied bins (of 64)", "range"],
            &[
                vec![
                    "(a) original".into(),
                    original.len().to_string(),
                    h_orig.occupied_bins().to_string(),
                    format!("[{:.2}, {:.2}]", h_orig.lo(), h_orig.hi()),
                ],
                vec![
                    "(b) clustered".into(),
                    clustered.len().to_string(),
                    h_clustered.occupied_bins().to_string(),
                    format!("[{:.2}, {:.2}]", h_clustered.lo(), h_clustered.hi()),
                ],
                vec![
                    "(c) retrained+clustered".into(),
                    retrained.len().to_string(),
                    h_retrained.occupied_bins().to_string(),
                    format!("[{:.2}, {:.2}]", h_retrained.lo(), h_retrained.hi()),
                ],
            ],
        )
    );
    println!(
        "shape check: clustering collapses {} occupied bins to <= 16 spikes; the\n\
         overall range is preserved, as in Figure 6a-c\n",
        h_orig.occupied_bins()
    );

    // (d) error vs iteration.
    let rows: Vec<Vec<String>> = outcome
        .iterations
        .iter()
        .map(|it| {
            vec![
                it.iteration.to_string(),
                format!("{:.1}%", 100.0 * it.clustered_error),
                format!("{:+.1}%", 100.0 * it.delta_e),
                if it.retrained { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["iteration", "clustered error", "Δe", "retrained"], &rows)
    );
    let first = outcome
        .iterations
        .first()
        .map(|i| i.clustered_error)
        .unwrap_or(0.0);
    println!(
        "shape check: error decreases (or holds) across iterations, as in Figure 6d\n\
         (first {:.1}% -> best {:.1}%)",
        100.0 * first,
        100.0 * outcome.final_error
    );
}
