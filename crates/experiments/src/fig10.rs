//! Figure 10 — accuracy loss (Δe) of the reinterpreted model for
//! different numbers of input clusters `u` and weight clusters `w`.

use crate::context::{prepare_app, render_table, Ctx};
use rapidnn::nn::topology::Benchmark;
use rapidnn::tensor::SeededRng;

const INPUT_SWEEP: [usize; 5] = [4, 8, 16, 32, 64];
const WEIGHT_SWEEP: [usize; 3] = [8, 16, 32];

pub fn run(ctx: &Ctx) {
    println!("\n=== Figure 10: Δe vs input/weight cluster counts ===\n");
    for benchmark in Benchmark::ALL {
        let mut rng = SeededRng::new(ctx.seed ^ 0xf10 ^ benchmark.name().len() as u64);
        let app = prepare_app(benchmark, ctx, &mut rng);
        let mut rows = Vec::new();
        for &w in &WEIGHT_SWEEP {
            let mut cells = vec![format!("w={w}")];
            for &u in &INPUT_SWEEP {
                let (delta, _) = app.compose_with(w, u, 2, &mut rng);
                cells.push(format!("{:+.1}", 100.0 * delta));
            }
            rows.push(cells);
        }
        let headers: Vec<String> = std::iter::once("Δe (%)".to_string())
            .chain(INPUT_SWEEP.iter().map(|u| format!("u={u}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        println!(
            "{} (baseline error {:.1}%)",
            benchmark.name(),
            100.0 * app.baseline_error
        );
        println!("{}", render_table(&header_refs, &rows));
    }
    println!(
        "shape check (paper): Δe shrinks toward 0 as u and w grow; easy apps\n\
         (MNIST/HAR) flatten out by u=16, complex ones need 32-64 clusters"
    );
}
