//! Figure 16 — speedup and energy efficiency versus the digital ASIC
//! accelerators Eyeriss and SnaPEA on the ImageNet-class workloads,
//! normalized to Eyeriss **at equal chip area** (the paper's framing:
//! "the results are normalized to Eyeriss when all designs are providing
//! the same chip area").
//!
//! RAPIDNN's cost comes from the shape-driven simulator over the real
//! per-layer dimensions of AlexNet / VGG-16 / GoogLeNet / ResNet-152.

use crate::context::{fmt_factor, render_table, Ctx};
use crate::fig15::rapidnn_point;
use rapidnn::accel::{AcceleratorConfig, Simulator};
use rapidnn::baselines::{eyeriss, imagenet_layer_shapes, imagenet_workloads, snapea};

pub fn run(_ctx: &Ctx) {
    println!(
        "\n=== Figure 16: RAPIDNN vs ASIC accelerators (normalized to Eyeriss, iso-area) ===\n"
    );
    let eyeriss = eyeriss();
    let snapea = snapea();
    let config = AcceleratorConfig::default();
    let simulator = Simulator::new(config);

    // Iso-area scaling: replicate the small ASICs to RAPIDNN's chip area.
    let eyeriss_copies = (config.total_area_mm2() / eyeriss.area_mm2()).max(1.0);
    let snapea_copies = (config.total_area_mm2() / snapea.area_mm2()).max(1.0);

    let mut speed_rows = Vec::new();
    let mut energy_rows = Vec::new();
    let mut geo = [0.0f64; 4];
    for workload in imagenet_workloads() {
        let shapes: Vec<(usize, usize)> = imagenet_layer_shapes(workload.name())
            .iter()
            .map(|s| (s.neurons, s.edges))
            .collect();
        let report = simulator.simulate_shapes(&shapes, 64, 64);
        let (rapid_latency, rapid_energy) = rapidnn_point(&report);

        let e_lat = eyeriss.latency_s(&workload) / eyeriss_copies;
        let e_energy = eyeriss.energy_j(&workload);
        let s_lat = snapea.latency_s(&workload) / snapea_copies;
        let s_energy = snapea.energy_j(&workload);

        let speed_snapea = e_lat / s_lat;
        let speed_rapid = e_lat / rapid_latency;
        let energy_snapea = e_energy / s_energy;
        let energy_rapid = e_energy / rapid_energy;
        geo[0] += speed_snapea.ln();
        geo[1] += speed_rapid.ln();
        geo[2] += energy_snapea.ln();
        geo[3] += energy_rapid.ln();

        speed_rows.push(vec![
            workload.name().to_string(),
            "1.00x".to_string(),
            fmt_factor(speed_snapea),
            fmt_factor(speed_rapid),
        ]);
        energy_rows.push(vec![
            workload.name().to_string(),
            "1.00x".to_string(),
            fmt_factor(energy_snapea),
            fmt_factor(energy_rapid),
        ]);
    }
    let n = imagenet_workloads().len() as f64;
    speed_rows.push(vec![
        "geo-mean".into(),
        "1.00x".into(),
        fmt_factor((geo[0] / n).exp()),
        fmt_factor((geo[1] / n).exp()),
    ]);
    energy_rows.push(vec![
        "geo-mean".into(),
        "1.00x".into(),
        fmt_factor((geo[2] / n).exp()),
        fmt_factor((geo[3] / n).exp()),
    ]);

    let headers = ["workload", "Eyeriss", "SnaPEA", "RAPIDNN"];
    println!("speedup (normalized to iso-area Eyeriss)");
    println!("{}", render_table(&headers, &speed_rows));
    println!("energy efficiency (normalized to Eyeriss)");
    println!("{}", render_table(&headers, &energy_rows));
    println!(
        "shape check (paper): RAPIDNN averages 4.8x / 28.2x (speed/energy) over\n\
         Eyeriss and 2.3x / 14.3x over SnaPEA at equal chip area"
    );
}
