//! Property-based tests of the accelerator's accumulation unit and cost
//! model invariants.

use proptest::prelude::*;
use rapidnn_accel::{decompose_counter, neuron_cost, AcceleratorConfig, WeightedAccumulator};

proptest! {
    /// The counter decomposition reconstructs every 12-bit-feasible count
    /// and never produces more operands than the plain binary split.
    #[test]
    fn decomposition_exact_and_economical(count in 1u32..(1 << 14)) {
        let (adds, subs) = decompose_counter(count);
        let value: i64 = adds.iter().map(|&s| 1i64 << s).sum::<i64>()
            - subs.iter().map(|&s| 1i64 << s).sum::<i64>();
        prop_assert_eq!(value, count as i64);
        let plain = count.count_ones() as usize;
        prop_assert!(adds.len() + subs.len() <= plain.max(2));
    }

    /// Weighted accumulation equals the exact weighted sum within
    /// fixed-point tolerance, at any precision from 8 to 20 bits.
    #[test]
    fn accumulation_precision_scales(
        slots in proptest::collection::vec((-2.0f32..2.0, 0u32..32), 1..16),
        bits in 8u32..20,
    ) {
        let acc = WeightedAccumulator::new(bits);
        let expected: f32 = slots.iter().map(|&(v, c)| v * c as f32).sum();
        let got = acc.accumulate(&slots).sum;
        // Each slot's value is quantized once to `bits` fractional bits
        // (error <= 0.5 LSB) and that error is multiplied by its counter.
        let lsb = 1.0 / (1u64 << bits) as f32;
        let total_count: u32 = slots.iter().map(|&(_, c)| c).sum();
        prop_assert!(
            (got - expected).abs() <= lsb * (0.5 * total_count as f32 + 2.0) + 1e-4,
            "{} vs {} at {} bits",
            got,
            expected,
            bits
        );
    }

    /// Neuron cost is monotone in fan-in: more edges never cost fewer
    /// cycles or less energy.
    #[test]
    fn neuron_cost_monotone_in_edges(
        edges in 1usize..2048,
        extra in 1usize..512,
        w in 2usize..64,
        u in 2usize..64,
    ) {
        let small = neuron_cost(edges, w, u, 64, u);
        let large = neuron_cost(edges + extra, w, u, 64, u);
        prop_assert!(large.cycles() >= small.cycles());
        prop_assert!(large.energy_pj() >= small.energy_pj() - 1e-9);
    }

    /// Chip capacity and area scale linearly with chips; sharing only
    /// increases capacity.
    #[test]
    fn config_scaling(chips in 1usize..16, sharing in 0.0f64..0.9) {
        let base = AcceleratorConfig::with_chips(chips);
        prop_assert_eq!(base.total_rnas(), chips * 32 * 1000);
        let shared = base.with_sharing(sharing);
        prop_assert!(shared.effective_neuron_capacity() >= base.total_rnas());
        let more = AcceleratorConfig::with_chips(chips + 1);
        prop_assert!(more.total_area_mm2() > base.total_area_mm2());
        prop_assert!(more.max_power_w() > base.max_power_w());
    }

    /// Counting cycles match the ceil(edges / w) buffer-drain model.
    #[test]
    fn counting_cycles_model(edges in 1usize..4096, w in 1usize..128) {
        let cost = neuron_cost(edges, w, 16, 64, 16);
        prop_assert_eq!(cost.counting_cycles, (edges as u64).div_ceil(w as u64).max(1));
    }
}
