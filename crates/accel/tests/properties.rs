//! Property-based tests of the accelerator's accumulation unit and cost
//! model invariants.

use rapidnn_accel::{decompose_counter, neuron_cost, AcceleratorConfig, WeightedAccumulator};
use rapidnn_prop::{check, usize_in, DEFAULT_CASES};

/// The counter decomposition reconstructs every 12-bit-feasible count
/// and never produces more operands than the plain binary split.
#[test]
fn decomposition_exact_and_economical() {
    check(DEFAULT_CASES, |rng| {
        let count = usize_in(rng, 1, 1 << 14) as u32;
        let (adds, subs) = decompose_counter(count);
        let value: i64 = adds.iter().map(|&s| 1i64 << s).sum::<i64>()
            - subs.iter().map(|&s| 1i64 << s).sum::<i64>();
        assert_eq!(value, count as i64);
        let plain = count.count_ones() as usize;
        assert!(adds.len() + subs.len() <= plain.max(2));
    });
}

/// Weighted accumulation equals the exact weighted sum within
/// fixed-point tolerance, at any precision from 8 to 20 bits.
#[test]
fn accumulation_precision_scales() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 16);
        let slots: Vec<(f32, u32)> = (0..n)
            .map(|_| (rng.uniform(-2.0, 2.0), usize_in(rng, 0, 32) as u32))
            .collect();
        let bits = usize_in(rng, 8, 20) as u32;
        let acc = WeightedAccumulator::new(bits);
        let expected: f32 = slots.iter().map(|&(v, c)| v * c as f32).sum();
        let got = acc.accumulate(&slots).sum;
        // Each slot's value is quantized once to `bits` fractional bits
        // (error <= 0.5 LSB) and that error is multiplied by its counter.
        let lsb = 1.0 / (1u64 << bits) as f32;
        let total_count: u32 = slots.iter().map(|&(_, c)| c).sum();
        assert!(
            (got - expected).abs() <= lsb * (0.5 * total_count as f32 + 2.0) + 1e-4,
            "{got} vs {expected} at {bits} bits",
        );
    });
}

/// Neuron cost is monotone in fan-in: more edges never cost fewer
/// cycles or less energy.
#[test]
fn neuron_cost_monotone_in_edges() {
    check(DEFAULT_CASES, |rng| {
        let edges = usize_in(rng, 1, 2048);
        let extra = usize_in(rng, 1, 512);
        let w = usize_in(rng, 2, 64);
        let u = usize_in(rng, 2, 64);
        let small = neuron_cost(edges, w, u, 64, u);
        let large = neuron_cost(edges + extra, w, u, 64, u);
        assert!(large.cycles() >= small.cycles());
        assert!(large.energy_pj() >= small.energy_pj() - 1e-9);
    });
}

/// Chip capacity and area scale linearly with chips; sharing only
/// increases capacity.
#[test]
fn config_scaling() {
    check(DEFAULT_CASES, |rng| {
        let chips = usize_in(rng, 1, 16);
        let sharing = rng.uniform(0.0, 0.9) as f64;
        let base = AcceleratorConfig::with_chips(chips);
        assert_eq!(base.total_rnas(), chips * 32 * 1000);
        let shared = base.with_sharing(sharing);
        assert!(shared.effective_neuron_capacity() >= base.total_rnas());
        let more = AcceleratorConfig::with_chips(chips + 1);
        assert!(more.total_area_mm2() > base.total_area_mm2());
        assert!(more.max_power_w() > base.max_power_w());
    });
}

/// Counting cycles match the ceil(edges / w) buffer-drain model.
#[test]
fn counting_cycles_model() {
    check(DEFAULT_CASES, |rng| {
        let edges = usize_in(rng, 1, 4096);
        let w = usize_in(rng, 1, 128);
        let cost = neuron_cost(edges, w, 16, 64, 16);
        assert_eq!(
            cost.counting_cycles,
            (edges as u64).div_ceil(w as u64).max(1)
        );
    });
}
