use crate::params::{ACCUMULATOR_BITS, COUNTER_BITS};
use rapidnn_memristor::AdderTree;

/// Shift-add decomposition of one counter value (§4.1.1).
///
/// A pre-stored value repeating `count` times contributes
/// `count · value`, realised as shifted copies of the value:
///
/// * powers of two become single shifts (`4·v = v << 2`);
/// * other counts split into powers of two (`9 = 8 + 1`);
/// * the *longest run of 1s* optimisation rewrites a run as one larger
///   shift minus one (`15 = 16 − 1`), trading an addition for a
///   subtraction.
///
/// Returns `(additive_shifts, subtractive_shifts)`: the counter equals
/// `Σ 2^a − Σ 2^s` over the returned shift amounts.
pub fn decompose_counter(count: u32) -> (Vec<u32>, Vec<u32>) {
    if count == 0 {
        return (Vec::new(), Vec::new());
    }
    // Find the longest run of consecutive 1 bits.
    let mut best_run = 0u32;
    let mut best_start = 0u32;
    let mut run = 0u32;
    for bit in 0..32 {
        if (count >> bit) & 1 == 1 {
            run += 1;
            if run > best_run {
                best_run = run;
                best_start = bit + 1 - run;
            }
        } else {
            run = 0;
        }
    }
    // Runs of length >= 3 pay off: k additions become 1 add + 1 subtract.
    if best_run >= 3 {
        let mut adds = vec![best_start + best_run];
        let mut subs = vec![best_start];
        let remainder = count - (((1u64 << (best_start + best_run)) - (1u64 << best_start)) as u32);
        let (mut rest_adds, rest_subs) = decompose_counter(remainder);
        adds.append(&mut rest_adds);
        subs.extend(rest_subs);
        (adds, subs)
    } else {
        // Plain power-of-two split.
        let adds = (0..32).filter(|&b| (count >> b) & 1 == 1).collect();
        (adds, Vec::new())
    }
}

/// Number of adder-tree operands a decomposed counter produces.
pub fn operand_count(count: u32) -> usize {
    let (adds, subs) = decompose_counter(count);
    adds.len() + subs.len()
}

/// Result of one neuron's in-memory weighted accumulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccumulateReport {
    /// The accumulated sum (fixed-point arithmetic, converted back).
    pub sum: f32,
    /// Cycles of the parallel counting phase (§4.1.1).
    pub counting_cycles: u64,
    /// Cycles of the shift-add / carry-save adder phase (§4.1.2).
    pub adder_cycles: u64,
    /// Total operands fed to the adder tree.
    pub operands: usize,
}

impl AccumulateReport {
    /// Total cycles of both phases.
    pub fn cycles(&self) -> u64 {
        self.counting_cycles + self.adder_cycles
    }
}

/// The RNA weighted-accumulation unit (§4.1).
///
/// Instead of adding an incoming value per edge, the unit counts how often
/// each pre-stored product occurs (parallel counters, one per crossbar
/// slot), rewrites each counter as a few shifted copies of the product,
/// and adds everything in a NOR-built carry-save tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedAccumulator {
    /// Fixed-point fractional bits used to model crossbar arithmetic.
    fraction_bits: u32,
}

impl WeightedAccumulator {
    /// Creates an accumulator with `fraction_bits` of fixed-point
    /// precision (the crossbar operates on binary words).
    ///
    /// # Panics
    ///
    /// Panics when `fraction_bits` is zero or above 24.
    pub fn new(fraction_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&fraction_bits),
            "fraction bits must be in 1..=24"
        );
        WeightedAccumulator { fraction_bits }
    }

    /// Accumulates `(pre-stored value, counter)` pairs.
    ///
    /// Returns the sum plus the cycle model:
    ///
    /// * counting phase: with one buffer per distinct weight, one index is
    ///   consumed per buffer per cycle, so the phase costs
    ///   `max(counter)` cycles, bounded below by the number of slots
    ///   drained (at least one cycle per non-zero slot);
    /// * adder phase: predicted carry-save tree cycles for the decomposed
    ///   operand count.
    pub fn accumulate(&self, slots: &[(f32, u32)]) -> AccumulateReport {
        let scale = (1u64 << self.fraction_bits) as f64;
        // Decompose each counter into shifted copies of its value; model
        // arithmetic in fixed point to mirror the crossbar words. Negative
        // products are handled as magnitude + sign (two's-complement in
        // hardware); the adder tree operates on magnitudes per sign class.
        let mut positive: Vec<u64> = Vec::new();
        let mut negative: Vec<u64> = Vec::new();
        let mut max_counter = 0u32;
        for &(value, count) in slots {
            if count == 0 {
                continue;
            }
            // Counters saturate at their physical width (12 bits).
            let count = count.min((1 << COUNTER_BITS) - 1);
            max_counter = max_counter.max(count);
            let magnitude = (value.abs() as f64 * scale).round() as u64;
            let (adds, subs) = decompose_counter(count);
            for shift in adds {
                let term = magnitude << shift;
                if value >= 0.0 {
                    positive.push(term);
                } else {
                    negative.push(term);
                }
            }
            for shift in subs {
                let term = magnitude << shift;
                if value >= 0.0 {
                    negative.push(term);
                } else {
                    positive.push(term);
                }
            }
        }
        let operand_total = positive.len() + negative.len();
        // Wide enough to never wrap in the model; hardware cost still uses
        // the architectural ACCUMULATOR_BITS width below.
        let tree = AdderTree::new(48);
        let pos = tree.add_all(&positive);
        let neg = tree.add_all(&negative);
        let sum = (pos.sum as f64 - neg.sum as f64) / scale;

        let nonzero_slots = slots.iter().filter(|&&(_, c)| c > 0).count() as u64;
        let counting_cycles = u64::from(max_counter).max(nonzero_slots);
        // The architectural adder runs at ACCUMULATOR_BITS width; derive
        // stage counts from the executed trees but the ripple term from
        // the architectural width.
        let arch = AdderTree::new(ACCUMULATOR_BITS);
        let adder_cycles = if operand_total <= 1 {
            0
        } else {
            (pos.csa_stages + neg.csa_stages) * rapidnn_memristor::STAGE_CYCLES
                + u64::from(ACCUMULATOR_BITS) * rapidnn_memristor::RIPPLE_CYCLES_PER_BIT
        };
        let _ = arch;
        AccumulateReport {
            sum: sum as f32,
            counting_cycles,
            adder_cycles,
            operands: operand_total,
        }
    }

    /// Convenience: accumulates raw per-edge products by first building
    /// the slot counters (what the counting hardware does).
    pub fn accumulate_edges(&self, products: &[f32]) -> AccumulateReport {
        let mut slots: Vec<(f32, u32)> = Vec::new();
        for &p in products {
            match slots
                .iter_mut()
                .find(|(v, _)| (*v - p).abs() < f32::EPSILON)
            {
                Some((_, c)) => *c += 1,
                None => slots.push((p, 1)),
            }
        }
        self.accumulate(&slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_of(adds: &[u32], subs: &[u32]) -> i64 {
        adds.iter().map(|&s| 1i64 << s).sum::<i64>() - subs.iter().map(|&s| 1i64 << s).sum::<i64>()
    }

    #[test]
    fn decomposition_reconstructs_every_count() {
        for count in 0u32..=4096 {
            let (adds, subs) = decompose_counter(count);
            assert_eq!(value_of(&adds, &subs), count as i64, "count {count}");
        }
    }

    #[test]
    fn paper_examples() {
        // count 4 -> shift by two (single term).
        let (adds, subs) = decompose_counter(4);
        assert_eq!((adds.as_slice(), subs.as_slice()), (&[2u32][..], &[][..]));
        // count 9 -> 8 + 1.
        let (adds, subs) = decompose_counter(9);
        assert_eq!(adds, vec![0, 3]);
        assert!(subs.is_empty());
        // count 15 -> 16 - 1 (longest run of 1s).
        let (adds, subs) = decompose_counter(15);
        assert_eq!(
            (adds.as_slice(), subs.as_slice()),
            (&[4u32][..], &[0u32][..])
        );
    }

    #[test]
    fn long_runs_use_fewer_operands() {
        // 0b111111 = 63: plain split needs 6 operands, run trick needs 2.
        assert_eq!(operand_count(63), 2);
        assert!(operand_count(0b101010) <= 3);
    }

    #[test]
    fn accumulate_matches_direct_sum() {
        let acc = WeightedAccumulator::new(16);
        let slots = [(0.5f32, 3u32), (-0.25, 7), (1.125, 1), (2.0, 15)];
        let expected: f32 = slots.iter().map(|&(v, c)| v * c as f32).sum();
        let report = acc.accumulate(&slots);
        assert!(
            (report.sum - expected).abs() < 1e-3,
            "{} vs {expected}",
            report.sum
        );
    }

    #[test]
    fn accumulate_edges_builds_counters() {
        let acc = WeightedAccumulator::new(16);
        let products = [0.5f32, 0.5, 0.5, -1.0, 0.25];
        let report = acc.accumulate_edges(&products);
        let expected: f32 = products.iter().sum();
        assert!((report.sum - expected).abs() < 1e-3);
    }

    #[test]
    fn empty_and_zero_counts_are_free() {
        let acc = WeightedAccumulator::new(16);
        let report = acc.accumulate(&[]);
        assert_eq!(report.sum, 0.0);
        assert_eq!(report.cycles(), 0);
        let report = acc.accumulate(&[(1.0, 0)]);
        assert_eq!(report.sum, 0.0);
        assert_eq!(report.adder_cycles, 0);
    }

    #[test]
    fn counting_cycles_track_max_counter() {
        let acc = WeightedAccumulator::new(16);
        let report = acc.accumulate(&[(1.0, 100), (2.0, 3)]);
        assert_eq!(report.counting_cycles, 100);
    }

    #[test]
    fn counter_saturates_at_12_bits() {
        let acc = WeightedAccumulator::new(8);
        let report = acc.accumulate(&[(1.0, 10_000)]);
        assert!((report.sum - 4095.0).abs() < 1.0, "{}", report.sum);
    }

    #[test]
    fn shift_add_beats_serial_addition() {
        // Adding v 255 times serially needs 255 additions; the decomposed
        // form needs 2 operands (256 - 1).
        assert_eq!(operand_count(255), 2);
        let acc = WeightedAccumulator::new(16);
        let report = acc.accumulate(&[(0.125, 255)]);
        assert!((report.sum - 31.875).abs() < 1e-3);
        assert!(report.operands <= 2);
    }

    #[test]
    #[should_panic(expected = "fraction bits")]
    fn rejects_zero_fraction_bits() {
        let _ = WeightedAccumulator::new(0);
    }
}
