use crate::metrics::{BlockBreakdown, BlockClass, HardwareReport};
use crate::params::{AcceleratorConfig, BUFFER_POWER_MW};
use crate::rna::{neuron_cost, RnaCost};
use rapidnn_core::{ReinterpretedNetwork, Stage, StageKind};
use rapidnn_ndcam::SearchCost;

/// Hardware cost of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// Stage label (`dense`, `conv`, `maxpool`, …).
    pub label: &'static str,
    /// Neurons mapped onto RNA blocks (0 for pooling stages).
    pub neurons: usize,
    /// Number of sequential waves needed when neurons exceed the RNA
    /// capacity.
    pub waves: u64,
    /// Stage latency in nanoseconds.
    pub latency_ns: f64,
    /// Stage energy in picojoules.
    pub energy_pj: f64,
    /// Per-class breakdown.
    pub breakdown: BlockBreakdown,
}

/// Result of simulating one inference on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Aggregate metrics.
    pub hardware: HardwareReport,
    /// Per-stage costs in pipeline order.
    pub stages: Vec<StageCost>,
    /// The configuration simulated.
    pub config: AcceleratorConfig,
}

impl SimulationReport {
    /// Energy-delay product in pJ·ns (Figure 12's metric).
    pub fn edp(&self) -> f64 {
        self.hardware.energy_pj * self.hardware.latency_ns
    }

    /// Compute efficiency in GOPS per mm².
    pub fn gops_per_mm2(&self) -> f64 {
        self.hardware.gops() / self.config.total_area_mm2()
    }

    /// Power efficiency in GOPS per watt, using the average power actually
    /// drawn during an inference.
    pub fn gops_per_w(&self) -> f64 {
        let avg_power_w = if self.hardware.latency_ns > 0.0 {
            (self.hardware.energy_pj / self.hardware.latency_ns) / 1000.0
        } else {
            return 0.0;
        };
        self.hardware.gops() / avg_power_w.max(1e-9)
    }
}

/// Maps a reinterpreted network onto the accelerator and accounts cycles
/// and energy (§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Simulator {
    config: AcceleratorConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Simulator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Simulates one inference of `model`.
    pub fn simulate(&self, model: &ReinterpretedNetwork) -> SimulationReport {
        let mut stages = Vec::new();
        let mut mac_ops = 0u64;
        self.walk(model.stages(), &mut stages, &mut mac_ops);

        let (breakdown, latency_ns, energy_pj, interval) = self.aggregate(&stages);

        SimulationReport {
            hardware: HardwareReport {
                latency_ns,
                pipeline_interval_ns: interval,
                energy_pj,
                breakdown,
                mac_ops,
            },
            stages,
            config: self.config,
        }
    }

    fn walk(&self, model_stages: &[Stage], out: &mut Vec<StageCost>, mac_ops: &mut u64) {
        for stage in model_stages {
            match stage {
                Stage::Neuron(neuron) => {
                    let kind = neuron.kind();
                    let neurons = kind.neuron_count();
                    let edges = kind.edges_per_neuron();
                    *mac_ops += (neurons * edges) as u64;
                    let w = neuron
                        .weight_codebooks()
                        .iter()
                        .map(rapidnn_core::Codebook::len)
                        .max()
                        .unwrap_or(1);
                    let u = neuron.input_codebook().len();
                    let act_rows = neuron.activation().rows();
                    let enc_rows = neuron.encoder().map_or(0, rapidnn_core::EncoderTable::rows);
                    let cost = neuron_cost(edges, w, u, act_rows, enc_rows);
                    out.push(self.neuron_stage_cost(
                        match kind {
                            StageKind::Dense { .. } => "dense",
                            StageKind::Conv { .. } => "conv",
                        },
                        neurons,
                        u,
                        &cost,
                    ));
                }
                Stage::MaxPool(g) => {
                    let outputs = g.in_channels * g.out_pixels();
                    let window = g.kernel_h * g.kernel_w;
                    // Write the window into the encoder CAM, then one
                    // search (§4.2.1): window + 1 cycles.
                    let latency = (window + 1) as f64 * self.config.cycle_ns();
                    let search = SearchCost::for_search(window, 8, 1);
                    let energy = outputs as f64 * (search.energy_fj / 1000.0 + 0.2);
                    let mut b = BlockBreakdown::default();
                    b.add(BlockClass::Pooling, energy, latency);
                    out.push(StageCost {
                        label: "maxpool",
                        neurons: 0,
                        waves: 1,
                        latency_ns: latency,
                        energy_pj: energy,
                        breakdown: b,
                    });
                }
                Stage::AvgPool { geometry: g, .. } => {
                    let outputs = g.in_channels * g.out_pixels();
                    let window = g.kernel_h * g.kernel_w;
                    // In-memory addition of the window (§4.2.1): reuse the
                    // adder model via a tiny neuron cost.
                    let cost = neuron_cost(window, window, window, 1, 1);
                    let latency = cost.cycles() as f64 * self.config.cycle_ns();
                    let energy = outputs as f64 * cost.energy_pj();
                    let mut b = BlockBreakdown::default();
                    b.add(BlockClass::Pooling, energy, latency);
                    out.push(StageCost {
                        label: "avgpool",
                        neurons: 0,
                        waves: 1,
                        latency_ns: latency,
                        energy_pj: energy,
                        breakdown: b,
                    });
                }
                Stage::Residual { branch, .. } => {
                    self.walk(branch, out, mac_ops);
                    // The join is one in-memory addition over the skip
                    // FIFO values (§4.3).
                    let cost = neuron_cost(2, 2, 2, 1, 1);
                    let latency = cost.cycles() as f64 * self.config.cycle_ns();
                    let mut b = BlockBreakdown::default();
                    b.add(BlockClass::WeightedAccumulation, cost.energy_pj(), latency);
                    out.push(StageCost {
                        label: "residual-join",
                        neurons: 0,
                        waves: 1,
                        latency_ns: latency,
                        energy_pj: cost.energy_pj(),
                        breakdown: b,
                    });
                }
            }
        }
    }

    /// Folds per-stage costs into totals. The pipeline initiation
    /// interval is the slowest stage while every stage can be resident on
    /// its own RNAs; once the network overcommits the chip
    /// (`total neurons > capacity`), stages time-share the same RNAs and
    /// the interval degrades to the full latency (§4.3's pipeline only
    /// overlaps layers mapped to distinct blocks).
    fn aggregate(&self, stages: &[StageCost]) -> (BlockBreakdown, f64, f64, f64) {
        let mut breakdown = BlockBreakdown::default();
        let mut latency_ns = 0.0;
        let mut energy_pj = 0.0;
        let mut slowest: f64 = 0.0;
        let mut total_neurons = 0usize;
        for stage in stages {
            breakdown.merge(&stage.breakdown);
            latency_ns += stage.latency_ns;
            energy_pj += stage.energy_pj;
            slowest = slowest.max(stage.latency_ns);
            total_neurons += stage.neurons;
        }
        let interval = if total_neurons <= self.config.effective_neuron_capacity() {
            slowest
        } else {
            latency_ns
        };
        (breakdown, latency_ns, energy_pj, interval)
    }

    /// Simulates a network given only per-layer shapes
    /// `(neurons, edges)` and uniform codebook sizes — used to project
    /// cost onto real-scale topologies whose trainable substitutes are
    /// reduced (DESIGN.md §5).
    pub fn simulate_shapes(
        &self,
        shapes: &[(usize, usize)],
        weight_clusters: usize,
        input_clusters: usize,
    ) -> SimulationReport {
        let mut stages = Vec::new();
        let mut mac_ops = 0u64;
        for (i, &(neurons, edges)) in shapes.iter().enumerate() {
            mac_ops += (neurons * edges) as u64;
            let enc_rows = if i + 1 == shapes.len() {
                0
            } else {
                input_clusters
            };
            let cost = neuron_cost(edges, weight_clusters, input_clusters, 1, enc_rows);
            stages.push(self.neuron_stage_cost("layer", neurons, input_clusters, &cost));
        }
        let (breakdown, latency_ns, energy_pj, interval) = self.aggregate(&stages);
        SimulationReport {
            hardware: HardwareReport {
                latency_ns,
                pipeline_interval_ns: interval,
                energy_pj,
                breakdown,
                mac_ops,
            },
            stages,
            config: self.config,
        }
    }

    fn neuron_stage_cost(
        &self,
        label: &'static str,
        neurons: usize,
        next_codebook: usize,
        per_neuron: &RnaCost,
    ) -> StageCost {
        let capacity = self.config.effective_neuron_capacity().max(1);
        let waves = (neurons as u64).div_ceil(capacity as u64).max(1);
        // Sharing serialises the neurons multiplexed onto one RNA.
        let share_factor = 1.0 / (1.0 - self.config.rna_sharing);
        let neuron_latency = per_neuron.cycles() as f64 * self.config.cycle_ns();
        let compute_latency = waves as f64 * neuron_latency * share_factor;

        // Bit-serial broadcast of encoded outputs into the tile buffer
        // (§4.3): bits = ceil(log2(u_next)); all RNAs of a tile write in
        // parallel.
        let bits = (usize::BITS - next_codebook.saturating_sub(1).leading_zeros()).max(1) as f64;
        let transfer_latency = bits * self.config.cycle_ns() * waves as f64;
        let tiles_active = (neurons as f64 / self.config.rnas_per_tile as f64)
            .ceil()
            .min((self.config.chips * self.config.tiles_per_chip) as f64)
            .max(1.0);
        let transfer_energy = BUFFER_POWER_MW * transfer_latency * tiles_active;

        let mut breakdown = BlockBreakdown::default();
        for (i, class) in crate::metrics::BlockClass::ALL.iter().enumerate() {
            let e = per_neuron.breakdown.energy_pj[i] * neurons as f64;
            let t = per_neuron.breakdown.time_ns[i] * waves as f64 * share_factor;
            if e > 0.0 || t > 0.0 {
                breakdown.add(*class, e, t);
            }
        }
        // Buffer + controller overheads land in Other.
        let compute_energy: f64 = per_neuron.energy_pj() * neurons as f64;
        let controller_energy = 0.05 * compute_energy;
        breakdown.add(
            BlockClass::Other,
            transfer_energy + controller_energy,
            transfer_latency,
        );

        StageCost {
            label,
            neurons,
            waves,
            latency_ns: compute_latency + transfer_latency,
            energy_pj: compute_energy + transfer_energy + controller_energy,
            breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidnn_core::ReinterpretOptions;
    use rapidnn_data::SyntheticSpec;
    use rapidnn_nn::{topology, Network};
    use rapidnn_tensor::SeededRng;

    fn tiny_model(rng: &mut SeededRng, w: usize, u: usize) -> ReinterpretedNetwork {
        let data = SyntheticSpec::new(12, 3, 2.0).generate(40, rng).unwrap();
        let mut net: Network = topology::mlp(12, &[16], 3, rng).unwrap();
        let options = ReinterpretOptions {
            weight_clusters: w,
            input_clusters: u,
            ..ReinterpretOptions::default()
        };
        ReinterpretedNetwork::build(&mut net, data.inputs(), &options, rng).unwrap()
    }

    #[test]
    fn simulation_produces_positive_costs() {
        let mut rng = SeededRng::new(1);
        let model = tiny_model(&mut rng, 8, 8);
        let report = Simulator::new(AcceleratorConfig::default()).simulate(&model);
        assert!(report.hardware.latency_ns > 0.0);
        assert!(report.hardware.energy_pj > 0.0);
        assert!(report.hardware.mac_ops > 0);
        assert_eq!(report.stages.len(), 2);
        assert!(report.hardware.pipeline_interval_ns <= report.hardware.latency_ns);
    }

    #[test]
    fn smaller_codebooks_are_faster_and_cheaper() {
        // Figure 11's trend: smaller encoded sets → more energy-efficient
        // and faster computation.
        let mut rng = SeededRng::new(2);
        let small =
            Simulator::new(AcceleratorConfig::default()).simulate(&tiny_model(&mut rng, 4, 4));
        let mut rng = SeededRng::new(2);
        let large =
            Simulator::new(AcceleratorConfig::default()).simulate(&tiny_model(&mut rng, 64, 64));
        assert!(small.hardware.latency_ns <= large.hardware.latency_ns);
        assert!(small.hardware.energy_pj < large.hardware.energy_pj);
    }

    #[test]
    fn more_chips_do_not_slow_down() {
        let mut rng = SeededRng::new(3);
        let model = tiny_model(&mut rng, 8, 8);
        let one = Simulator::new(AcceleratorConfig::with_chips(1)).simulate(&model);
        let eight = Simulator::new(AcceleratorConfig::with_chips(8)).simulate(&model);
        assert!(eight.hardware.latency_ns <= one.hardware.latency_ns);
    }

    #[test]
    fn sharing_trades_latency_for_density() {
        let mut rng = SeededRng::new(4);
        let model = tiny_model(&mut rng, 8, 8);
        let base = Simulator::new(AcceleratorConfig::default()).simulate(&model);
        let shared =
            Simulator::new(AcceleratorConfig::default().with_sharing(0.3)).simulate(&model);
        assert!(shared.hardware.latency_ns > base.hardware.latency_ns);
        // Compute efficiency (GOPS/mm²) should not get worse by sharing at
        // fixed area... per Table 4 sharing *improves* GOPS/mm² because a
        // smaller chip serves the same net; at fixed chip size latency
        // grows, so we check density via effective capacity instead.
        assert!(
            shared.config.effective_neuron_capacity() > base.config.effective_neuron_capacity()
        );
    }

    #[test]
    fn weighted_accumulation_dominates_breakdown() {
        let mut rng = SeededRng::new(5);
        let model = tiny_model(&mut rng, 64, 64);
        let report = Simulator::new(AcceleratorConfig::default()).simulate(&model);
        let fr = report.hardware.breakdown.energy_fractions();
        assert!(fr[0] > 0.5, "weighted accumulation fraction {}", fr[0]);
    }

    #[test]
    fn efficiency_metrics_are_finite_and_positive() {
        let mut rng = SeededRng::new(6);
        let model = tiny_model(&mut rng, 16, 16);
        let report = Simulator::new(AcceleratorConfig::default()).simulate(&model);
        assert!(report.edp() > 0.0);
        assert!(report.gops_per_mm2() > 0.0);
        assert!(report.gops_per_w() > 0.0);
        assert!(report.hardware.throughput_per_s() > 0.0);
    }

    #[test]
    fn cnn_model_accounts_pooling() {
        let mut rng = SeededRng::new(7);
        let mut net = Network::new(2 * 6 * 6);
        net.push(
            rapidnn_nn::Conv2d::new(2, 6, 6, 3, 3, 1, rapidnn_nn::Padding::Same, &mut rng).unwrap(),
        );
        net.push(rapidnn_nn::ActivationLayer::new(
            rapidnn_nn::Activation::Relu,
        ));
        net.push(rapidnn_nn::MaxPool2d::new(3, 6, 6, 2).unwrap());
        net.push(rapidnn_nn::Dense::new(27, 4, &mut rng));
        let data = SyntheticSpec::new(72, 4, 2.0)
            .generate(30, &mut rng)
            .unwrap();
        let model = ReinterpretedNetwork::build(
            &mut net,
            data.inputs(),
            &ReinterpretOptions {
                weight_clusters: 8,
                input_clusters: 8,
                ..ReinterpretOptions::default()
            },
            &mut rng,
        )
        .unwrap();
        let report = Simulator::new(AcceleratorConfig::default()).simulate(&model);
        let pooling_energy = report.hardware.breakdown.energy_pj[3];
        assert!(pooling_energy > 0.0);
        assert!(report.stages.iter().any(|s| s.label == "maxpool"));
    }
}
