//! Hardware constants of the RAPIDNN accelerator (Table 1) and the
//! chip-level configuration.
//!
//! All post-layout numbers come from the paper's TSMC 45 nm evaluation;
//! this reproduction treats them as calibrated model constants
//! (DESIGN.md §4).

/// Clock frequency in GHz; the paper quotes per-op latencies in cycles and
/// nanoseconds interchangeably, consistent with a 1 GHz clock.
pub const CLOCK_GHZ: f64 = 1.0;

/// Area of one RNA crossbar (1K×1K cells), µm².
pub const CROSSBAR_AREA_UM2: f64 = 3136.0;
/// Power of one RNA crossbar, mW.
pub const CROSSBAR_POWER_MW: f64 = 3.7;

/// Area of one RNA counter block (1k × 12-bit), µm².
pub const COUNTER_AREA_UM2: f64 = 538.6;
/// Power of one RNA counter block, mW.
pub const COUNTER_POWER_MW: f64 = 0.7;

/// Area of the activation AM block (64 rows), µm².
pub const ACTIVATION_AREA_UM2: f64 = 83.2;
/// Power of the activation AM block, mW.
pub const ACTIVATION_POWER_MW: f64 = 0.2;

/// Area of the encoder AM block (64 rows), µm².
pub const ENCODER_AREA_UM2: f64 = 83.2;
/// Power of the encoder AM block, mW.
pub const ENCODER_POWER_MW: f64 = 0.2;

/// Total area of one RNA block, µm² (Table 1: 3841 µm²).
pub const RNA_AREA_UM2: f64 = 3841.0;
/// Total power of one RNA block, mW (Table 1: 4.8 mW).
pub const RNA_POWER_MW: f64 = 4.8;

/// Area of the per-tile broadcast buffer (1K registers), µm².
pub const BUFFER_AREA_UM2: f64 = 37.6;
/// Power of the per-tile broadcast buffer, mW.
pub const BUFFER_POWER_MW: f64 = 2.8;

/// Area of one tile (1k RNAs + buffer), mm² (Table 1: 3.88 mm²).
pub const TILE_AREA_MM2: f64 = 3.88;
/// Power of one tile, W (Table 1: 4.8 W).
pub const TILE_POWER_W: f64 = 4.8;

/// Chip area with 32 tiles, mm² (Table 1: 124.1 mm²).
pub const CHIP_AREA_MM2: f64 = 124.1;
/// Maximum chip power with 32 tiles, W (Table 1: 153.6 W).
pub const CHIP_POWER_W: f64 = 153.6;

/// Counter width in bits (Table 1: 12-bit counters).
pub const COUNTER_BITS: u32 = 12;

/// Fixed-point width of accumulated values inside the crossbar adder.
pub const ACCUMULATOR_BITS: u32 = 16;

/// Bit-width model of the RNA accumulation datapath, exposed for static
/// analysis: the per-weight occurrence counters saturate at
/// [`COUNTER_BITS`], and the shift-add tree accumulates into a signed
/// fixed-point word of [`ACCUMULATOR_BITS`] with `fraction_bits` of
/// sub-unit precision.
///
/// The software pipeline computes in `f32` and never wraps; this model
/// answers the *hardware* question — would the same network overflow
/// the paper's Table 1 datapath? `rapidnn-analyze` compares statically
/// derived value ranges against [`max_count`](Self::max_count) and
/// [`max_accumulator_magnitude`](Self::max_accumulator_magnitude) and
/// reports exceedances as warnings.
///
/// The served integer kernels mirror this datapath rather than merely
/// simulating it: `rapidnn-analyze`'s quantization plan pins every
/// licensed op's accumulator fraction to at least
/// [`fraction_bits`](Self::fraction_bits) (Q8.8 under
/// [`paper`](Self::paper)), so CPU-side requantization happens on (at
/// least) the grid the simulated hardware accumulates on.
///
/// # Examples
///
/// ```
/// use rapidnn_accel::DatapathModel;
///
/// let dp = DatapathModel::paper();
/// assert_eq!(dp.max_count(), 4095);
/// assert!(dp.max_accumulator_magnitude() < 128.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatapathModel {
    /// Width of the per-weight occurrence counters (Table 1: 12).
    pub counter_bits: u32,
    /// Width of the signed fixed-point accumulator word (Table 1: 16).
    pub accumulator_bits: u32,
    /// Fraction bits of the accumulator's fixed-point format. The paper
    /// does not pin the split; the default Q8.8 leaves integer headroom
    /// for |sum| < 128 on normalized activations.
    pub fraction_bits: u32,
}

impl DatapathModel {
    /// Table 1 widths with a Q8.8 accumulator split.
    pub const fn paper() -> Self {
        DatapathModel {
            counter_bits: COUNTER_BITS,
            accumulator_bits: ACCUMULATOR_BITS,
            fraction_bits: 8,
        }
    }

    /// Largest occurrence count a counter can hold before saturating.
    pub const fn max_count(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }

    /// Largest magnitude representable in the signed fixed-point
    /// accumulator word.
    pub fn max_accumulator_magnitude(&self) -> f64 {
        let frac = self
            .fraction_bits
            .min(self.accumulator_bits.saturating_sub(1));
        ((1u64 << (self.accumulator_bits - 1)) - 1) as f64 / (1u64 << frac) as f64
    }
}

/// Chip-level configuration of the accelerator.
///
/// # Examples
///
/// ```
/// use rapidnn_accel::AcceleratorConfig;
///
/// let one = AcceleratorConfig::default();
/// assert_eq!(one.total_rnas(), 32_000);
/// let eight = AcceleratorConfig::with_chips(8);
/// assert_eq!(eight.total_rnas(), 8 * 32_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of chips ganged together (the paper evaluates 1 and 8).
    pub chips: usize,
    /// Tiles per chip (32 in Table 1).
    pub tiles_per_chip: usize,
    /// RNA blocks per tile (1k = 1000 in Table 1; the tile area
    /// arithmetic only closes with 1000).
    pub rnas_per_tile: usize,
    /// Fraction of neurons sharing an RNA block with another neuron
    /// (§5.6, Table 4); `0.0` disables sharing.
    pub rna_sharing: f64,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            chips: 1,
            tiles_per_chip: 32,
            rnas_per_tile: 1000,
            rna_sharing: 0.0,
        }
    }
}

impl AcceleratorConfig {
    /// Configuration with `chips` chips and Table 1 tile parameters.
    pub fn with_chips(chips: usize) -> Self {
        AcceleratorConfig {
            chips: chips.max(1),
            ..AcceleratorConfig::default()
        }
    }

    /// Sets the RNA sharing fraction (clamped to `[0, 0.9]`).
    pub fn with_sharing(mut self, fraction: f64) -> Self {
        self.rna_sharing = fraction.clamp(0.0, 0.9);
        self
    }

    /// Total physical RNA blocks across all chips.
    pub fn total_rnas(&self) -> usize {
        self.chips * self.tiles_per_chip * self.rnas_per_tile
    }

    /// Effective neuron capacity: sharing lets `1/(1-s)` neurons map onto
    /// each physical RNA.
    pub fn effective_neuron_capacity(&self) -> usize {
        (self.total_rnas() as f64 / (1.0 - self.rna_sharing)).round() as usize
    }

    /// Total silicon area in mm². Tiles scale from Table 1's 3.88 mm²
    /// reference (1000 RNAs); the small chip-level factor covers the
    /// controller and interconnect so the default configuration lands on
    /// Table 1's 124.1 mm².
    pub fn total_area_mm2(&self) -> f64 {
        let tile_mm2 = TILE_AREA_MM2 * (self.rnas_per_tile as f64 / 1000.0);
        self.chips as f64
            * self.tiles_per_chip as f64
            * tile_mm2
            * (CHIP_AREA_MM2 / (32.0 * TILE_AREA_MM2))
    }

    /// Maximum power draw in watts.
    pub fn max_power_w(&self) -> f64 {
        self.chips as f64 * CHIP_POWER_W
    }

    /// Nanoseconds per clock cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / CLOCK_GHZ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_block_sums_are_consistent() {
        // Crossbar + counter + activation + encoder ≈ RNA total.
        let parts = CROSSBAR_AREA_UM2 + COUNTER_AREA_UM2 + ACTIVATION_AREA_UM2 + ENCODER_AREA_UM2;
        assert!(
            (parts - RNA_AREA_UM2).abs() / RNA_AREA_UM2 < 0.01,
            "{parts}"
        );
        let power = CROSSBAR_POWER_MW + COUNTER_POWER_MW + ACTIVATION_POWER_MW + ENCODER_POWER_MW;
        assert!(
            (power - RNA_POWER_MW).abs() / RNA_POWER_MW < 0.01,
            "{power}"
        );
    }

    #[test]
    fn tile_area_close_to_table1() {
        // 1000 RNAs at 3841 µm² + buffer ≈ 3.84 mm² (Table 1's "RNAs 1k
        // 3.84 mm²"); the 3.88 mm² tile adds interconnect.
        let tile_um2 = 1000.0 * RNA_AREA_UM2 + BUFFER_AREA_UM2;
        assert!((tile_um2 / 1e6 - 3.84).abs() < 0.01, "{}", tile_um2 / 1e6);
    }

    #[test]
    fn chip_area_matches_table1() {
        let cfg = AcceleratorConfig::default();
        assert!(
            (cfg.total_area_mm2() - CHIP_AREA_MM2).abs() < 0.1,
            "{}",
            cfg.total_area_mm2()
        );
        assert_eq!(cfg.max_power_w(), 153.6);
    }

    #[test]
    fn chips_scale_linearly() {
        let eight = AcceleratorConfig::with_chips(8);
        assert_eq!(eight.total_rnas(), 256_000);
        assert!((eight.total_area_mm2() - 8.0 * CHIP_AREA_MM2).abs() < 1.0);
        assert_eq!(eight.max_power_w(), 8.0 * 153.6);
    }

    #[test]
    fn sharing_raises_capacity() {
        let cfg = AcceleratorConfig::default().with_sharing(0.2);
        assert!(cfg.effective_neuron_capacity() > cfg.total_rnas());
        assert_eq!(
            AcceleratorConfig::default().effective_neuron_capacity(),
            AcceleratorConfig::default().total_rnas()
        );
    }

    #[test]
    fn sharing_is_clamped() {
        let cfg = AcceleratorConfig::default().with_sharing(5.0);
        assert!(cfg.rna_sharing <= 0.9);
        let cfg = AcceleratorConfig::default().with_sharing(-1.0);
        assert_eq!(cfg.rna_sharing, 0.0);
    }
}
