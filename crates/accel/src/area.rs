//! Area accounting for Figure 14's breakdowns.
//!
//! The RNA-internal split derives directly from Table 1. The system-level
//! split additionally needs the data-block memory, I/O buffering and
//! controller areas, which Table 1 does not list; those three constants
//! are calibrated so the default chip reproduces Figure 14's composition
//! (RNA ≈ 56.7 %, memory ≈ 38.2 %, buffer ≈ 3.4 %, controller ≈ 1.7 %,
//! others ≈ 1.2 %) — see EXPERIMENTS.md for the comparison.

use crate::params::{
    ACTIVATION_AREA_UM2, COUNTER_AREA_UM2, CROSSBAR_AREA_UM2, ENCODER_AREA_UM2, RNA_AREA_UM2,
};

/// Data-block crossbar memory holding the input dataset, mm²
/// (calibrated to Figure 14).
pub const DATA_BLOCKS_AREA_MM2: f64 = 82.8;
/// Broadcast buffers and I/O, mm² (calibrated to Figure 14).
pub const IO_BUFFER_AREA_MM2: f64 = 7.37;
/// Controller, mm² (calibrated to Figure 14).
pub const CONTROLLER_AREA_MM2: f64 = 3.68;
/// MUXes, decoders and other glue, mm² (calibrated to Figure 14).
pub const MISC_AREA_MM2: f64 = 2.6;

/// A labelled area composition.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    entries: Vec<(&'static str, f64)>,
}

impl AreaBreakdown {
    /// The `(label, mm²-or-µm²)` entries.
    pub fn entries(&self) -> &[(&'static str, f64)] {
        &self.entries
    }

    /// Total area in the entries' unit.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, a)| a).sum()
    }

    /// `(label, fraction)` pairs.
    pub fn fractions(&self) -> Vec<(&'static str, f64)> {
        let total = self.total();
        self.entries
            .iter()
            .map(|&(label, area)| (label, if total > 0.0 { area / total } else { 0.0 }))
            .collect()
    }

    /// Fraction of a named entry (0 when absent).
    pub fn fraction_of(&self, label: &str) -> f64 {
        self.fractions()
            .into_iter()
            .find(|(l, _)| *l == label)
            .map_or(0.0, |(_, f)| f)
    }
}

/// System-level area composition of the default 32-tile chip plus its
/// data blocks (Figure 14, left).
pub fn system_area_breakdown() -> AreaBreakdown {
    let rna_mm2 = 32.0 * 1000.0 * RNA_AREA_UM2 / 1e6;
    AreaBreakdown {
        entries: vec![
            ("rna", rna_mm2),
            ("memory", DATA_BLOCKS_AREA_MM2),
            ("buffer", IO_BUFFER_AREA_MM2),
            ("controller", CONTROLLER_AREA_MM2),
            ("others", MISC_AREA_MM2),
        ],
    }
}

/// Area composition inside one RNA block (Figure 14, right), from
/// Table 1's block areas.
pub fn rna_area_breakdown() -> AreaBreakdown {
    let other = (RNA_AREA_UM2
        - CROSSBAR_AREA_UM2
        - COUNTER_AREA_UM2
        - ACTIVATION_AREA_UM2
        - ENCODER_AREA_UM2)
        .max(0.0);
    AreaBreakdown {
        entries: vec![
            ("crossbar", CROSSBAR_AREA_UM2),
            ("counter", COUNTER_AREA_UM2),
            ("activation", ACTIVATION_AREA_UM2),
            ("encoding", ENCODER_AREA_UM2),
            ("other", other),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_fractions_reproduce_figure14_shape() {
        let breakdown = system_area_breakdown();
        let rna = breakdown.fraction_of("rna");
        let memory = breakdown.fraction_of("memory");
        assert!((rna - 0.567).abs() < 0.02, "rna fraction {rna}");
        assert!((memory - 0.382).abs() < 0.02, "memory fraction {memory}");
        assert!(breakdown.fraction_of("buffer") < 0.05);
        assert!(breakdown.fraction_of("controller") < 0.03);
    }

    #[test]
    fn rna_crossbar_dominates() {
        let breakdown = rna_area_breakdown();
        let crossbar = breakdown.fraction_of("crossbar");
        assert!(crossbar > 0.8, "crossbar fraction {crossbar}");
        // The two AM blocks together are a small share — the paper's point
        // that the lookup-table functionality is nearly free in area.
        let ams = breakdown.fraction_of("activation") + breakdown.fraction_of("encoding");
        assert!(ams < 0.12, "AM fraction {ams}");
    }

    #[test]
    fn fractions_sum_to_one() {
        for breakdown in [system_area_breakdown(), rna_area_breakdown()] {
            let total: f64 = breakdown.fractions().iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fraction_of_unknown_label_is_zero() {
        assert_eq!(system_area_breakdown().fraction_of("nope"), 0.0);
    }
}
