//! RAPIDNN accelerator simulator: RNA blocks, tiles, chip, controller and
//! the cycle/energy/area model (§4, Table 1).
//!
//! The functional behaviour of the accelerator is *by construction*
//! identical to [`rapidnn_core::ReinterpretedNetwork`] — the composer's
//! encoded-domain model is exactly what the hardware computes. What this
//! crate adds is the hardware cost of computing it:
//!
//! * [`params`] — the Table 1 area/power constants and the
//!   [`AcceleratorConfig`] (1k RNAs per tile, 32 tiles per chip, 1 GHz);
//! * [`WeightedAccumulator`] — the counter-based accumulation unit:
//!   parallel counting with per-weight buffers (§4.1.1), shift-add
//!   decomposition of counters (including the longest-run-of-1s trick),
//!   and the NOR-built carry-save adder tree (§4.1.2);
//! * [`RnaCost`] — per-neuron latency/energy combining accumulation with
//!   the activation and encoder AM searches;
//! * [`Simulator`] — maps a reinterpreted network onto tiles/RNAs,
//!   pipelines layers through broadcast buffers (§4.3), and reports
//!   latency, throughput, energy breakdown (Figure 13), area breakdown
//!   (Figure 14) and compute efficiency, including RNA sharing (§5.6).
//!
//! # Examples
//!
//! ```
//! use rapidnn_accel::{AcceleratorConfig, WeightedAccumulator};
//!
//! let acc = WeightedAccumulator::new(16);
//! // Add pre-stored value 2.5 four times and 1.0 three times.
//! let report = acc.accumulate(&[(2.5, 4), (1.0, 3)]);
//! assert!((report.sum - 13.0).abs() < 0.01);
//! assert!(report.cycles() > 0);
//! let config = AcceleratorConfig::default();
//! assert_eq!(config.total_rnas(), 32 * 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulate;
pub mod area;
mod metrics;
pub mod params;
mod rna;
mod sim;

pub use accumulate::{decompose_counter, operand_count, AccumulateReport, WeightedAccumulator};
pub use area::{rna_area_breakdown, system_area_breakdown, AreaBreakdown};
pub use metrics::{BlockBreakdown, BlockClass, HardwareReport};
pub use params::{AcceleratorConfig, DatapathModel};
pub use rna::{neuron_cost, RnaCost};
pub use sim::{SimulationReport, Simulator, StageCost};
