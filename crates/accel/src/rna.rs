use crate::metrics::{BlockBreakdown, BlockClass};
use crate::params::{
    ACCUMULATOR_BITS, ACTIVATION_POWER_MW, COUNTER_POWER_MW, CROSSBAR_POWER_MW, ENCODER_POWER_MW,
};
use rapidnn_memristor::{AdderTree, RIPPLE_CYCLES_PER_BIT, STAGE_CYCLES};
use rapidnn_ndcam::SearchCost;

/// Latency/energy cost of evaluating one neuron on one RNA block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RnaCost {
    /// Cycles of the parallel counting phase.
    pub counting_cycles: u64,
    /// Cycles of the carry-save adder phase.
    pub adder_cycles: u64,
    /// Cycles of the activation AM search.
    pub activation_cycles: u64,
    /// Cycles of the encoder AM search.
    pub encoding_cycles: u64,
    /// Energy in picojoules, split by block class.
    pub breakdown: BlockBreakdown,
}

impl RnaCost {
    /// Total cycles of the neuron evaluation.
    pub fn cycles(&self) -> u64 {
        self.counting_cycles + self.adder_cycles + self.activation_cycles + self.encoding_cycles
    }

    /// Total energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.breakdown.total_energy_pj()
    }
}

/// Expected adder-tree operand count for a neuron with `edges` incoming
/// edges spread over at most `slots` distinct pre-stored products.
///
/// With fewer edges than slots each counter is 1 (one operand per edge).
/// Otherwise counters average `edges/slots` and each decomposes into a few
/// shifted terms; the expectation over uniform counters of that magnitude
/// is approximated by half the bit width of the average counter plus one.
pub fn expected_operands(edges: usize, slots: usize) -> usize {
    if edges == 0 {
        return 0;
    }
    let used_slots = edges.min(slots.max(1));
    let avg = (edges as f64 / used_slots as f64).max(1.0);
    if avg <= 1.0 {
        return used_slots;
    }
    // A counter of magnitude c decomposes into ~1 + log2(c)/2 shifted
    // terms on average (half its bits are ones; the longest-run-of-1s
    // trick trims long runs). The smooth form keeps the cost model
    // monotone in fan-in, unlike decomposing the rounded average, whose
    // bit pattern jumps around.
    let per_counter = 1.0 + avg.log2() / 2.0;
    (used_slots as f64 * per_counter).round() as usize
}

/// Analytic cost model of one neuron evaluation (§4.1–4.2).
///
/// * `edges` — incoming edges (dense fan-in or conv patch length);
/// * `weight_clusters` / `input_clusters` — codebook sizes `w`, `u`;
/// * `activation_rows` — rows of the activation AM (1 for comparator
///   ReLU);
/// * `encoder_rows` — rows of the encoder AM (0 for the output stage).
pub fn neuron_cost(
    edges: usize,
    weight_clusters: usize,
    input_clusters: usize,
    activation_rows: usize,
    encoder_rows: usize,
) -> RnaCost {
    if edges == 0 {
        return RnaCost::default();
    }
    // Counting: one index per weight buffer per cycle (§4.1.1); buckets
    // are roughly balanced so the deepest buffer holds ~edges/w entries.
    let counting_cycles = (edges as u64)
        .div_ceil(weight_clusters.max(1) as u64)
        .max(1);

    // Adder tree over the decomposed counters (§4.1.2).
    let slots = weight_clusters * input_clusters;
    let operands = expected_operands(edges, slots);
    let tree = AdderTree::new(ACCUMULATOR_BITS);
    let adder_cycles = if operands <= 1 {
        0
    } else {
        tree.predicted_stages(operands) * STAGE_CYCLES
            + u64::from(ACCUMULATOR_BITS) * RIPPLE_CYCLES_PER_BIT
    };

    // AM searches: one cycle each (0.5 ns search fits the 1 ns cycle).
    let activation_cycles = 1;
    let encoding_cycles = u64::from(encoder_rows > 0);

    let mut breakdown = BlockBreakdown::default();
    // mW × ns = pJ at our 1 GHz clock (1 cycle = 1 ns). The AM blocks draw
    // their Table 1 power for the whole neuron-evaluation window (they are
    // part of the active RNA), plus the per-search dynamic energy.
    let window = (counting_cycles + adder_cycles + activation_cycles + encoding_cycles) as f64;
    breakdown.add(
        BlockClass::WeightedAccumulation,
        COUNTER_POWER_MW * counting_cycles as f64 + CROSSBAR_POWER_MW * adder_cycles as f64,
        (counting_cycles + adder_cycles) as f64,
    );
    let act_cost = SearchCost::for_search(activation_rows.max(1), 32, 1);
    breakdown.add(
        BlockClass::Activation,
        act_cost.energy_fj / 1000.0 + ACTIVATION_POWER_MW * window,
        activation_cycles as f64,
    );
    if encoder_rows > 0 {
        let enc_cost = SearchCost::for_search(encoder_rows, 32, 1);
        breakdown.add(
            BlockClass::Encoding,
            enc_cost.energy_fj / 1000.0 + ENCODER_POWER_MW * window,
            encoding_cycles as f64,
        );
    }

    RnaCost {
        counting_cycles,
        adder_cycles,
        activation_cycles,
        encoding_cycles,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_edges_cost_nothing() {
        let cost = neuron_cost(0, 64, 64, 64, 64);
        assert_eq!(cost.cycles(), 0);
        assert_eq!(cost.energy_pj(), 0.0);
    }

    #[test]
    fn counting_shrinks_with_more_weight_buffers() {
        let few = neuron_cost(1024, 4, 64, 64, 64);
        let many = neuron_cost(1024, 64, 64, 64, 64);
        assert!(many.counting_cycles < few.counting_cycles);
        assert_eq!(many.counting_cycles, 16);
        assert_eq!(few.counting_cycles, 256);
    }

    #[test]
    fn adder_cycles_include_the_13n_ripple() {
        let cost = neuron_cost(512, 64, 64, 64, 64);
        assert!(cost.adder_cycles >= u64::from(ACCUMULATOR_BITS) * 13);
    }

    #[test]
    fn weighted_accumulation_dominates_energy() {
        // Figure 13: the weighted-accumulation block consumes the dominant
        // share (~77–81 %) of energy and time.
        let cost = neuron_cost(512, 64, 64, 64, 64);
        let fractions = cost.breakdown.energy_fractions();
        assert!(
            fractions[0] > 0.6,
            "weighted accumulation fraction {}",
            fractions[0]
        );
    }

    #[test]
    fn output_stage_skips_encoding() {
        let cost = neuron_cost(128, 16, 16, 1, 0);
        assert_eq!(cost.encoding_cycles, 0);
        assert_eq!(cost.breakdown.energy_pj[2], 0.0);
    }

    #[test]
    fn expected_operands_behaviour() {
        // Fewer edges than slots: one operand per edge.
        assert_eq!(expected_operands(10, 4096), 10);
        // Heavily loaded slots: fewer operands than edges.
        assert!(expected_operands(4096, 16) < 4096);
        assert_eq!(expected_operands(0, 64), 0);
    }

    #[test]
    fn larger_codebooks_do_not_reduce_adder_work_below_edges() {
        // With w·u >= edges every edge is its own operand; cost is bounded
        // by the edge count.
        let cost_small = neuron_cost(256, 4, 4, 64, 64);
        let cost_large = neuron_cost(256, 64, 64, 64, 64);
        // Small codebooks collapse many edges into one counter → fewer
        // operands → fewer CSA stages.
        assert!(cost_small.adder_cycles <= cost_large.adder_cycles);
    }
}
