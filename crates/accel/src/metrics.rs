/// The hardware block classes used in the paper's breakdowns
/// (Figures 13 and 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockClass {
    /// Weighted accumulation: product crossbar + counters + adder tree.
    WeightedAccumulation,
    /// Activation-function AM block.
    Activation,
    /// Encoding / pooling AM block.
    Encoding,
    /// Pooling neurons (Type 2 models only).
    Pooling,
    /// Broadcast buffer, controller, MUXes, decoders.
    Other,
}

impl BlockClass {
    /// All classes in presentation order.
    pub const ALL: [BlockClass; 5] = [
        BlockClass::WeightedAccumulation,
        BlockClass::Activation,
        BlockClass::Encoding,
        BlockClass::Pooling,
        BlockClass::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BlockClass::WeightedAccumulation => "weighted accu.",
            BlockClass::Activation => "activation func.",
            BlockClass::Encoding => "encoding",
            BlockClass::Pooling => "pooling",
            BlockClass::Other => "others",
        }
    }
}

/// Per-class accounting of energy and time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockBreakdown {
    /// Energy in picojoules per class, indexed like [`BlockClass::ALL`].
    pub energy_pj: [f64; 5],
    /// Time in nanoseconds per class, indexed like [`BlockClass::ALL`].
    pub time_ns: [f64; 5],
}

impl BlockBreakdown {
    /// Adds energy/time to a class.
    pub fn add(&mut self, class: BlockClass, energy_pj: f64, time_ns: f64) {
        let idx = BlockClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class is in ALL");
        self.energy_pj[idx] += energy_pj;
        self.time_ns[idx] += time_ns;
    }

    /// Total energy across classes, pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.energy_pj.iter().sum()
    }

    /// Total time across classes, ns.
    pub fn total_time_ns(&self) -> f64 {
        self.time_ns.iter().sum()
    }

    /// Energy fraction per class (zeros when total is zero).
    pub fn energy_fractions(&self) -> [f64; 5] {
        let total = self.total_energy_pj();
        if total <= 0.0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, &e) in out.iter_mut().zip(&self.energy_pj) {
            *o = e / total;
        }
        out
    }

    /// Time fraction per class (zeros when total is zero).
    pub fn time_fractions(&self) -> [f64; 5] {
        let total = self.total_time_ns();
        if total <= 0.0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, &t) in out.iter_mut().zip(&self.time_ns) {
            *o = t / total;
        }
        out
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &BlockBreakdown) {
        for i in 0..5 {
            self.energy_pj[i] += other.energy_pj[i];
            self.time_ns[i] += other.time_ns[i];
        }
    }
}

/// Top-level hardware cost of one inference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardwareReport {
    /// End-to-end latency of one inference, ns (layers traversed
    /// sequentially).
    pub latency_ns: f64,
    /// Pipeline initiation interval, ns: the slowest stage, which bounds
    /// throughput once the layer pipeline is full (§4.3).
    pub pipeline_interval_ns: f64,
    /// Total energy of one inference, pJ.
    pub energy_pj: f64,
    /// Energy/time breakdown per block class.
    pub breakdown: BlockBreakdown,
    /// Multiply-accumulate operation count of the network (for GOPS).
    pub mac_ops: u64,
}

impl HardwareReport {
    /// Throughput in inferences per second once the pipeline is full.
    pub fn throughput_per_s(&self) -> f64 {
        if self.pipeline_interval_ns <= 0.0 {
            return 0.0;
        }
        1e9 / self.pipeline_interval_ns
    }

    /// Effective compute rate in GOPS (2 ops per MAC), pipelined.
    pub fn gops(&self) -> f64 {
        if self.pipeline_interval_ns <= 0.0 {
            return 0.0;
        }
        2.0 * self.mac_ops as f64 / self.pipeline_interval_ns
    }

    /// Energy per inference in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.energy_pj / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_fractions() {
        let mut b = BlockBreakdown::default();
        b.add(BlockClass::WeightedAccumulation, 75.0, 150.0);
        b.add(BlockClass::Activation, 10.0, 20.0);
        b.add(BlockClass::Other, 15.0, 30.0);
        assert_eq!(b.total_energy_pj(), 100.0);
        assert_eq!(b.total_time_ns(), 200.0);
        let fr = b.energy_fractions();
        assert!((fr[0] - 0.75).abs() < 1e-9);
        assert!((fr[4] - 0.15).abs() < 1e-9);
        let tf = b.time_fractions();
        assert!((tf[0] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = BlockBreakdown::default();
        assert_eq!(b.energy_fractions(), [0.0; 5]);
        assert_eq!(b.time_fractions(), [0.0; 5]);
    }

    #[test]
    fn merge_sums_classes() {
        let mut a = BlockBreakdown::default();
        a.add(BlockClass::Encoding, 5.0, 1.0);
        let mut b = BlockBreakdown::default();
        b.add(BlockClass::Encoding, 7.0, 2.0);
        a.merge(&b);
        assert_eq!(a.energy_pj[2], 12.0);
        assert_eq!(a.time_ns[2], 3.0);
    }

    #[test]
    fn report_derives_throughput_and_gops() {
        let report = HardwareReport {
            latency_ns: 1000.0,
            pipeline_interval_ns: 500.0,
            energy_pj: 2e6,
            breakdown: BlockBreakdown::default(),
            mac_ops: 1_000_000,
        };
        assert!((report.throughput_per_s() - 2e6).abs() < 1.0);
        assert!((report.gops() - 4000.0).abs() < 1e-6);
        assert!((report.energy_uj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_interval_is_guarded() {
        let report = HardwareReport::default();
        assert_eq!(report.throughput_per_s(), 0.0);
        assert_eq!(report.gops(), 0.0);
    }

    #[test]
    fn labels_cover_all_classes() {
        for class in BlockClass::ALL {
            assert!(!class.label().is_empty());
        }
    }
}
