//! Nearest-distance content-addressable memory (NDCAM) and the
//! associative-memory (AM) blocks built on it.
//!
//! RAPIDNN's activation-function and encoding/pooling units are lookup
//! tables implemented as a CAM that finds the *closest* stored value to a
//! query, paired with a crossbar holding each row's payload (§4.2).
//! This crate models that hardware:
//!
//! * [`NdcamArray`] — the CAM proper. Its cells work *inversely* to a
//!   conventional CAM (a match discharges the match line, Figure 8), so
//!   the row that discharges fastest is the best match; per-bit access
//!   transistors sized `2x` per significance turn the discharge current
//!   into a *bit-weighted* similarity, giving a precise-search
//!   approximation of smallest absolute distance. 32-bit words are
//!   searched as four pipelined 8-bit stages, MSB first.
//! * [`DischargeModel`] — the timing/energy model (0.5 ns per search,
//!   920 fJ and 24 µm² for the 4×4 max-pool reference point vs 1.2 ns /
//!   378 fJ / 374 µm² for CMOS, §4.2.2), with a Monte-Carlo variation
//!   check mirroring the paper's HSPICE analysis.
//! * [`AmBlock`] — NDCAM + payload crossbar = the lookup-table block used
//!   for activation functions and encoders.
//!
//! # Examples
//!
//! ```
//! use rapidnn_ndcam::NdcamArray;
//!
//! let cam = NdcamArray::from_values(&[10, 20, 30, 250], 8)?;
//! assert_eq!(cam.search_nearest(22).row, 1);
//! assert_eq!(cam.search_max().row, 3);
//! # Ok::<(), rapidnn_ndcam::NdcamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod am;
mod array;
mod error;
mod timing;

pub use am::AmBlock;
pub use array::{NdcamArray, SearchHit};
pub use error::NdcamError;
pub use timing::{
    ndcam_area_um2, BlockReference, DischargeModel, SearchCost, CMOS_MAXPOOL_REFERENCE,
    NDCAM_MAXPOOL_REFERENCE,
};
