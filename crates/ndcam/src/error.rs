use std::error::Error;
use std::fmt;

/// Error type for NDCAM construction and search.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NdcamError {
    /// The array was given no rows.
    Empty,
    /// A stored value does not fit the configured bit width.
    ValueTooWide {
        /// The offending value.
        value: u64,
        /// Configured width in bits.
        width: u32,
    },
    /// An unsupported bit width was requested.
    InvalidWidth(u32),
    /// Payload table and CAM disagree in row count.
    PayloadMismatch {
        /// CAM rows.
        rows: usize,
        /// Payload entries supplied.
        payloads: usize,
    },
}

impl fmt::Display for NdcamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdcamError::Empty => write!(f, "ndcam needs at least one row"),
            NdcamError::ValueTooWide { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            NdcamError::InvalidWidth(w) => write!(f, "unsupported bit width {w}"),
            NdcamError::PayloadMismatch { rows, payloads } => {
                write!(f, "{payloads} payloads supplied for {rows} cam rows")
            }
        }
    }
}

impl Error for NdcamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(NdcamError::Empty.to_string().contains("row"));
        assert!(NdcamError::ValueTooWide {
            value: 300,
            width: 8
        }
        .to_string()
        .contains("300"));
        assert!(NdcamError::InvalidWidth(99).to_string().contains("99"));
        assert!(NdcamError::PayloadMismatch {
            rows: 4,
            payloads: 3
        }
        .to_string()
        .contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NdcamError>();
    }
}
