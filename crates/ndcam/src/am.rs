use crate::array::{NdcamArray, SearchHit};
use crate::NdcamError;

/// Associative-memory block: an [`NdcamArray`] of keys plus a payload per
/// row (Figure 7b/c).
///
/// This is the hardware form of both RAPIDNN lookup tables:
///
/// * **activation function** — keys are quantized pre-activation values
///   `y`, payloads are the activation outputs `z`;
/// * **encoder** — keys are the next layer's input representatives,
///   payloads are their encoded indices.
///
/// A lookup is one nearest-distance search followed by one payload-row
/// read from the attached crossbar.
#[derive(Debug, Clone, PartialEq)]
pub struct AmBlock<P> {
    cam: NdcamArray,
    payloads: Vec<P>,
}

impl<P: Clone> AmBlock<P> {
    /// Creates an AM block from parallel key and payload arrays.
    ///
    /// # Errors
    ///
    /// Propagates CAM construction errors and rejects mismatched payload
    /// counts.
    pub fn new(keys: &[u64], width: u32, payloads: Vec<P>) -> Result<Self, NdcamError> {
        let cam = NdcamArray::from_values(keys, width)?;
        if payloads.len() != cam.rows() {
            return Err(NdcamError::PayloadMismatch {
                rows: cam.rows(),
                payloads: payloads.len(),
            });
        }
        Ok(AmBlock { cam, payloads })
    }

    /// The underlying CAM.
    pub fn cam(&self) -> &NdcamArray {
        &self.cam
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.cam.rows()
    }

    /// Looks up the payload whose key is nearest to `query`, returning the
    /// payload and the search metadata.
    pub fn lookup(&self, query: u64) -> (P, SearchHit) {
        let hit = self.cam.search_nearest(query);
        (self.payloads[hit.row].clone(), hit)
    }

    /// Circuit-faithful lookup using the staged weighted-match search.
    pub fn lookup_weighted(&self, query: u64) -> (P, SearchHit) {
        let hit = self.cam.search_weighted(query);
        (self.payloads[hit.row].clone(), hit)
    }

    /// Payload of the row holding the maximum key (max pooling reuses the
    /// encoder AM block this way, §4.2.1).
    pub fn max_payload(&self) -> (P, SearchHit) {
        let hit = self.cam.search_max();
        (self.payloads[hit.row].clone(), hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigmoid_block() -> AmBlock<f32> {
        // Keys: quantized pre-activations mapped to u64 by offsetting;
        // payloads: sigmoid outputs.
        let keys: Vec<u64> = (0..16).map(|i| i * 16).collect();
        let payloads: Vec<f32> = keys
            .iter()
            .map(|&k| {
                let y = (k as f32 - 128.0) / 32.0;
                1.0 / (1.0 + (-y).exp())
            })
            .collect();
        AmBlock::new(&keys, 8, payloads).unwrap()
    }

    #[test]
    fn lookup_returns_nearest_rows_payload() {
        let block = sigmoid_block();
        let (z, hit) = block.lookup(130);
        assert_eq!(hit.value, 128);
        assert!((z - 0.5).abs() < 0.05);
    }

    #[test]
    fn payload_count_is_validated() {
        assert_eq!(
            AmBlock::new(&[1, 2, 3], 8, vec![0.0f32; 2]),
            Err(NdcamError::PayloadMismatch {
                rows: 3,
                payloads: 2
            })
        );
    }

    #[test]
    fn weighted_lookup_agrees_on_exact_keys() {
        let block = sigmoid_block();
        for &k in block.cam().values() {
            let (a, _) = block.lookup(k);
            let (b, _) = block.lookup_weighted(k);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn max_payload_for_pooling() {
        let block = AmBlock::new(&[12, 200, 7], 8, vec!["a", "b", "c"]).unwrap();
        let (payload, hit) = block.max_payload();
        assert_eq!(payload, "b");
        assert_eq!(hit.value, 200);
    }

    #[test]
    fn lookup_reports_search_cost() {
        let block = sigmoid_block();
        let (_, hit) = block.lookup(42);
        assert!(hit.cost.latency_ns > 0.0);
        assert!(hit.cost.energy_fj > 0.0);
        assert_eq!(hit.stages, 1);
    }
}
