use rapidnn_tensor::SeededRng;

/// Measured reference point for one hardware block (area, latency,
/// energy) as reported by the paper's post-layout simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockReference {
    /// Area in square micrometres.
    pub area_um2: f64,
    /// Latency in nanoseconds.
    pub latency_ns: f64,
    /// Energy per operation in femtojoules.
    pub energy_fj: f64,
}

/// NDCAM implementing a 4×4 max pool: 24 µm², 0.5 ns, 920 fJ (§4.2.2).
pub const NDCAM_MAXPOOL_REFERENCE: BlockReference = BlockReference {
    area_um2: 24.0,
    latency_ns: 0.5,
    energy_fj: 920.0,
};

/// The same function in CMOS: 374 µm², 1.2 ns, 378 fJ (§4.2.2).
pub const CMOS_MAXPOOL_REFERENCE: BlockReference = BlockReference {
    area_um2: 374.0,
    latency_ns: 1.2,
    energy_fj: 378.0,
};

/// Rows of the paper's 4×4 max-pool reference search.
const REFERENCE_ROWS: f64 = 16.0;
/// Pipeline stages of the reference search (8-bit encoded values).
const REFERENCE_STAGES: f64 = 1.0;

/// Latency and energy of one NDCAM search.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchCost {
    /// Latency in nanoseconds.
    pub latency_ns: f64,
    /// Energy in femtojoules.
    pub energy_fj: f64,
}

impl SearchCost {
    /// Cost of a search over `rows` rows, `width` bits, `stages` pipeline
    /// stages, scaled from the 4×4 max-pool reference point: energy scales
    /// with the number of match lines (rows) and stages; latency with the
    /// stage count (each stage is one 0.5 ns search cycle).
    pub fn for_search(rows: usize, _width: u32, stages: u32) -> Self {
        SearchCost {
            latency_ns: NDCAM_MAXPOOL_REFERENCE.latency_ns * stages as f64 / REFERENCE_STAGES,
            energy_fj: NDCAM_MAXPOOL_REFERENCE.energy_fj
                * (rows as f64 / REFERENCE_ROWS)
                * (stages as f64 / REFERENCE_STAGES),
        }
    }

    /// Adds two costs (sequential composition).
    pub fn plus(self, other: SearchCost) -> SearchCost {
        SearchCost {
            latency_ns: self.latency_ns + other.latency_ns,
            energy_fj: self.energy_fj + other.energy_fj,
        }
    }
}

/// Estimated NDCAM area for `rows` rows of `width` bits, scaled from the
/// 24 µm² 4×4 reference (16 rows × 8 bits).
pub fn ndcam_area_um2(rows: usize, width: u32) -> f64 {
    NDCAM_MAXPOOL_REFERENCE.area_um2 * (rows as f64 / REFERENCE_ROWS) * (width as f64 / 8.0)
}

/// Analog discharge-timing model of one search stage.
///
/// Match lines are precharged; matched cells discharge them with a
/// bit-weighted current, so the line with the *highest* weighted match
/// score crosses the sense threshold first (inverse-cell scheme, Figure 8).
/// The model answers the paper's key circuit question: with 10 % process
/// variation, are two adjacent scores still distinguishable within one
/// 8-bit stage?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeModel {
    /// Nominal unit discharge current (arbitrary units; only ratios
    /// matter).
    pub unit_current: f64,
    /// Match-line capacitance (arbitrary units).
    pub capacitance: f64,
    /// Relative per-cell current variation (1 sigma).
    pub variation: f64,
}

impl Default for DischargeModel {
    fn default() -> Self {
        DischargeModel {
            unit_current: 1.0,
            capacitance: 100.0,
            variation: 0.10,
        }
    }
}

impl DischargeModel {
    /// Discharge time of a match line whose weighted match score is
    /// `score` (sum of `2^i` over matched bit positions), with sampled
    /// variation. Higher score → faster discharge. A zero score never
    /// discharges (`f64::INFINITY`).
    pub fn discharge_time(&self, score: u64, rng: &mut SeededRng) -> f64 {
        if score == 0 {
            return f64::INFINITY;
        }
        let current = self.unit_current
            * score as f64
            * (1.0 + self.variation * rng.normal() as f64).max(0.05);
        self.capacitance / current
    }

    /// Monte-Carlo check that the winner of a stage is decided correctly:
    /// samples `trials` races between match lines scoring `lo` and `hi`
    /// and returns the fraction in which the higher score discharges
    /// first. The paper's HSPICE analysis (5000 runs, 10 % variation)
    /// establishes that decisions inside an 8-bit stage are reliable —
    /// i.e. races whose scores differ at a *significant* bit — which is
    /// why wider words are pipelined into 8-bit stages instead of sized
    /// up.
    pub fn separability(&self, lo: u64, hi: u64, trials: usize, rng: &mut SeededRng) -> f64 {
        let mut correct = 0usize;
        for _ in 0..trials {
            let slow = self.discharge_time(lo, rng);
            let fast = self.discharge_time(hi, rng);
            if fast < slow {
                correct += 1;
            }
        }
        correct as f64 / trials.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_points_match_the_paper() {
        assert_eq!(NDCAM_MAXPOOL_REFERENCE.area_um2, 24.0);
        assert_eq!(NDCAM_MAXPOOL_REFERENCE.latency_ns, 0.5);
        assert_eq!(NDCAM_MAXPOOL_REFERENCE.energy_fj, 920.0);
        assert_eq!(CMOS_MAXPOOL_REFERENCE.area_um2, 374.0);
        // NDCAM wins area and latency; CMOS wins per-op energy, exactly as
        // reported. (Computed through a function so the comparison is not
        // constant-folded away.)
        let wins = |a: f64, b: f64| a < b;
        assert!(wins(
            NDCAM_MAXPOOL_REFERENCE.area_um2,
            CMOS_MAXPOOL_REFERENCE.area_um2
        ));
        assert!(wins(
            NDCAM_MAXPOOL_REFERENCE.latency_ns,
            CMOS_MAXPOOL_REFERENCE.latency_ns
        ));
    }

    #[test]
    fn reference_search_cost_reproduces_the_reference() {
        let cost = SearchCost::for_search(16, 8, 1);
        assert!((cost.latency_ns - 0.5).abs() < 1e-9);
        assert!((cost.energy_fj - 920.0).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_with_rows_and_stages() {
        let small = SearchCost::for_search(16, 8, 1);
        let wide = SearchCost::for_search(64, 8, 1);
        let deep = SearchCost::for_search(16, 32, 4);
        assert!((wide.energy_fj / small.energy_fj - 4.0).abs() < 1e-9);
        assert!((deep.latency_ns / small.latency_ns - 4.0).abs() < 1e-9);
    }

    #[test]
    fn costs_compose() {
        let a = SearchCost {
            latency_ns: 1.0,
            energy_fj: 10.0,
        };
        let b = SearchCost {
            latency_ns: 0.5,
            energy_fj: 5.0,
        };
        let c = a.plus(b);
        assert_eq!(c.latency_ns, 1.5);
        assert_eq!(c.energy_fj, 15.0);
    }

    #[test]
    fn area_scales_from_reference() {
        assert!((ndcam_area_um2(16, 8) - 24.0).abs() < 1e-9);
        assert!((ndcam_area_um2(64, 8) - 96.0).abs() < 1e-9);
        assert!((ndcam_area_um2(16, 32) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn higher_scores_discharge_faster_nominally() {
        let model = DischargeModel {
            variation: 0.0,
            ..DischargeModel::default()
        };
        let mut rng = SeededRng::new(0);
        let t1 = model.discharge_time(1, &mut rng);
        let t128 = model.discharge_time(128, &mut rng);
        assert!(t128 < t1);
        assert_eq!(model.discharge_time(0, &mut rng), f64::INFINITY);
    }

    #[test]
    fn monte_carlo_separability_mirrors_hspice_finding() {
        // 5000-run Monte-Carlo at 10 % variation, as in the paper. Races
        // decided at a significant bit (score ratio >= 2) are reliable;
        // as the ratio approaches 1 the decision degrades toward a coin
        // flip — the reason searches are pipelined into 8-bit stages where
        // the MSB-first elimination keeps decisions at significant bits.
        let model = DischargeModel::default();
        let mut rng = SeededRng::new(5000);
        let msb_race = model.separability(128, 255, 5000, &mut rng);
        assert!(msb_race > 0.99, "msb-race separability {msb_race}");
        let marginal = model.separability(200, 220, 5000, &mut rng);
        let hopeless = model.separability(254, 255, 5000, &mut rng);
        assert!(
            msb_race > marginal && marginal > hopeless,
            "separability not monotone: {msb_race} / {marginal} / {hopeless}"
        );
        assert!(hopeless < 0.65, "lsb-race separability {hopeless}");
    }

    #[test]
    fn zero_variation_races_are_deterministic() {
        let model = DischargeModel {
            variation: 0.0,
            ..DischargeModel::default()
        };
        let mut rng = SeededRng::new(1);
        assert_eq!(model.separability(254, 255, 100, &mut rng), 1.0);
    }
}
