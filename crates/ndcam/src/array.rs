use crate::{NdcamError, SearchCost};

/// Width of one pipeline stage in bits; the paper's HSPICE analysis found
/// discharge speeds distinguishable up to 8 subsequent bits, so wider words
/// are searched in sequential 8-bit stages starting at the MSB (§4.2.2).
pub const STAGE_BITS: u32 = 8;

/// Result of a search: the winning row and its hardware cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Winning row index (ties resolve to the lowest index).
    pub row: usize,
    /// Stored value of the winning row.
    pub value: u64,
    /// Number of 8-bit pipeline stages exercised.
    pub stages: u32,
    /// Latency/energy cost of the search.
    pub cost: SearchCost,
}

/// The nearest-distance CAM array.
///
/// Rows store unsigned fixed-width values. Searches model the inverse-cell
/// discharge circuit: each stage scores the surviving rows by a
/// *bit-weighted match current* (`Σ 2^i` over matching bit positions — the
/// `2x`-per-bit access-transistor sizing) and keeps the rows with the
/// strongest discharge; later stages break ties. [`NdcamArray::search_nearest`]
/// is the exact nearest-absolute-distance reference the circuit
/// approximates; [`NdcamArray::search_weighted`] is the circuit-faithful
/// staged model, and [`NdcamArray::fidelity`] measures how often they
/// agree.
#[derive(Debug, Clone, PartialEq)]
pub struct NdcamArray {
    values: Vec<u64>,
    width: u32,
}

impl NdcamArray {
    /// Creates an array storing `values` at `width` bits each.
    ///
    /// # Errors
    ///
    /// * [`NdcamError::Empty`] when no values are given.
    /// * [`NdcamError::InvalidWidth`] when `width` is 0 or above 63.
    /// * [`NdcamError::ValueTooWide`] when a value does not fit.
    pub fn from_values(values: &[u64], width: u32) -> Result<Self, NdcamError> {
        if values.is_empty() {
            return Err(NdcamError::Empty);
        }
        if width == 0 || width > 63 {
            return Err(NdcamError::InvalidWidth(width));
        }
        let limit = 1u64 << width;
        for &v in values {
            if v >= limit {
                return Err(NdcamError::ValueTooWide { value: v, width });
            }
        }
        Ok(NdcamArray {
            values: values.to_vec(),
            width,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.values.len()
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Stored values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of pipeline stages a full-width search needs.
    pub fn stages(&self) -> u32 {
        self.width.div_ceil(STAGE_BITS)
    }

    /// Reference search: the row whose value has the smallest absolute
    /// distance to `query` (ties → lowest row index). This is the
    /// behaviour the composer's encode tables assume.
    pub fn search_nearest(&self, query: u64) -> SearchHit {
        let mut best_row = 0usize;
        let mut best_dist = u64::MAX;
        for (i, &v) in self.values.iter().enumerate() {
            let dist = v.abs_diff(query);
            if dist < best_dist {
                best_dist = dist;
                best_row = i;
            }
        }
        self.hit(best_row)
    }

    /// Circuit-faithful staged search: per 8-bit stage (MSB first), score
    /// surviving rows by bit-weighted match current and keep the maximum;
    /// the final survivor with the lowest index wins.
    pub fn search_weighted(&self, query: u64) -> SearchHit {
        let mut survivors: Vec<usize> = (0..self.values.len()).collect();
        let stages = self.stages();
        for stage in 0..stages {
            // Stage 0 holds the most significant bits.
            let hi = self.width - stage * STAGE_BITS;
            let lo = hi.saturating_sub(STAGE_BITS);
            let q_bits = (query >> lo) & ((1u64 << (hi - lo)) - 1);
            let mut best_score = 0u64;
            let mut next: Vec<usize> = Vec::new();
            for &row in &survivors {
                let v_bits = (self.values[row] >> lo) & ((1u64 << (hi - lo)) - 1);
                let matches = !(v_bits ^ q_bits) & ((1u64 << (hi - lo)) - 1);
                // Bit-weighted discharge current: each matching cell at bit
                // position i contributes 2^i (transistor sizing, §4.2.2).
                let score = matches;
                match score.cmp(&best_score) {
                    std::cmp::Ordering::Greater => {
                        best_score = score;
                        next.clear();
                        next.push(row);
                    }
                    std::cmp::Ordering::Equal => next.push(row),
                    std::cmp::Ordering::Less => {}
                }
            }
            survivors = next;
            if survivors.len() == 1 {
                break;
            }
        }
        self.hit(survivors[0])
    }

    /// Plain (unweighted) Hamming search: identical staging, but every
    /// matched cell contributes the same current — the conventional-CAM
    /// behaviour the paper's §4.2.2 improves upon.
    pub fn search_hamming(&self, query: u64) -> SearchHit {
        let mut survivors: Vec<usize> = (0..self.values.len()).collect();
        let stages = self.stages();
        for stage in 0..stages {
            let hi = self.width - stage * STAGE_BITS;
            let lo = hi.saturating_sub(STAGE_BITS);
            let q_bits = (query >> lo) & ((1u64 << (hi - lo)) - 1);
            let mut best_score = 0u32;
            let mut next: Vec<usize> = Vec::new();
            for &row in &survivors {
                let v_bits = (self.values[row] >> lo) & ((1u64 << (hi - lo)) - 1);
                let matches = !(v_bits ^ q_bits) & ((1u64 << (hi - lo)) - 1);
                let score = matches.count_ones();
                match score.cmp(&best_score) {
                    std::cmp::Ordering::Greater => {
                        best_score = score;
                        next.clear();
                        next.push(row);
                    }
                    std::cmp::Ordering::Equal => next.push(row),
                    std::cmp::Ordering::Less => {}
                }
            }
            survivors = next;
            if survivors.len() == 1 {
                break;
            }
        }
        self.hit(survivors[0])
    }

    /// Fraction of queries in `0..2^width` (subsampled to at most
    /// `samples`) where the circuit-faithful weighted search returns a row
    /// exactly as close as the true nearest row — the precision of the
    /// staged weighted-match approximation.
    pub fn fidelity(&self, samples: usize) -> f64 {
        self.fidelity_of(samples, NdcamArray::search_weighted)
    }

    /// Like [`Self::fidelity`], but for the plain Hamming search — the
    /// baseline the bit-weighted transistor sizing improves upon.
    pub fn fidelity_hamming(&self, samples: usize) -> f64 {
        self.fidelity_of(samples, NdcamArray::search_hamming)
    }

    fn fidelity_of(&self, samples: usize, search: impl Fn(&Self, u64) -> SearchHit) -> f64 {
        let domain = 1u64 << self.width;
        let step = (domain / samples.max(1) as u64).max(1);
        let mut agree = 0usize;
        let mut total = 0usize;
        let mut q = 0u64;
        while q < domain {
            let exact = self.search_nearest(q);
            let circuit = search(self, q);
            if circuit.value.abs_diff(q) == exact.value.abs_diff(q) {
                agree += 1;
            }
            total += 1;
            q += step;
        }
        agree as f64 / total.max(1) as f64
    }

    /// Finds the row holding the maximum value — the max-pooling search:
    /// encoded values are written into the CAM and the largest is
    /// identified in a single search (§4.2.1).
    pub fn search_max(&self) -> SearchHit {
        let mut best = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if v > self.values[best] {
                best = i;
            }
        }
        self.hit(best)
    }

    /// Finds the row holding the minimum value (min pooling).
    pub fn search_min(&self) -> SearchHit {
        let mut best = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if v < self.values[best] {
                best = i;
            }
        }
        self.hit(best)
    }

    fn hit(&self, row: usize) -> SearchHit {
        let stages = self.stages();
        SearchHit {
            row,
            value: self.values[row],
            stages,
            cost: SearchCost::for_search(self.rows(), self.width, stages),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(NdcamArray::from_values(&[], 8), Err(NdcamError::Empty));
        assert_eq!(
            NdcamArray::from_values(&[1], 0),
            Err(NdcamError::InvalidWidth(0))
        );
        assert_eq!(
            NdcamArray::from_values(&[256], 8),
            Err(NdcamError::ValueTooWide {
                value: 256,
                width: 8
            })
        );
        assert!(NdcamArray::from_values(&[255], 8).is_ok());
    }

    #[test]
    fn nearest_finds_smallest_absolute_distance() {
        let cam = NdcamArray::from_values(&[0, 10, 100, 200], 8).unwrap();
        assert_eq!(cam.search_nearest(4).row, 0);
        assert_eq!(cam.search_nearest(6).row, 1);
        assert_eq!(cam.search_nearest(140).row, 2);
        assert_eq!(cam.search_nearest(255).row, 3);
    }

    #[test]
    fn nearest_ties_resolve_low() {
        let cam = NdcamArray::from_values(&[10, 20], 8).unwrap();
        assert_eq!(cam.search_nearest(15).row, 0);
    }

    #[test]
    fn weighted_search_is_exact_on_exact_matches() {
        let cam = NdcamArray::from_values(&[3, 77, 128, 254], 8).unwrap();
        for (i, &v) in cam.values().iter().enumerate() {
            assert_eq!(cam.search_weighted(v).row, i);
        }
    }

    #[test]
    fn hamming_motivation_example() {
        // §4.2.2: 0b11111 has the same Hamming distance to 0b11110 and
        // 0b01111, but very different absolute distances. The weighted
        // search must prefer the closer value.
        let cam = NdcamArray::from_values(&[0b11110, 0b01111], 5).unwrap();
        let hit = cam.search_weighted(0b11111);
        assert_eq!(hit.value, 0b11110);
    }

    #[test]
    fn weighted_search_beats_plain_hamming() {
        // §4.2.2's design point: bit-weighted currents approximate
        // absolute distance far better than plain Hamming matching.
        let cam = NdcamArray::from_values(&[5, 64, 130, 200], 8).unwrap();
        let weighted = cam.fidelity(256);
        let hamming = cam.fidelity_hamming(256);
        assert!(
            weighted > hamming,
            "weighted {weighted} vs hamming {hamming}"
        );
        assert!(weighted > 0.6, "weighted fidelity {weighted}");
    }

    #[test]
    fn fidelity_is_perfect_on_codebook_points() {
        // Queries that are exactly stored values always resolve exactly.
        let cam = NdcamArray::from_values(&[5, 64, 130, 200], 8).unwrap();
        for &v in cam.values() {
            assert_eq!(cam.search_weighted(v).value, v);
            assert_eq!(cam.search_hamming(v).value, v);
        }
    }

    #[test]
    fn max_and_min_searches() {
        let cam = NdcamArray::from_values(&[13, 250, 8, 99], 8).unwrap();
        assert_eq!(cam.search_max().value, 250);
        assert_eq!(cam.search_max().row, 1);
        assert_eq!(cam.search_min().value, 8);
        assert_eq!(cam.search_min().row, 2);
    }

    #[test]
    fn stage_count_follows_width() {
        let cam = NdcamArray::from_values(&[1], 8).unwrap();
        assert_eq!(cam.stages(), 1);
        let cam = NdcamArray::from_values(&[1], 32).unwrap();
        assert_eq!(cam.stages(), 4);
        let cam = NdcamArray::from_values(&[1], 12).unwrap();
        assert_eq!(cam.stages(), 2);
    }

    #[test]
    fn weighted_search_narrows_per_stage() {
        // Values differing only in low bits force the search into the
        // second stage.
        let cam = NdcamArray::from_values(&[0x1200, 0x1210, 0x1220], 16).unwrap();
        let hit = cam.search_weighted(0x1211);
        assert_eq!(hit.value, 0x1210);
    }
}
