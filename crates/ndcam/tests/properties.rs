//! Property-based tests of the NDCAM search semantics and cost model.

use rapidnn_ndcam::{ndcam_area_um2, AmBlock, NdcamArray, SearchCost};
use rapidnn_prop::{check, usize_in, DEFAULT_CASES};

/// The reference nearest search is an exact argmin of absolute
/// distance, for any stored values and query.
#[test]
fn nearest_is_argmin() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 32);
        let values: Vec<u64> = (0..n).map(|_| usize_in(rng, 0, 1 << 12) as u64).collect();
        let query = usize_in(rng, 0, 1 << 12) as u64;
        let cam = NdcamArray::from_values(&values, 12).unwrap();
        let hit = cam.search_nearest(query);
        let best = values.iter().map(|&v| v.abs_diff(query)).min().unwrap();
        assert_eq!(hit.value.abs_diff(query), best);
        assert_eq!(hit.value, values[hit.row]);
    });
}

/// Both circuit searches resolve stored keys exactly.
#[test]
fn stored_keys_resolve_exactly() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 24);
        let values: Vec<u64> = (0..n).map(|_| usize_in(rng, 0, 256) as u64).collect();
        let cam = NdcamArray::from_values(&values, 8).unwrap();
        for &v in &values {
            // With duplicate keys any row holding the value is correct.
            assert_eq!(cam.search_weighted(v).value, v);
            assert_eq!(cam.search_hamming(v).value, v);
        }
    });
}

/// Max/min searches agree with slice max/min.
#[test]
fn max_min_agree_with_slice() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 40);
        let values: Vec<u64> = (0..n).map(|_| usize_in(rng, 0, 1 << 16) as u64).collect();
        let cam = NdcamArray::from_values(&values, 16).unwrap();
        assert_eq!(cam.search_max().value, *values.iter().max().unwrap());
        assert_eq!(cam.search_min().value, *values.iter().min().unwrap());
    });
}

/// Search cost scales linearly in rows and stages and never comes out
/// non-positive.
#[test]
fn search_cost_scales() {
    check(DEFAULT_CASES, |rng| {
        let rows = usize_in(rng, 1, 512);
        let stages = usize_in(rng, 1, 8) as u32;
        let cost = SearchCost::for_search(rows, 8 * stages, stages);
        assert!(cost.latency_ns > 0.0);
        assert!(cost.energy_fj > 0.0);
        let double = SearchCost::for_search(rows * 2, 8 * stages, stages);
        assert!((double.energy_fj / cost.energy_fj - 2.0).abs() < 1e-9);
        assert_eq!(double.latency_ns, cost.latency_ns);
    });
}

/// Area model is linear in rows and width.
#[test]
fn area_is_linear() {
    check(DEFAULT_CASES, |rng| {
        let rows = usize_in(rng, 1, 256);
        let width = usize_in(rng, 1, 64) as u32;
        let a = ndcam_area_um2(rows, width);
        assert!(a > 0.0);
        assert!((ndcam_area_um2(rows * 2, width) - 2.0 * a).abs() < 1e-9);
        assert!((ndcam_area_um2(rows, width * 2) - 2.0 * a).abs() < 1e-9);
    });
}

/// AM blocks return the payload of the nearest key.
#[test]
fn am_block_payload_tracks_key() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 16);
        let keys: Vec<u64> = (0..n).map(|_| usize_in(rng, 0, 256) as u64).collect();
        let query = usize_in(rng, 0, 256) as u64;
        let payloads: Vec<usize> = (0..keys.len()).collect();
        let am = AmBlock::new(&keys, 8, payloads).unwrap();
        let (payload, hit) = am.lookup(query);
        assert_eq!(payload, hit.row);
        assert_eq!(keys[hit.row], hit.value);
    });
}
