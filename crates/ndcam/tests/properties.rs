//! Property-based tests of the NDCAM search semantics and cost model.

use proptest::prelude::*;
use rapidnn_ndcam::{ndcam_area_um2, AmBlock, NdcamArray, SearchCost};

proptest! {
    /// The reference nearest search is an exact argmin of absolute
    /// distance, for any stored values and query.
    #[test]
    fn nearest_is_argmin(
        values in proptest::collection::vec(0u64..(1 << 12), 1..32),
        query in 0u64..(1 << 12),
    ) {
        let cam = NdcamArray::from_values(&values, 12).unwrap();
        let hit = cam.search_nearest(query);
        let best = values.iter().map(|&v| v.abs_diff(query)).min().unwrap();
        prop_assert_eq!(hit.value.abs_diff(query), best);
        prop_assert_eq!(hit.value, values[hit.row]);
    }

    /// Both circuit searches resolve stored keys exactly.
    #[test]
    fn stored_keys_resolve_exactly(
        values in proptest::collection::vec(0u64..256, 1..24),
    ) {
        let cam = NdcamArray::from_values(&values, 8).unwrap();
        for (i, &v) in values.iter().enumerate() {
            // With duplicate keys any row holding the value is correct.
            prop_assert_eq!(cam.search_weighted(v).value, v);
            prop_assert_eq!(cam.search_hamming(v).value, v);
            let _ = i;
        }
    }

    /// Max/min searches agree with slice max/min.
    #[test]
    fn max_min_agree_with_slice(
        values in proptest::collection::vec(0u64..(1 << 16), 1..40),
    ) {
        let cam = NdcamArray::from_values(&values, 16).unwrap();
        prop_assert_eq!(cam.search_max().value, *values.iter().max().unwrap());
        prop_assert_eq!(cam.search_min().value, *values.iter().min().unwrap());
    }

    /// Search cost scales linearly in rows and stages and never comes out
    /// non-positive.
    #[test]
    fn search_cost_scales(rows in 1usize..512, stages in 1u32..8) {
        let cost = SearchCost::for_search(rows, 8 * stages, stages);
        prop_assert!(cost.latency_ns > 0.0);
        prop_assert!(cost.energy_fj > 0.0);
        let double = SearchCost::for_search(rows * 2, 8 * stages, stages);
        prop_assert!((double.energy_fj / cost.energy_fj - 2.0).abs() < 1e-9);
        prop_assert_eq!(double.latency_ns, cost.latency_ns);
    }

    /// Area model is linear in rows and width.
    #[test]
    fn area_is_linear(rows in 1usize..256, width in 1u32..64) {
        let a = ndcam_area_um2(rows, width);
        prop_assert!(a > 0.0);
        prop_assert!((ndcam_area_um2(rows * 2, width) - 2.0 * a).abs() < 1e-9);
        prop_assert!((ndcam_area_um2(rows, width * 2) - 2.0 * a).abs() < 1e-9);
    }

    /// AM blocks return the payload of the nearest key.
    #[test]
    fn am_block_payload_tracks_key(
        keys in proptest::collection::vec(0u64..256, 1..16),
        query in 0u64..256,
    ) {
        let payloads: Vec<usize> = (0..keys.len()).collect();
        let am = AmBlock::new(&keys, 8, payloads).unwrap();
        let (payload, hit) = am.lookup(query);
        prop_assert_eq!(payload, hit.row);
        prop_assert_eq!(keys[hit.row], hit.value);
    }
}
