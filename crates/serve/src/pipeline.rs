//! Pipeline sharding: splitting one compiled model into balanced,
//! contiguous op-range stages.
//!
//! The paper's chip pipelines layers across 32 tiles; once full, its
//! throughput is set by the slowest stage (`pipeline_interval_ns`,
//! §4.3), not end-to-end depth. This module mirrors that at software
//! scale: [`plan_stages`] shards a [`CompiledModel`]'s op program into
//! up to N contiguous ranges, balanced over the analyzer's per-op cost
//! estimates ([`rapidnn_analyze::op_costs`]), so the engine can run one
//! worker (and one `BatchRunner` arena) per stage with bounded SPSC
//! channels between them ([`rapidnn_pool::spsc`]).
//!
//! # Legal cut points
//!
//! A stage boundary must be a point where the inter-op flow is
//! self-describing: one row-major buffer in a known domain. That rules
//! out cutting inside a residual region — the skip snapshot lives in
//! the runner executing the region — so cuts are restricted to op
//! indices at residual nesting depth zero. The flow walk here mirrors
//! `BatchRunner::exec_ops`'s domain/width/codebook transitions exactly;
//! a property test pins the two against each other by running every
//! legal split.
//!
//! # Determinism
//!
//! Sharding preserves bit-identical outputs structurally: stages
//! execute disjoint op ranges in program order over the same buffers a
//! single runner would use (the handoff moves buffers, never reorders
//! or re-accumulates rows), channels are strict FIFO so micro-batches
//! stay in submission order, and every kernel treats rows
//! independently. There is no cross-stage arithmetic to merge — the
//! in-order channel discipline is the whole contract.

use crate::artifact::{CompiledModel, Op};
use crate::kernels::{Domain, FlowState};
use std::ops::Range;

/// How a model is sharded: `ranges[s]` is stage `s`'s contiguous op
/// range, `entries[s]` the flow state it resumes from, `costs[s]` its
/// per-sample cost estimate in analyzer units.
#[derive(Debug, Clone)]
pub(crate) struct StagePlan {
    pub(crate) ranges: Vec<Range<usize>>,
    pub(crate) entries: Vec<FlowState>,
    pub(crate) costs: Vec<u64>,
}

/// Per-stage view reported by a pipelined engine.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// Global op-index range this stage executes.
    pub ops: Range<usize>,
    /// Planner's per-sample cost estimate for the range
    /// (analyzer work units; see [`rapidnn_analyze::OpCost`]).
    pub cost_units: u64,
    /// Micro-batches currently queued at this stage's input (requests
    /// for stage 0, channel occupancy for later stages).
    pub queue_depth: usize,
    /// Bound of that input queue.
    pub queue_capacity: usize,
}

/// Snapshot of a pipelined engine's stage topology and occupancy,
/// from [`Engine::pipeline_stats`](crate::Engine::pipeline_stats).
#[derive(Debug, Clone)]
pub struct PipelineStats {
    /// One entry per stage, in flow order.
    pub stages: Vec<StageStats>,
}

/// Walks the op program computing the flow state *before* each op (and
/// after the last) plus the residual nesting depth at each point.
/// `states[i]` / `depths[i]` describe the boundary before op `i`;
/// index `ops.len()` is the program's exit state.
///
/// The transitions mirror `BatchRunner::exec_ops` — the property suite
/// keeps them honest by executing every legal split.
pub(crate) fn flow_states(model: &CompiledModel) -> (Vec<FlowState>, Vec<usize>) {
    let n = model.ops.len();
    let mut states = Vec::with_capacity(n + 1);
    let mut depths = Vec::with_capacity(n + 1);
    let mut st = FlowState {
        domain: Domain::Codes,
        width: model.input_features,
        book: Some(model.virtual_encoder),
    };
    let mut depth = 0usize;
    states.push(st);
    depths.push(depth);
    for op in &model.ops {
        match op {
            Op::Dense {
                outputs, encoder, ..
            } => {
                st.width = *outputs;
                st.domain = if encoder.is_some() {
                    Domain::Codes
                } else {
                    Domain::Floats
                };
                st.book = *encoder;
            }
            Op::Conv {
                geom,
                out_channels,
                encoder,
                ..
            } => {
                st.width = out_channels * geom.out_pixels();
                st.domain = if encoder.is_some() {
                    Domain::Codes
                } else {
                    Domain::Floats
                };
                st.book = *encoder;
            }
            Op::MaxPool(g) => {
                st.width = g.in_channels * g.out_pixels();
            }
            Op::AvgPool { geom: g, codebook } => {
                st.width = g.in_channels * g.out_pixels();
                if st.domain == Domain::Codes {
                    st.book = Some(*codebook);
                }
            }
            Op::ResidualBegin { .. } => {
                depth += 1;
            }
            Op::ResidualEnd { encoder } => {
                depth = depth.saturating_sub(1);
                st.domain = if encoder.is_some() {
                    Domain::Codes
                } else {
                    Domain::Floats
                };
                st.book = *encoder;
            }
        }
        states.push(st);
        depths.push(depth);
    }
    (states, depths)
}

/// Op indices where the program may be cut: strictly interior
/// boundaries at residual nesting depth zero.
pub(crate) fn cut_points(model: &CompiledModel) -> Vec<usize> {
    let (_, depths) = flow_states(model);
    (1..model.ops.len()).filter(|&i| depths[i] == 0).collect()
}

/// Shards `model` into at most `stages` contiguous op ranges, balanced
/// to minimize the maximum per-stage cost (the pipeline's throughput
/// bound). Returns `None` when fewer than two stages are possible or
/// requested — the caller then serves unsharded.
pub(crate) fn plan_stages(model: &CompiledModel, stages: usize) -> Option<StagePlan> {
    if stages < 2 || model.ops.is_empty() {
        return None;
    }
    let cuts = cut_points(model);
    let k = stages.min(cuts.len() + 1);
    if k < 2 {
        return None;
    }

    let per_op: Vec<u64> = rapidnn_analyze::op_costs(&model.to_program())
        .iter()
        .map(rapidnn_analyze::OpCost::units)
        .collect();

    // Boundaries the partition may use, including both ends; the ops
    // between adjacent boundaries form indivisible segments.
    let mut bounds = Vec::with_capacity(cuts.len() + 2);
    bounds.push(0);
    bounds.extend(&cuts);
    bounds.push(model.ops.len());
    let m = bounds.len() - 1;
    let seg: Vec<u64> = (0..m)
        .map(|j| per_op[bounds[j]..bounds[j + 1]].iter().sum())
        .collect();
    // Prefix sums make segment-run sums O(1) in the partition DP.
    let mut prefix = vec![0u64; m + 1];
    for (j, &s) in seg.iter().enumerate() {
        prefix[j + 1] = prefix[j] + s;
    }
    let run = |a: usize, b: usize| prefix[b] - prefix[a];

    // Classic linear-partition DP: best[p][j] = minimal possible
    // maximum stage cost splitting the first j segments into p stages.
    let mut best: Vec<u64> = (0..=m)
        .map(|j| if j == 0 { u64::MAX } else { run(0, j) })
        .collect();
    let mut choice = vec![vec![0usize; m + 1]; k + 1];
    for (p, choice_row) in choice.iter_mut().enumerate().take(k + 1).skip(2) {
        // Each stage needs at least one segment, so only j >= p are
        // reachable; walk j downward so `best` still holds p-1 values.
        for j in (p..=m).rev() {
            let mut opt = u64::MAX;
            let mut at = p - 1;
            for (t, &through) in best.iter().enumerate().take(j).skip(p - 1) {
                let cand = through.max(run(t, j));
                if cand < opt {
                    opt = cand;
                    at = t;
                }
            }
            best[j] = opt;
            choice_row[j] = at;
        }
        for unreachable in best.iter_mut().take(p.min(m + 1)) {
            *unreachable = u64::MAX;
        }
    }

    // Recover the chosen boundaries.
    let mut splits = vec![m];
    let mut j = m;
    for p in (2..=k).rev() {
        j = choice[p][j];
        splits.push(j);
    }
    splits.push(0);
    splits.reverse();

    let (states, _) = flow_states(model);
    let mut ranges = Vec::with_capacity(k);
    let mut entries = Vec::with_capacity(k);
    let mut costs = Vec::with_capacity(k);
    for w in splits.windows(2) {
        let (a, b) = (bounds[w[0]], bounds[w[1]]);
        ranges.push(a..b);
        entries.push(states[a]);
        costs.push(run(w[0], w[1]));
    }
    debug_assert_eq!(ranges.len(), k);
    Some(StagePlan {
        ranges,
        entries,
        costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{pad_rows, BatchRunner, FlowData};

    /// Executes `model` as the staged pipeline described by `bounds`
    /// (op-index boundaries including both ends), one fresh runner per
    /// stage, asserting along the way that the static flow walk matches
    /// every dynamic stage exit. Returns the final decoded rows.
    fn run_split(
        model: &CompiledModel,
        bounds: &[usize],
        states: &[FlowState],
        inputs: &[f32],
        rows: usize,
    ) -> Vec<f32> {
        let padded = pad_rows(rows);
        let mut runners: Vec<BatchRunner> = (1..bounds.len()).map(|_| BatchRunner::new()).collect();
        let mut entry = runners[0].encode_batch(model, inputs, padded);
        let mut data = runners[0].take_flow(entry.domain);
        for (s, w) in bounds.windows(2).enumerate() {
            assert_eq!(
                states[w[0]], entry,
                "static flow state before op {} diverges from the dynamic exit",
                w[0]
            );
            let (exit, out) = runners[s]
                .run_segment(model, w[0]..w[1], entry, data, padded)
                .unwrap();
            entry = exit;
            data = out;
        }
        match data {
            FlowData::Floats(v) => v[..rows * entry.width].to_vec(),
            FlowData::Codes(_) => panic!("program ended in encoded domain"),
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// The determinism contract, exhaustively: every legal 2-stage and
    /// 3-stage split of a deep model reproduces the uncut run bit for
    /// bit, and the static flow walk agrees with every dynamic stage
    /// boundary along the way.
    #[test]
    fn every_legal_split_reproduces_run_bit_for_bit() {
        let model = CompiledModel::deep_for_tests(6);
        let rows = 5;
        let inputs: Vec<f32> = (0..rows * model.input_features())
            .map(|i| (i as f32 * 0.7).sin() * 2.0)
            .collect();
        let mut reference = Vec::new();
        BatchRunner::new()
            .run(&model, &inputs, &mut reference)
            .unwrap();

        let (states, _) = flow_states(&model);
        let cuts = cut_points(&model);
        let n = model.ops.len();
        assert!(!cuts.is_empty());
        for &c in &cuts {
            let out = run_split(&model, &[0, c, n], &states, &inputs, rows);
            assert_eq!(bits(&out), bits(&reference), "2-stage split at {c}");
        }
        for (i, &a) in cuts.iter().enumerate() {
            for &b in &cuts[i + 1..] {
                let out = run_split(&model, &[0, a, b, n], &states, &inputs, rows);
                assert_eq!(bits(&out), bits(&reference), "3-stage split at {a},{b}");
            }
        }
    }

    /// Residual regions are indivisible: no cut point may land strictly
    /// inside one (the skip snapshot lives in the executing runner),
    /// and every split of a residual model still reproduces the uncut
    /// run bit for bit.
    #[test]
    fn residual_regions_are_never_cut() {
        use rapidnn_core::{ReinterpretOptions, ReinterpretedNetwork};
        use rapidnn_data::SyntheticSpec;
        use rapidnn_nn::{Activation, ActivationLayer, Dense, Network, Residual};
        use rapidnn_tensor::SeededRng;

        let mut rng = SeededRng::new(23);
        let mut net = Network::new(6);
        net.push(Dense::new(6, 5, &mut rng));
        net.push(ActivationLayer::new(Activation::Relu));
        net.push(Residual::new(vec![
            Box::new(Dense::new(5, 5, &mut rng)),
            Box::new(ActivationLayer::new(Activation::Relu)),
        ]));
        net.push(Dense::new(5, 2, &mut rng));
        let data = SyntheticSpec::new(6, 2, 2.0)
            .generate(40, &mut rng)
            .unwrap();
        let opts = ReinterpretOptions {
            weight_clusters: 8,
            input_clusters: 8,
            ..ReinterpretOptions::default()
        };
        let network =
            ReinterpretedNetwork::build(&mut net, data.inputs(), &opts, &mut rng).unwrap();
        let model = CompiledModel::from_reinterpreted(&network).unwrap();

        let begin = model
            .ops
            .iter()
            .position(|op| matches!(op, Op::ResidualBegin { .. }))
            .expect("residual compiled in");
        let end = model
            .ops
            .iter()
            .position(|op| matches!(op, Op::ResidualEnd { .. }))
            .expect("residual compiled in");
        let cuts = cut_points(&model);
        assert!(!cuts.is_empty());
        for &c in &cuts {
            assert!(
                c <= begin || c > end,
                "cut {c} lands inside the residual region {begin}..={end}"
            );
        }

        let rows = 4;
        let inputs: Vec<f32> = (0..rows * model.input_features())
            .map(|i| (i as f32 * 0.3).cos() * 1.5)
            .collect();
        let mut reference = Vec::new();
        BatchRunner::new()
            .run(&model, &inputs, &mut reference)
            .unwrap();
        let (states, _) = flow_states(&model);
        let n = model.ops.len();
        for &c in &cuts {
            let out = run_split(&model, &[0, c, n], &states, &inputs, rows);
            assert_eq!(bits(&out), bits(&reference), "residual split at {c}");
        }
    }

    /// A no-op-cut model (single op) cannot be sharded.
    #[test]
    fn single_op_model_refuses_to_shard() {
        let model = CompiledModel::broken_for_tests();
        assert_eq!(model.ops.len(), 1);
        assert!(plan_stages(&model, 4).is_none());
        assert!(plan_stages(&model, 1).is_none());
    }

    /// Ranges must tile the program contiguously and enter at depth 0.
    #[test]
    fn plan_tiles_the_program() {
        let model = CompiledModel::deep_for_tests(6);
        for stages in 2..=4 {
            let plan = plan_stages(&model, stages).expect("shardable");
            assert!(plan.ranges.len() >= 2 && plan.ranges.len() <= stages);
            assert_eq!(plan.ranges[0].start, 0);
            assert_eq!(plan.ranges.last().unwrap().end, model.ops.len());
            for w in plan.ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            assert_eq!(plan.entries.len(), plan.ranges.len());
            assert_eq!(plan.costs.len(), plan.ranges.len());
            assert!(plan.costs.iter().all(|&c| c > 0));
        }
    }

    /// More stages than cut points clamps instead of failing.
    #[test]
    fn stage_count_clamps_to_cut_points() {
        let model = CompiledModel::deep_for_tests(3);
        let plan = plan_stages(&model, 64).expect("shardable");
        assert_eq!(plan.ranges.len(), model.ops.len());
    }

    /// The balance heuristic never does worse than the trivial "one
    /// giant stage plus crumbs" split: the max stage cost is bounded
    /// by total cost, and with 2 stages it is strictly below it.
    #[test]
    fn balance_reduces_the_bottleneck() {
        let model = CompiledModel::deep_for_tests(8);
        let total: u64 = plan_stages(&model, 2)
            .expect("shardable")
            .costs
            .iter()
            .sum();
        for stages in 2..=4 {
            let plan = plan_stages(&model, stages).expect("shardable");
            let max = *plan.costs.iter().max().unwrap();
            assert!(max < total, "stage {stages}: {max} vs {total}");
        }
    }
}
