//! Artifact linting: run the static analyzer over raw artifact bytes.
//!
//! [`lint_bytes`] is the diagnostic front door: unlike
//! [`CompiledModel::from_bytes_strict`] it never returns an error —
//! byte-level corruption is folded into the report as an `RNA0001`
//! (decode-failed) diagnostic, so callers always get one uniform
//! [`Report`] to render. The `lint_artifact` example wraps this in a
//! CLI that exits nonzero when the report has errors.

use crate::artifact::CompiledModel;
use crate::error::ArtifactError;
use rapidnn_analyze::{DiagCode, Diagnostic, Report};

/// Statically analyzes a serialized artifact, folding decode failures
/// into the report instead of returning them as `Err`.
///
/// The report has no errors **iff** [`CompiledModel::from_bytes_strict`]
/// would accept the same bytes; on top of the accept/reject verdict it
/// carries every warning and note the analyzer produced. Packed-layout
/// framing failures (format v2 section directories) get their own
/// `RNA0012` code; every other byte-level failure folds into `RNA0001`.
pub fn lint_bytes(bytes: &[u8]) -> Report {
    match CompiledModel::decode(bytes) {
        Ok(model) => model.analyze(),
        Err(e) => {
            let code = match e {
                ArtifactError::PackedLayout(_) => DiagCode::PackedLayoutInvalid,
                _ => DiagCode::DecodeFailed,
            };
            let mut report = Report::new();
            report.push(Diagnostic::new(
                code,
                None,
                format!("artifact failed to decode: {e}"),
            ));
            report
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{CodePool, FloatPool, Geom, Op, Span};
    use rapidnn_analyze::Severity;

    fn padded_pool_model() -> CompiledModel {
        // The PR-1 panic class: a pool geometry that declares padding.
        // Pool kernels index without padding, so before the validation
        // fix `infer` panicked out of bounds inside `pool`.
        CompiledModel {
            input_features: 4,
            output_features: 9,
            virtual_encoder: Span { start: 0, len: 2 },
            ops: vec![Op::MaxPool(Geom {
                in_channels: 1,
                in_height: 2,
                in_width: 2,
                kernel_h: 2,
                kernel_w: 2,
                stride: 1,
                pad: 1,
                out_height: 3,
                out_width: 3,
            })],
            floats: FloatPool::Owned(vec![0.0, 1.0]),
            codes: CodePool::Wide(vec![]),
            verified: false,
            quant: None,
        }
    }

    #[test]
    fn padded_pool_is_a_typed_error() {
        let report = lint_bytes(&padded_pool_model().to_bytes());
        let d = report
            .find(DiagCode::PaddedPool)
            .expect("RNA0009 in report");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.op, Some(0));
        assert!(report.has_errors());
    }

    #[test]
    fn oversized_codebook_is_a_typed_error() {
        // The other PR-1 panic class: a codebook past the u16 index
        // range, whose top entries `nearest` would silently wrap.
        let len = (1 << 16) + 1;
        let model = CompiledModel {
            input_features: 1,
            output_features: 1,
            virtual_encoder: Span { start: 0, len },
            ops: vec![],
            floats: FloatPool::Owned(vec![0.0; len]),
            codes: CodePool::Wide(vec![]),
            verified: false,
            quant: None,
        };
        let report = lint_bytes(&model.to_bytes());
        let d = report
            .find(DiagCode::OversizedCodebook)
            .expect("RNA0004 in report");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn garbage_bytes_fold_into_decode_failed() {
        let report = lint_bytes(b"not an artifact");
        assert!(report.has_errors());
        assert!(report.find(DiagCode::DecodeFailed).is_some());

        // Flip a payload byte: checksum mismatch, still DecodeFailed.
        let mut bytes = padded_pool_model().to_bytes();
        bytes[20] ^= 0xff;
        let report = lint_bytes(&bytes);
        assert!(report.find(DiagCode::DecodeFailed).is_some());
    }

    #[test]
    fn strict_load_agrees_with_lint() {
        let bytes = padded_pool_model().to_bytes();
        assert!(lint_bytes(&bytes).has_errors());
        assert!(matches!(
            CompiledModel::from_bytes_strict(&bytes),
            Err(crate::ServeError::Rejected(report)) if report.find(DiagCode::PaddedPool).is_some()
        ));
    }
}
