//! RAPIDNN serving runtime: compiled-model artifacts plus a batched,
//! multi-threaded inference engine.
//!
//! The composer (`rapidnn-core`) produces a
//! [`ReinterpretedNetwork`](rapidnn_core::ReinterpretedNetwork) — a nest
//! of stages, codebooks, and lookup tables convenient for analysis but
//! not for deployment. This crate adds the deployment half:
//!
//! * [`artifact`] — [`CompiledModel`] flattens the reinterpreted network
//!   into two contiguous pools plus a linear op program, serializable to
//!   a versioned, checksummed, std-only binary format. Inference over
//!   the flat program is bit-for-bit identical to the source network.
//! * [`kernels`] — [`BatchRunner`] executes the op program batch-major
//!   over a reusable scratch arena: each op runs once per batch across
//!   all rows, with zero per-sample heap allocations in the steady
//!   state and outputs bit-for-bit identical to per-sample `infer`.
//! * [`engine`] — [`Engine`] serves a compiled model from a worker pool
//!   with a bounded queue, dynamic batching, explicit backpressure
//!   ([`ServeError::QueueFull`]) and draining shutdown. Each worker owns
//!   a persistent [`BatchRunner`] and executes its gathered batch in one
//!   kernel call.
//! * [`lint`] — [`lint_bytes`] runs the `rapidnn-analyze` static
//!   verifier over raw artifact bytes and returns its diagnostic
//!   report; [`CompiledModel::from_bytes_strict`] makes a clean report
//!   a load-time requirement, and verified models let the kernels drop
//!   their defensive per-gather index clamps.
//! * [`pipeline`] — stage planning for sharded serving:
//!   [`EngineConfig::stages`] splits the op program into balanced
//!   contiguous ranges (cost-weighted by the analyzer's per-op
//!   estimates), each run by its own worker and scratch arena with
//!   bounded channels between them — same bit-identical outputs,
//!   pipelined throughput on deep models.
//! * [`metrics`] — [`Metrics`]/[`ServerStats`]: throughput and
//!   queue-depth counters plus a log-scale latency histogram.
//!
//! # Examples
//!
//! ```
//! use rapidnn_core::{Composer, ComposerConfig};
//! use rapidnn_data::SyntheticSpec;
//! use rapidnn_nn::topology;
//! use rapidnn_serve::{CompiledModel, Engine, EngineConfig};
//! use rapidnn_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(7);
//! let data = SyntheticSpec::new(8, 2, 2.0).generate(60, &mut rng)?;
//! let (train, val) = data.split(0.8);
//! let mut net = topology::mlp(8, &[16], 2, &mut rng)?;
//! let config = ComposerConfig::default().with_weights(8).with_inputs(8);
//! let outcome = Composer::new(config).compose(&mut net, &train, &val, &mut rng)?;
//!
//! // Compile, round-trip through bytes, and serve.
//! let model = CompiledModel::from_reinterpreted(&outcome.reinterpreted)?;
//! let bytes = model.to_bytes();
//! let model = CompiledModel::from_bytes(&bytes)?;
//! let engine = Engine::start(model, EngineConfig::default());
//! let ticket = engine.try_submit(val.sample(0).into_vec())?;
//! assert_eq!(ticket.wait()?.len(), 2);
//! let stats = engine.shutdown();
//! assert_eq!(stats.completed, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `deny` rather than `forbid`: the `pod` module opts back in for the
// two checked reinterpretation casts behind the v2 zero-copy loader;
// everything else in the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod engine;
mod error;
pub mod kernels;
pub mod lint;
pub mod metrics;
pub mod pipeline;
mod pod;
mod quant;

pub use artifact::{CompiledModel, FORMAT_VERSION, MAGIC};
pub use engine::{DrainReport, Engine, EngineConfig, Ticket};
pub use error::{ArtifactError, Result, ServeError};
pub use kernels::BatchRunner;
pub use lint::lint_bytes;
pub use metrics::{Metrics, ServerStats, BATCH_BUCKETS, LATENCY_OVERFLOW_NS};
pub use pipeline::{PipelineStats, StageStats};
