//! Serving metrics: lock-free counters plus a log-scale latency histogram.
//!
//! All recording paths are atomic (relaxed ordering — metrics tolerate
//! torn cross-counter reads), so workers never contend on a lock to
//! report. [`Metrics::snapshot`] folds everything into a [`ServerStats`]
//! value for display.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets; bucket `i` covers
/// `[2^i, 2^(i+1))` nanoseconds. The last bucket is an explicit
/// overflow bucket holding everything from `2^(BUCKETS-1)` ns
/// (~9.2 minutes) up — any latency that long is an outage, not a
/// percentile, so finer resolution past it buys nothing.
const BUCKETS: usize = 40;

/// Upper bound reported for the overflow bucket: `2^BUCKETS`
/// nanoseconds (~18.3 minutes). A percentile landing in the overflow
/// bucket saturates to this sentinel instead of the old
/// `Duration::from_nanos(u64::MAX)` (~584 years), which used to poison
/// p99 dashboards after a single stuck request. Check
/// [`ServerStats::latency_overflows`] to see how many completions
/// actually saturated.
pub const LATENCY_OVERFLOW_NS: u64 = 1 << BUCKETS;

/// Power-of-two batch-size buckets: bucket `i` counts batches of
/// `[2^i, 2^(i+1))` rows, with the last bucket holding everything from
/// `2^(BATCH_BUCKETS-1)` rows up. 16 buckets reach 32k-row batches —
/// far past any sane `max_batch_size`.
pub const BATCH_BUCKETS: usize = 16;

/// Shared, thread-safe metrics sink for a serving engine.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    batch_buckets: [AtomicU64; BATCH_BUCKETS],
    queue_depth: AtomicU64,
    peak_queue_depth: AtomicU64,
    latency_sum_ns: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Creates an empty sink; uptime counts from this instant.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            batch_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            queue_depth: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            latency_sum_ns: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records an accepted request and the queue depth it observed.
    pub fn record_submit(&self, queue_depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.set_queue_depth(queue_depth);
    }

    /// Records a rejected (queue-full) request.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by admission control *before* it reached
    /// the engine queue — visible load-shedding (HTTP 429 at a gateway)
    /// as opposed to [`record_rejected`](Self::record_rejected)'s
    /// queue-full backpressure.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one gathered batch of `size` rows, including its bucket
    /// in the log-scale size distribution — the mean alone can't tell
    /// "steady batches of 8" from "mostly singletons plus rare bursts",
    /// and that difference is exactly what dynamic-batching tuning
    /// (`max_wait`, `max_batch_size`) needs to see.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        let bucket = ((size as u64).max(1).ilog2() as usize).min(BATCH_BUCKETS - 1);
        self.batch_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed request with its end-to-end latency.
    pub fn record_completion(&self, latency: Duration, ok: bool) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.latency_sum_ns.fetch_add(ns, Ordering::Relaxed);
        let bucket = (ns.max(1).ilog2() as usize).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the current queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: usize) {
        let depth = depth as u64;
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Folds the counters into a point-in-time snapshot.
    pub fn snapshot(&self) -> ServerStats {
        let completed = self.completed.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let finished = completed + failed;
        let buckets: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let mean_latency = self
            .latency_sum_ns
            .load(Ordering::Relaxed)
            .checked_div(finished)
            .map_or(Duration::ZERO, Duration::from_nanos);
        ServerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed,
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            batch_size_buckets: std::array::from_fn(|i| {
                self.batch_buckets[i].load(Ordering::Relaxed)
            }),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            mean_latency,
            p50_latency: percentile(&buckets, finished, 0.50),
            p90_latency: percentile(&buckets, finished, 0.90),
            p99_latency: percentile(&buckets, finished, 0.99),
            latency_overflows: buckets[BUCKETS - 1],
            throughput_rps: if uptime.as_secs_f64() > 0.0 {
                finished as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            uptime,
        }
    }
}

/// Upper bound of the bucket containing the requested quantile.
///
/// Total / per-bucket counts are loaded from independent relaxed
/// atomics, so they may disagree under concurrent recording and `total`
/// may be zero on an idle (or freshly hot-swapped) engine. Every such
/// combination yields `Duration::ZERO` or a real bucket bound — never a
/// panic or a garbage duration.
fn percentile(buckets: &[u64], total: u64, q: f64) -> Duration {
    if total == 0 {
        return Duration::ZERO;
    }
    // `max(1).min(total)` rather than `clamp(1, total)`: clamp panics
    // when its bounds invert, and this function must stay total for any
    // torn counter snapshot.
    let rank = ((total as f64 * q).ceil() as u64).max(1).min(total);
    let mut seen = 0u64;
    for (i, &count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= rank {
            // A quantile in the overflow bucket saturates to the
            // bucket's nominal bound (the next power of two) rather
            // than `u64::MAX`: one stuck request used to report a
            // ~584-year p99.
            return Duration::from_nanos(1u64 << (i + 1).min(buckets.len()));
        }
    }
    Duration::ZERO
}

/// Point-in-time view of a serving engine's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Requests that finished with an error.
    pub failed: u64,
    /// Requests bounced with [`crate::ServeError::QueueFull`].
    pub rejected: u64,
    /// Requests shed by admission control before reaching the queue
    /// (recorded via [`Metrics::record_shed`], e.g. a gateway's 429s).
    pub shed: u64,
    /// Batches executed by the workers.
    pub batches: u64,
    /// Mean requests per executed batch.
    pub mean_batch_size: f64,
    /// Log-scale batch-size distribution: `batch_size_buckets[i]`
    /// counts executed batches of `[2^i, 2^(i+1))` rows (last bucket is
    /// the overflow). Sums to [`batches`](Self::batches).
    pub batch_size_buckets: [u64; BATCH_BUCKETS],
    /// Queue depth at the last submit/drain.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub peak_queue_depth: u64,
    /// Mean end-to-end latency over finished requests.
    pub mean_latency: Duration,
    /// Median latency (bucket upper bound, 2x log-scale resolution).
    pub p50_latency: Duration,
    /// 90th-percentile latency.
    pub p90_latency: Duration,
    /// 99th-percentile latency. Saturates at
    /// [`LATENCY_OVERFLOW_NS`] nanoseconds; when it reads exactly that
    /// value, [`latency_overflows`](Self::latency_overflows) says how
    /// many completions actually exceeded the histogram range.
    pub p99_latency: Duration,
    /// Completions that landed in the histogram's overflow bucket
    /// (latency at or above `2^39` ns, ~9.2 minutes).
    pub latency_overflows: u64,
    /// Finished requests per second of uptime.
    pub throughput_rps: f64,
    /// Time since the metrics sink was created.
    pub uptime: Duration,
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ok / {} failed / {} rejected / {} shed of {} submitted | {} batches (mean {:.1}) | \
             queue {} (peak {}) | latency mean {:?} p50 {:?} p90 {:?} p99 {:?} | {:.0} req/s",
            self.completed,
            self.failed,
            self.rejected,
            self.shed,
            self.submitted,
            self.batches,
            self.mean_batch_size,
            self.queue_depth,
            self.peak_queue_depth,
            self.mean_latency,
            self.p50_latency,
            self.p90_latency,
            self.p99_latency,
            self.throughput_rps,
        )?;
        if self.latency_overflows > 0 {
            write!(f, " | {} latency overflow(s)", self.latency_overflows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.record_submit(3);
        m.record_submit(7);
        m.record_rejected();
        m.record_batch(2);
        m.record_completion(Duration::from_micros(10), true);
        m.record_completion(Duration::from_micros(20), false);
        let s = m.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.batches, 1);
        assert_eq!(s.mean_batch_size, 2.0);
        assert_eq!(s.peak_queue_depth, 7);
        assert!(s.mean_latency >= Duration::from_micros(10));
    }

    /// The batch-size histogram separates shapes the mean conflates.
    #[test]
    fn batch_size_distribution_buckets_by_rows() {
        let m = Metrics::new();
        m.record_batch(1); // bucket 0
        m.record_batch(1); // bucket 0
        m.record_batch(8); // bucket 3
        m.record_batch(15); // bucket 3
        m.record_batch(1 << 20); // clamps to the overflow bucket
        let s = m.snapshot();
        assert_eq!(s.batch_size_buckets[0], 2);
        assert_eq!(s.batch_size_buckets[3], 2);
        assert_eq!(s.batch_size_buckets[BATCH_BUCKETS - 1], 1);
        assert_eq!(s.batch_size_buckets.iter().sum::<u64>(), s.batches);
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let m = Metrics::new();
        for _ in 0..99 {
            m.record_completion(Duration::from_nanos(100), true);
        }
        m.record_completion(Duration::from_millis(10), true);
        let s = m.snapshot();
        assert!(s.p50_latency <= Duration::from_nanos(256));
        assert!(s.p99_latency <= Duration::from_nanos(256));
        // The single slow request shows up above p99.
        assert!(s.p50_latency < Duration::from_millis(1));
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Metrics::new().snapshot();
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_latency, Duration::ZERO);
        assert_eq!(s.mean_latency, Duration::ZERO);
        assert_eq!(s.mean_batch_size, 0.0);
        assert_eq!(s.shed, 0);
    }

    /// An idle or just-swapped engine (`finished == 0`, possibly with
    /// sheds/rejections already recorded) must snapshot to zeroed
    /// latencies — no division by zero, no panicking rank clamp, no
    /// garbage `Duration`s.
    #[test]
    fn idle_snapshot_with_sheds_is_safe() {
        let m = Metrics::new();
        for _ in 0..5 {
            m.record_shed();
        }
        m.record_rejected();
        m.record_submit(3);
        let s = m.snapshot();
        assert_eq!(s.shed, 5);
        assert_eq!(s.rejected, 1);
        assert_eq!((s.completed, s.failed), (0, 0));
        assert_eq!(s.mean_latency, Duration::ZERO);
        assert_eq!(s.p50_latency, Duration::ZERO);
        assert_eq!(s.p90_latency, Duration::ZERO);
        assert_eq!(s.p99_latency, Duration::ZERO);
    }

    /// `percentile` stays total even when the bucket counts and the
    /// finished total disagree (torn relaxed-atomic snapshot).
    #[test]
    fn percentile_survives_torn_totals() {
        // Total larger than the bucket sum: rank never reached.
        assert_eq!(percentile(&[1, 0, 0], 10, 0.99), Duration::ZERO);
        // Total smaller than the bucket sum: clamps into the buckets.
        assert!(percentile(&[4, 4], 1, 0.5) > Duration::ZERO);
        // Zero total short-circuits.
        assert_eq!(percentile(&[7, 7], 0, 0.5), Duration::ZERO);
    }

    /// One pathological completion must not poison the percentiles
    /// with a ~584-year duration: it saturates to the overflow
    /// sentinel and is counted honestly.
    #[test]
    fn huge_latency_saturates_instead_of_poisoning_p99() {
        let m = Metrics::new();
        // ~115 days: far past the overflow bucket's 2^39 ns lower bound.
        m.record_completion(Duration::from_secs(10_000_000), true);
        let s = m.snapshot();
        assert_eq!(s.latency_overflows, 1);
        assert_eq!(s.p99_latency, Duration::from_nanos(LATENCY_OVERFLOW_NS));
        assert_eq!(s.p50_latency, Duration::from_nanos(LATENCY_OVERFLOW_NS));
        // The sentinel is ~18 minutes, not centuries.
        assert!(s.p99_latency < Duration::from_secs(60 * 60));
        assert!(s.to_string().contains("1 latency overflow(s)"));

        // Normal traffic keeps the overflow count at zero and its
        // percentiles in real buckets.
        let m = Metrics::new();
        m.record_completion(Duration::from_micros(50), true);
        let s = m.snapshot();
        assert_eq!(s.latency_overflows, 0);
        assert!(s.p99_latency < Duration::from_millis(1));
        assert!(!s.to_string().contains("overflow"));
    }

    #[test]
    fn display_is_single_line() {
        let m = Metrics::new();
        m.record_completion(Duration::from_micros(5), true);
        let line = m.snapshot().to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("req/s"));
    }
}
