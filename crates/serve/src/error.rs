use std::fmt;

/// Errors raised while decoding or validating a compiled-model artifact.
///
/// Every variant is a *typed* failure: corrupt bytes (truncation, bit
/// flips, bad headers, inconsistent structure) must surface here and never
/// as a panic.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// The buffer does not start with the `RNNA` magic.
    BadMagic,
    /// The format version is newer than this build understands. Carries
    /// both sides so operators can tell "artifact from the future" apart
    /// from corrupt bytes.
    UnsupportedVersion {
        /// Version stamped in the artifact header.
        found: u32,
        /// Newest version this build reads (it reads every version from
        /// 1 through this one).
        supported: u32,
    },
    /// The buffer ended before a field could be read.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        available: usize,
    },
    /// The payload checksum does not match the trailer.
    ChecksumMismatch {
        /// Checksum recorded in the artifact.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// The bytes decoded but describe an inconsistent model (bad spans,
    /// out-of-range codes, width mismatches, unbalanced residuals, ...).
    Malformed(String),
    /// A format v2 packed-code layout is inconsistent: section directory
    /// offsets out of bounds or out of order, sections not tiling the
    /// code pool, a bit width outside `1..=16`, or non-zero alignment
    /// padding. Kept distinct from [`ArtifactError::Malformed`] so the
    /// analyzer can map it to its own diagnostic code.
    PackedLayout(String),
    /// The in-memory model uses a construct the artifact format cannot
    /// express (raised at compile time, not load time).
    Unsupported(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a RAPIDNN artifact (bad magic)"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported artifact version {found} (this build reads versions 1..={supported})"
                )
            }
            ArtifactError::Truncated { needed, available } => write!(
                f,
                "artifact truncated: needed {needed} bytes, {available} available"
            ),
            ArtifactError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::PackedLayout(msg) => {
                write!(f, "invalid packed-code layout: {msg}")
            }
            ArtifactError::Unsupported(msg) => write!(f, "unsupported model: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// Errors surfaced by the serving runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Artifact encode/decode/validation failure.
    Artifact(ArtifactError),
    /// A request's input does not match the model (wrong feature width).
    InvalidInput(String),
    /// The bounded request queue is at capacity (backpressure signal).
    QueueFull,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// Inference panicked inside a worker thread. The request fails but
    /// the worker survives and keeps serving.
    WorkerPanic(String),
    /// The static analyzer found `error`-severity diagnostics during a
    /// strict load ([`crate::CompiledModel::from_bytes_strict`]) or an
    /// explicit [`crate::CompiledModel::verify`]. The boxed report holds
    /// every finding, not just the first.
    Rejected(Box<rapidnn_analyze::Report>),
    /// Filesystem I/O while saving or loading an artifact.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Artifact(e) => write!(f, "artifact error: {e}"),
            ServeError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::WorkerPanic(msg) => write!(f, "inference panicked: {msg}"),
            ServeError::Rejected(report) => {
                write!(
                    f,
                    "artifact rejected by static analysis: {}",
                    report.summary()
                )
            }
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T, E = ServeError> = std::result::Result<T, E>;
