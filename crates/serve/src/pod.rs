//! Plain-old-data reinterpretation for the zero-copy artifact loader.
//!
//! Format v2 artifacts keep their float section as raw little-endian
//! `f32` bytes at an 8-aligned payload offset, so on little-endian
//! targets the loader can serve straight out of the artifact buffer
//! instead of materializing a `Vec<f32>`. This module owns the two
//! pieces that make that sound:
//!
//! * [`AlignedBytes`] — an immutable byte buffer backed by `Vec<u64>`,
//!   so its first byte is always 8-aligned and any section the format
//!   places at an 8-aligned offset stays aligned for `f32` views;
//! * [`f32s`] — the *checked* cast from bytes to `&[f32]`, which
//!   returns `None` (instead of a misaligned or byte-swapped view) on
//!   any target or offset where the reinterpretation would be wrong.
//!
//! Construction and access share the single [`f32s`] gate: the loader
//! only builds a borrowed float view when the cast succeeds, and falls
//! back to an owned decode otherwise, so big-endian targets stay
//! correct (just not zero-copy).
//!
//! This is the only module in the crate allowed to use `unsafe`; the
//! crate root is `#![deny(unsafe_code)]`.
#![allow(unsafe_code)]

/// An immutable byte buffer whose storage is 8-aligned.
///
/// Holds one copied image of a serialized artifact; the v2 loader keeps
/// it behind an `Arc` and hands out borrowed float/code views into it.
pub(crate) struct AlignedBytes {
    /// Backing words; byte `i` of the buffer is byte `i` of this
    /// allocation (the copy below preserves the byte image exactly,
    /// independent of target endianness).
    words: Vec<u64>,
    /// Logical length in bytes (the tail of the last word is zeroed
    /// padding, never exposed).
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 8-aligned buffer (one `memcpy`-shaped
    /// pass; the only copy the v2 loader performs).
    pub(crate) fn copy_from(bytes: &[u8]) -> AlignedBytes {
        let mut words = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // `from_ne_bytes` keeps the in-memory byte image identical
            // to the source on every endianness.
            words.push(u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            words.push(u64::from_ne_bytes(last));
        }
        AlignedBytes {
            words,
            len: bytes.len(),
        }
    }

    /// The buffer contents. The returned slice's first byte is 8-aligned.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` initialized bytes
        // (`copy_from` allocates `ceil(len / 8)` words), `u64` has no
        // padding and alignment 8 >= 1, and the borrow of `self` keeps
        // the allocation alive for the slice's lifetime.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// Logical length in bytes.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len)
            .finish()
    }
}

/// Reinterprets `bytes` as a slice of `f32`s when — and only when —
/// that view is exactly the decoded values: the length must be a whole
/// number of 4-byte lanes, the pointer 4-aligned, and the target
/// little-endian (the wire format stores little-endian `f32`s, so on a
/// big-endian target a reinterpreted view would be byte-swapped).
///
/// Returns `None` otherwise; callers fall back to an owned decode, so
/// this single gate keeps construction and access in agreement.
pub(crate) fn f32s(bytes: &[u8]) -> Option<&[f32]> {
    if cfg!(target_endian = "big")
        || !bytes.len().is_multiple_of(4)
        || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f32>())
    {
        return None;
    }
    // SAFETY: length and alignment are checked above, `f32` accepts any
    // bit pattern, and the output borrows `bytes` so the backing memory
    // outlives the view. Endianness is checked above, so the
    // reinterpreted lanes equal `f32::from_le_bytes` of each 4-byte
    // group.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_round_trip_any_length() {
        for len in 0..33usize {
            let src: Vec<u8> = (0..len as u8)
                .map(|b| b.wrapping_mul(37).wrapping_add(3))
                .collect();
            let buf = AlignedBytes::copy_from(&src);
            assert_eq!(buf.bytes(), &src[..]);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.bytes().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn f32_view_matches_le_decode() {
        let values = [0.0f32, -1.5, 3.25e7, f32::MIN_POSITIVE];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let buf = AlignedBytes::copy_from(&bytes);
        if cfg!(target_endian = "little") {
            let view = f32s(buf.bytes()).expect("aligned LE view");
            assert_eq!(view, &values[..]);
        } else {
            assert!(f32s(buf.bytes()).is_none());
        }
    }

    #[test]
    fn f32_view_rejects_misalignment_and_ragged_lengths() {
        let buf = AlignedBytes::copy_from(&[0u8; 16]);
        assert!(f32s(&buf.bytes()[1..13]).is_none()); // misaligned start
        assert!(f32s(&buf.bytes()[..10]).is_none()); // not a lane multiple
    }
}
