//! Compiled-model artifacts.
//!
//! [`CompiledModel`] flattens a [`ReinterpretedNetwork`] — nested stages,
//! per-stage codebooks, product tables, activation/encoder LUTs — into two
//! contiguous pools (`floats`, `codes`) plus a linear op program. The flat
//! layout is cache-friendly for serving and trivially serializable: the
//! binary format is a hand-rolled, versioned, checksummed little-endian
//! encoding with no dependencies beyond `std`.
//!
//! # Wire format
//!
//! Both versions share the outer framing — `RNNA` magic, `u32` version,
//! `u64` payload length, payload, FNV-1a 64 checksum of the payload —
//! and the op-table encoding. They differ in how the pools travel:
//!
//! * **v1** stores every float as 4 LE bytes and every code as a wide
//!   2-byte `u16`, inline, length-prefixed.
//! * **v2** (current; see `DESIGN.md` §12) front-loads a fixed header of
//!   nine `u64`s (widths, pool lengths, op/section counts, and the byte
//!   offsets of the float section, packed region, and tail directory),
//!   then the ops, zero padding to the next 8-byte boundary, the raw LE
//!   `f32` float section, per-op code sections bit-packed at
//!   `ceil(log2(codebook_len))` bits each, and finally a tail directory
//!   locating every section. Because the payload begins 8 bytes into a
//!   16-byte outer header, an 8-aligned payload offset is 8-aligned in
//!   the whole buffer, and the loader can borrow the float section (and
//!   read codes through a bounded bit cursor) directly out of one
//!   aligned copy of the artifact — validate-then-borrow instead of
//!   parse-then-copy.
//!
//! [`CompiledModel::from_bytes`] accepts both versions;
//! [`CompiledModel::to_bytes`] emits v2 ([`CompiledModel::to_bytes_v1`]
//! keeps the legacy writer for compatibility tooling and benchmarks).
//!
//! Loading performs *full static validation* (span bounds, code-domain
//! chaining, flow-kind state machine, width tracking), so
//! [`CompiledModel::infer`] never panics on any artifact that decoded
//! successfully — corrupt bytes surface as typed [`ArtifactError`]s.
//!
//! Inference over the flattened program is bit-for-bit identical to
//! [`ReinterpretedNetwork::infer_sample`]: the nearest-representative
//! search, activation lookup, and accumulation order are replicated
//! exactly. The execution itself lives in [`crate::kernels`]:
//! [`CompiledModel::infer`] and [`CompiledModel::infer_batch`] are thin
//! wrappers over a [`BatchRunner`], the zero-allocation batch-major
//! interpreter.

use crate::error::{ArtifactError, Result, ServeError};
use crate::kernels::BatchRunner;
use crate::pod::{self, AlignedBytes};
use rapidnn_core::{ActivationTable, ReinterpretedNetwork, Stage, StageKind};
use rapidnn_nn::Activation;
use std::path::Path;
use std::sync::Arc;

/// File magic: `RNNA` ("RapidNN Artifact").
pub const MAGIC: [u8; 4] = *b"RNNA";
/// Current artifact format version (bit-packed code sections with a
/// tail directory and a zero-copy float section).
pub const FORMAT_VERSION: u32 = 2;
/// The legacy wide-code format, still accepted by
/// [`CompiledModel::from_bytes`] and written by
/// [`CompiledModel::to_bytes_v1`].
const FORMAT_VERSION_V1: u32 = 1;
/// Byte length of the outer framing before the payload (magic, version,
/// payload length). The payload therefore starts 8-aligned inside the
/// buffer, which the v2 zero-copy float view relies on.
const OUTER_HEADER_LEN: usize = 16;
/// Byte length of the fixed v2 payload header (nine `u64` fields).
const V2_HEADER_LEN: usize = 72;
/// Byte length of one v2 tail-directory entry (four `u64` fields).
const V2_DIR_ENTRY_LEN: usize = 32;
/// Upper bound on any single dimension/extent, keeping index arithmetic
/// far away from overflow on 32-bit-and-up targets.
const MAX_EXTENT: u64 = 1 << 31;
/// Most values a codebook may hold: codes are `u16`, so a larger book
/// would make `nearest` silently wrap indices.
const MAX_CODEBOOK_LEN: usize = 1 << 16;

/// A `(start, len)` view into one of the model's pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub(crate) start: usize,
    pub(crate) len: usize,
}

impl Span {
    pub(crate) fn slice<'a, T>(&self, pool: &'a [T]) -> &'a [T] {
        &pool[self.start..self.start + self.len]
    }
}

/// A flattened `w x u` product table inside the float pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableRef {
    pub(crate) offset: usize,
    pub(crate) weight_count: usize,
    pub(crate) input_count: usize,
}

impl TableRef {
    #[inline]
    pub(crate) fn fetch(&self, floats: &[f32], w: u16, x: u16) -> f32 {
        floats[self.offset + w as usize * self.input_count + x as usize]
    }

    /// The table row for weight code `w`: all `u` precomputed products
    /// of that weight against the input codebook. The batch kernels
    /// hoist this lookup out of their row loops, so the inner loop is a
    /// pure `acc[r] += row[x[r]]` gather.
    #[inline]
    pub(crate) fn row<'a>(&self, floats: &'a [f32], w: u16) -> &'a [f32] {
        let start = self.offset + w as usize * self.input_count;
        &floats[start..start + self.input_count]
    }
}

/// Activation step of a neuron op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ActRef {
    /// Exact pass-through (output stage logits).
    Identity,
    /// Exact comparator ReLU.
    Relu,
    /// Nearest-input lookup table (`inputs` sorted, aligned with
    /// `outputs`), both spans into the float pool.
    Lookup { inputs: Span, outputs: Span },
}

impl ActRef {
    /// Mirrors `ActivationTable::lookup` exactly.
    #[inline]
    pub(crate) fn apply(&self, floats: &[f32], y: f32) -> f32 {
        match self {
            ActRef::Identity => y,
            ActRef::Relu => y.max(0.0),
            ActRef::Lookup { inputs, outputs } => {
                let xs = inputs.slice(floats);
                let idx = match xs.binary_search_by(|p| p.total_cmp(&y)) {
                    Ok(i) => i,
                    Err(ins) => {
                        if ins == 0 {
                            0
                        } else if ins >= xs.len() {
                            xs.len() - 1
                        } else if (y - xs[ins - 1]).abs() <= (xs[ins] - y).abs() {
                            ins - 1
                        } else {
                            ins
                        }
                    }
                };
                outputs.slice(floats)[idx]
            }
        }
    }
}

/// Convolution / pooling window geometry, mirroring
/// `rapidnn_tensor::Conv2dGeometry` field-for-field so artifacts do not
/// depend on that type's layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Geom {
    pub(crate) in_channels: usize,
    pub(crate) in_height: usize,
    pub(crate) in_width: usize,
    pub(crate) kernel_h: usize,
    pub(crate) kernel_w: usize,
    pub(crate) stride: usize,
    pub(crate) pad: usize,
    pub(crate) out_height: usize,
    pub(crate) out_width: usize,
}

impl Geom {
    fn from_geometry(g: &rapidnn_tensor::Conv2dGeometry) -> Self {
        Geom {
            in_channels: g.in_channels,
            in_height: g.in_height,
            in_width: g.in_width,
            kernel_h: g.kernel_h,
            kernel_w: g.kernel_w,
            stride: g.stride,
            pad: g.pad,
            out_height: g.out_height,
            out_width: g.out_width,
        }
    }

    pub(crate) fn in_volume(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }

    pub(crate) fn out_pixels(&self) -> usize {
        self.out_height * self.out_width
    }

    pub(crate) fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// One step of the flattened inference program.
///
/// Residual stages are linearized: `ResidualBegin` snapshots the decoded
/// skip values onto a runtime stack, the branch's ops follow inline, and
/// `ResidualEnd` pops the snapshot and joins.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    Dense {
        inputs: usize,
        outputs: usize,
        weight_codes: Span,
        bias: Span,
        table: TableRef,
        act: ActRef,
        encoder: Option<Span>,
    },
    Conv {
        geom: Geom,
        out_channels: usize,
        weight_codes: Span,
        bias: Span,
        tables: Vec<TableRef>,
        zero_code: u16,
        act: ActRef,
        encoder: Option<Span>,
    },
    MaxPool(Geom),
    AvgPool {
        geom: Geom,
        codebook: Span,
    },
    ResidualBegin {
        skip_codebook: Span,
    },
    ResidualEnd {
        encoder: Option<Span>,
    },
}

/// Number of bits v2 packs each code of a section with `rows`
/// addressable codebook entries into: enough to represent `rows - 1`,
/// minimum 1. `rows` is capped at [`MAX_CODEBOOK_LEN`], so the result
/// never exceeds 16.
pub(crate) fn bits_for(rows: usize) -> u32 {
    let top = rows.max(2) - 1;
    // Codes are u16, so 16 bits always suffice even for a (degenerate)
    // table claiming more than 2^16 rows.
    (usize::BITS - top.leading_zeros()).min(16)
}

/// Smallest width that can represent every code in `values` (minimum 1).
fn bits_needed(values: &[u16]) -> u32 {
    bits_for(values.iter().copied().max().unwrap_or(0) as usize + 1)
}

/// The model's float pool: every codebook, product table, LUT, and bias.
///
/// `Owned` is the classic materialized pool (compiler output and v1
/// artifacts); `View` borrows the raw LE float section of a v2 artifact
/// buffer without copying. Construction of a `View` goes through the
/// single [`pod::f32s`] gate, so on targets where the reinterpretation
/// would be wrong (big-endian) the loader falls back to `Owned`.
#[derive(Debug, Clone)]
pub(crate) enum FloatPool {
    /// Materialized values.
    Owned(Vec<f32>),
    /// Borrowed view over an aligned artifact buffer.
    View {
        /// The artifact image the floats live in.
        buf: Arc<AlignedBytes>,
        /// Absolute byte offset of the float section (4-aligned).
        byte_off: usize,
        /// Number of `f32` values.
        len: usize,
    },
}

impl FloatPool {
    pub(crate) fn as_slice(&self) -> &[f32] {
        match self {
            FloatPool::Owned(v) => v,
            FloatPool::View { buf, byte_off, len } => {
                pod::f32s(&buf.bytes()[*byte_off..*byte_off + *len * 4])
                    .expect("View is only constructed after pod::f32s succeeded on these bytes")
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            FloatPool::Owned(v) => v.len(),
            FloatPool::View { len, .. } => *len,
        }
    }
}

impl PartialEq for FloatPool {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// One bit-packed code section of a v2 artifact: `len` codes starting
/// at pool index `start`, packed LSB-first at `width_bits` bits each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PackedSection {
    /// First code-pool index this section holds.
    pub(crate) start: usize,
    /// Number of codes in the section.
    pub(crate) len: usize,
    /// Absolute byte offset of the section's bit stream in the buffer.
    pub(crate) byte_off: usize,
    /// Bits per code, `1..=16`.
    pub(crate) width_bits: u32,
    /// Whether the unused high bits of the section's final byte are
    /// zero. Recorded at decode time; `validate` and the analyzer
    /// reject sections with trailing garbage bits.
    pub(crate) padding_clear: bool,
}

impl PackedSection {
    /// Bytes the section's bit stream occupies.
    fn byte_len(&self) -> usize {
        packed_byte_len(self.len, self.width_bits)
    }
}

/// Bytes needed to pack `len` codes at `width` bits each.
fn packed_byte_len(len: usize, width: u32) -> usize {
    (len * width as usize).div_ceil(8)
}

/// The model's code pool: every encoded weight.
///
/// `Wide` is the classic materialized `u16` pool; `Packed` keeps the
/// bit-packed sections of a v2 artifact in place and decodes spans on
/// demand through a bounded bit cursor ([`CompiledModel::codes_for`]).
#[derive(Debug, Clone)]
pub(crate) enum CodePool {
    /// Materialized wide codes.
    Wide(Vec<u16>),
    /// Bit-packed sections borrowed from an aligned artifact buffer.
    Packed {
        /// The artifact image the sections live in.
        buf: Arc<AlignedBytes>,
        /// Sections in ascending `start` order, tiling `0..total`.
        sections: Vec<PackedSection>,
        /// Total number of codes across all sections.
        total: usize,
    },
}

impl CodePool {
    pub(crate) fn len(&self) -> usize {
        match self {
            CodePool::Wide(v) => v.len(),
            CodePool::Packed { total, .. } => *total,
        }
    }

    /// Appends the codes of pool range `start..start + len` to `out`,
    /// reading each packed section through a bounded bit cursor. The
    /// range must be in bounds (callers bounds-check first).
    fn decode_range_into(&self, start: usize, len: usize, out: &mut Vec<u16>) {
        self.map_range(start, len, |c| out.push(c));
    }

    /// Streams the codes of pool range `start..start + len` through `f`
    /// in order, reading bit-packed sections directly — no intermediate
    /// wide buffer. The quantized-table materializer consumes v2 code
    /// sections through this exactly once at load time, which is what
    /// lets the integer batch path skip per-op tile decodes entirely.
    /// The range must be in bounds (callers bounds-check first).
    pub(crate) fn map_range(&self, start: usize, len: usize, mut f: impl FnMut(u16)) {
        match self {
            CodePool::Wide(v) => v[start..start + len].iter().for_each(|&c| f(c)),
            CodePool::Packed { buf, sections, .. } => {
                let bytes = buf.bytes();
                let end = start + len;
                // Sections are sorted and tile the pool; find the first
                // one overlapping the range, then walk forward.
                let first = sections.partition_point(|s| s.start + s.len <= start);
                for s in &sections[first..] {
                    if s.start >= end {
                        break;
                    }
                    let lo = start.max(s.start);
                    let hi = end.min(s.start + s.len);
                    let stream = &bytes[s.byte_off..s.byte_off + s.byte_len()];
                    let mask = (1u32 << s.width_bits) - 1;
                    let mut bit = (lo - s.start) * s.width_bits as usize;
                    for _ in lo..hi {
                        f(read_bits(stream, bit, mask));
                        bit += s.width_bits as usize;
                    }
                }
            }
        }
    }

    /// Materializes the whole pool (serialization, analysis, equality —
    /// never the inference hot path, which decodes per-op tiles).
    pub(crate) fn to_wide(&self) -> Vec<u16> {
        match self {
            CodePool::Wide(v) => v.clone(),
            CodePool::Packed { total, .. } => {
                let mut out = Vec::with_capacity(*total);
                self.decode_range_into(0, *total, &mut out);
                out
            }
        }
    }

    /// The packed sections, empty for a wide pool.
    pub(crate) fn sections(&self) -> &[PackedSection] {
        match self {
            CodePool::Wide(_) => &[],
            CodePool::Packed { sections, .. } => sections,
        }
    }
}

impl PartialEq for CodePool {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CodePool::Wide(a), CodePool::Wide(b)) => a == b,
            (a, b) => a.len() == b.len() && a.to_wide() == b.to_wide(),
        }
    }
}

/// Reads the `mask`-wide value at bit offset `bit` of an LSB-first
/// stream. Out-of-stream bytes read as zero, so a read that would run
/// past the final byte (possible only while probing, never for codes a
/// validated section owns) stays in bounds.
#[inline]
fn read_bits(stream: &[u8], bit: usize, mask: u32) -> u16 {
    let byte = bit / 8;
    let shift = bit % 8;
    let mut acc = 0u32;
    for i in 0..3 {
        if let Some(&b) = stream.get(byte + i) {
            acc |= u32::from(b) << (8 * i);
        }
    }
    ((acc >> shift) & mask) as u16
}

/// LSB-first bit packer for one v2 code section.
#[derive(Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn put(&mut self, v: u16, width: u32) {
        self.acc |= u64::from(v) << self.nbits;
        self.nbits += width;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flushes the final partial byte (its unused high bits are zero)
    /// and returns the section's byte stream.
    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

/// A [`ReinterpretedNetwork`] flattened into contiguous pools plus a
/// linear op program — the deployable, serializable serving artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    pub(crate) input_features: usize,
    pub(crate) output_features: usize,
    /// Virtual input-layer codebook (sorted values) in the float pool.
    pub(crate) virtual_encoder: Span,
    pub(crate) ops: Vec<Op>,
    /// All f32 data: codebooks, product tables, LUTs, biases.
    pub(crate) floats: FloatPool,
    /// All encoded weights.
    pub(crate) codes: CodePool,
    /// Set by [`CompiledModel::verify`] when the static analyzer proved
    /// the program error-free; lets [`BatchRunner`] drop its defensive
    /// per-gather index clamps. Never serialized — a loaded artifact
    /// must re-earn it.
    pub(crate) verified: bool,
    /// Materialized integer-kernel state, populated by
    /// [`CompiledModel::quantize`] for analyzer-licensed ops. Never
    /// serialized — like `verified`, a loaded artifact re-earns it.
    pub(crate) quant: Option<crate::quant::QuantState>,
}

impl CompiledModel {
    /// Flattens a reinterpreted network into a compiled model.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Unsupported`] when the network uses a
    /// construct the artifact format cannot express (e.g. an exact
    /// activation other than ReLU/identity), and
    /// [`ArtifactError::Malformed`] if the flattened program fails its own
    /// validation (which would indicate a bug, not bad input).
    pub fn from_reinterpreted(network: &ReinterpretedNetwork) -> Result<Self, ArtifactError> {
        let mut fl = Flattener::default();
        let virtual_encoder = fl.push_floats(network.virtual_encoder().target().values());
        for stage in network.stages() {
            fl.flatten_stage(stage)?;
        }
        let model = CompiledModel {
            input_features: network.input_features(),
            output_features: network.output_features(),
            virtual_encoder,
            ops: fl.ops,
            floats: FloatPool::Owned(fl.floats),
            codes: CodePool::Wide(fl.codes),
            verified: false,
            quant: None,
        };
        model.validate()?;
        Ok(model)
    }

    /// Input feature width.
    pub fn input_features(&self) -> usize {
        self.input_features
    }

    /// The float pool as a contiguous slice — materialized values for
    /// owned pools, a zero-copy borrow of the artifact buffer for v2
    /// views.
    pub(crate) fn float_pool(&self) -> &[f32] {
        self.floats.as_slice()
    }

    /// The codes of `span`, borrowing the wide pool directly or bit-
    /// decoding the packed sections into `scratch` (cleared first). The
    /// span must be in bounds — `validate` establishes that before any
    /// caller reads through this.
    pub(crate) fn codes_for<'a>(&'a self, span: Span, scratch: &'a mut Vec<u16>) -> &'a [u16] {
        match &self.codes {
            CodePool::Wide(v) => span.slice(v),
            packed => {
                scratch.clear();
                packed.decode_range_into(span.start, span.len, scratch);
                scratch
            }
        }
    }

    /// For packed pools, checks that a neuron op's weight-code span is
    /// exactly one packed section and that the section's bit width is
    /// the canonical `ceil(log2(rows))` for the op's product table(s).
    /// No-op for wide pools and empty spans. Mirrored by the analyzer
    /// as `PackedWidthMismatch` (RNA0013).
    fn check_packed_op(&self, i: usize, span: Span, rows: usize) -> Result<(), ArtifactError> {
        let sections = self.codes.sections();
        if sections.is_empty() || span.len == 0 {
            return Ok(());
        }
        let matched = sections
            .binary_search_by_key(&span.start, |s| s.start)
            .ok()
            .map(|idx| sections[idx])
            .filter(|s| s.len == span.len);
        let Some(section) = matched else {
            return Err(malformed(format!(
                "op {i}: weight-code span {}+{} does not match a packed section",
                span.start, span.len
            )));
        };
        let expected = bits_for(rows);
        if section.width_bits != expected {
            return Err(malformed(format!(
                "op {i}: packed section at code {} holds {} bits per code, \
                 {}-row table expects {expected}",
                span.start, section.width_bits, rows
            )));
        }
        Ok(())
    }

    /// A deliberately inconsistent model (built without `validate`) whose
    /// `infer` panics out of bounds — for exercising the engine's worker
    /// panic containment.
    #[cfg(test)]
    pub(crate) fn broken_for_tests() -> CompiledModel {
        CompiledModel {
            input_features: 1,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 2 },
            ops: vec![Op::MaxPool(Geom {
                in_channels: 1,
                in_height: 2,
                in_width: 2,
                kernel_h: 2,
                kernel_w: 2,
                stride: 1,
                pad: 0,
                out_height: 1,
                out_width: 1,
            })],
            floats: FloatPool::Owned(vec![0.0, 1.0]),
            codes: CodePool::Wide(vec![]),
            verified: false,
            quant: None,
        }
    }

    /// Hand-built `layers`-deep dense chain (4 features wide throughout)
    /// for exercising the pipeline shard planner without composing a
    /// network: every interior layer re-encodes through the shared
    /// 4-entry codebook, the last decodes. All layers alias the same
    /// table/bias/weight spans, so the model stays a few dozen floats.
    #[cfg(test)]
    pub(crate) fn deep_for_tests(layers: usize) -> CompiledModel {
        let book = Span { start: 0, len: 4 };
        let table = TableRef {
            offset: 4,
            weight_count: 2,
            input_count: 4,
        };
        let bias = Span { start: 12, len: 4 };
        let weight_codes = Span { start: 0, len: 16 };
        let mut floats = vec![-1.0f32, -0.25, 0.5, 1.0];
        for &w in &[0.5f32, -1.0] {
            floats.extend([-1.0f32, -0.25, 0.5, 1.0].iter().map(|x| w * x));
        }
        floats.extend([0.01, 0.02, 0.03, 0.04]);
        let ops = (0..layers.max(1))
            .map(|l| Op::Dense {
                inputs: 4,
                outputs: 4,
                weight_codes,
                bias,
                table,
                act: ActRef::Relu,
                encoder: (l + 1 < layers.max(1)).then_some(book),
            })
            .collect();
        CompiledModel {
            input_features: 4,
            output_features: 4,
            virtual_encoder: book,
            ops,
            floats: FloatPool::Owned(floats),
            codes: CodePool::Wide(vec![0, 1, 0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 1, 0, 0]),
            verified: false,
            quant: None,
        }
    }

    /// [`deep_for_tests`](Self::deep_for_tests) with a deliberately
    /// inconsistent pool op appended: the healthy dense prefix executes
    /// fine, then the tail op panics out of bounds — for proving that a
    /// panic in a *late* pipeline stage fails only the affected
    /// requests while the stages keep serving.
    #[cfg(test)]
    pub(crate) fn deep_broken_tail_for_tests(layers: usize) -> CompiledModel {
        let mut model = Self::deep_for_tests(layers);
        model.ops.push(Op::MaxPool(Geom {
            in_channels: 4,
            in_height: 4,
            in_width: 4,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            pad: 0,
            out_height: 3,
            out_width: 3,
        }));
        model.output_features = 4 * 9;
        model
    }

    /// Output feature width (class count).
    pub fn output_features(&self) -> usize {
        self.output_features
    }

    /// Number of ops in the flattened program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Total bytes held by the two pools (the dominant footprint):
    /// 4 per float, and 2 per code for wide pools or the bit-packed
    /// section bytes for packed pools.
    pub fn pool_bytes(&self) -> usize {
        let code_bytes = match &self.codes {
            CodePool::Wide(v) => v.len() * 2,
            CodePool::Packed { sections, .. } => sections.iter().map(PackedSection::byte_len).sum(),
        };
        self.floats.len() * 4 + code_bytes
    }

    /// Runs encoded inference on one sample, returning the output logits.
    ///
    /// Bit-for-bit identical to
    /// [`ReinterpretedNetwork::infer_sample`] on the source network.
    /// Each call spins up a fresh single-row [`BatchRunner`]; a serving
    /// loop should hold a runner of its own and call
    /// [`BatchRunner::run`] to amortise the scratch arena across batches.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when `sample` has the wrong
    /// width. Never panics on a validated model.
    pub fn infer(&self, sample: &[f32]) -> Result<Vec<f32>> {
        if sample.len() != self.input_features {
            return Err(ServeError::InvalidInput(format!(
                "sample has {} features, expected {}",
                sample.len(),
                self.input_features
            )));
        }
        let mut out = Vec::with_capacity(self.output_features);
        BatchRunner::new().run(self, sample, &mut out)?;
        Ok(out)
    }

    /// Runs inference over `batch x features` row-major inputs.
    ///
    /// The whole batch executes through one [`BatchRunner`] pass — each
    /// op runs once over all rows — with outputs bit-for-bit identical
    /// to calling [`CompiledModel::infer`] per row.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when the input length is not a
    /// multiple of the model's feature width.
    pub fn infer_batch(&self, inputs: &[f32]) -> Result<Vec<Vec<f32>>> {
        let mut out = Vec::new();
        BatchRunner::new().run(self, inputs, &mut out)?;
        Ok(out
            .chunks(self.output_features)
            .map(<[f32]>::to_vec)
            .collect())
    }

    // ------------------------------------------------------------------
    // Serialization
    // ------------------------------------------------------------------

    /// Serializes the model in the current (v2) format: `RNNA` magic,
    /// format version, payload length, payload, FNV-1a 64 checksum —
    /// all little-endian. The payload carries the float pool as raw LE
    /// `f32` bytes at an 8-aligned offset and the code pool as per-op
    /// bit-packed sections located by a tail directory, so a loader can
    /// borrow both without materializing them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let floats = self.float_pool();
        let codes = self.codes.to_wide();
        let sections = self.plan_sections(&codes);

        // Ops first (variable length), so the header can record where
        // the aligned float section starts.
        let mut ops_bytes = Vec::new();
        write_span(&mut ops_bytes, self.virtual_encoder);
        for op in &self.ops {
            write_op(&mut ops_bytes, op);
        }
        let ops_end = V2_HEADER_LEN + ops_bytes.len();
        let float_byte_off = ops_end.next_multiple_of(8);
        let packed_byte_off = float_byte_off + floats.len() * 4;

        let mut streams: Vec<Vec<u8>> = Vec::with_capacity(sections.len());
        for &(start, len, width) in &sections {
            let mut w = BitWriter::default();
            for &c in &codes[start..start + len] {
                w.put(c, width);
            }
            streams.push(w.finish());
        }
        let packed_len: usize = streams.iter().map(Vec::len).sum();
        let dir_byte_off = packed_byte_off + packed_len;

        let payload_len = dir_byte_off + sections.len() * V2_DIR_ENTRY_LEN;
        let mut payload = Vec::with_capacity(payload_len);
        for v in [
            self.input_features as u64,
            self.output_features as u64,
            floats.len() as u64,
            codes.len() as u64,
            self.ops.len() as u64,
            sections.len() as u64,
            float_byte_off as u64,
            packed_byte_off as u64,
            dir_byte_off as u64,
        ] {
            write_u64(&mut payload, v);
        }
        payload.extend_from_slice(&ops_bytes);
        payload.resize(float_byte_off, 0); // alignment padding, must be zero
        for &f in floats {
            payload.extend_from_slice(&f.to_le_bytes());
        }
        for stream in &streams {
            payload.extend_from_slice(stream);
        }
        let mut byte_off = packed_byte_off;
        for (&(start, len, width), stream) in sections.iter().zip(&streams) {
            write_u64(&mut payload, start as u64);
            write_u64(&mut payload, len as u64);
            write_u64(&mut payload, byte_off as u64);
            write_u64(&mut payload, u64::from(width));
            byte_off += stream.len();
        }
        debug_assert_eq!(payload.len(), payload_len);

        frame(FORMAT_VERSION, payload)
    }

    /// Serializes the model in the legacy v1 format (wide `u16` codes,
    /// length-prefixed inline pools). Kept so compatibility tests and
    /// benchmarks can produce v1 artifacts; [`Self::from_bytes`] accepts
    /// both versions.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_u64(&mut payload, self.input_features as u64);
        write_u64(&mut payload, self.output_features as u64);
        write_u64(&mut payload, self.floats.len() as u64);
        for &f in self.float_pool() {
            payload.extend_from_slice(&f.to_le_bytes());
        }
        write_u64(&mut payload, self.codes.len() as u64);
        for c in self.codes.to_wide() {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        write_span(&mut payload, self.virtual_encoder);
        write_u64(&mut payload, self.ops.len() as u64);
        for op in &self.ops {
            write_op(&mut payload, op);
        }
        frame(FORMAT_VERSION_V1, payload)
    }

    /// Plans the v2 code sections as `(start, len, width_bits)` triples
    /// tiling `0..codes.len()` in ascending order.
    ///
    /// Sections come from the ops' weight-code spans (the flattener
    /// lays codes out in op order, so for compiler-built models they
    /// tile the pool exactly); each op section is packed at
    /// `ceil(log2(table rows))` bits. Code ranges no op claims — which
    /// only hand-built or malformed models have — become filler
    /// sections, and every width is widened if needed to hold the
    /// largest value actually present, so serialization round-trips the
    /// pool bit-for-bit even for models `validate` will reject.
    fn plan_sections(&self, codes: &[u16]) -> Vec<(usize, usize, u32)> {
        let total = codes.len();
        let mut claims: Vec<(Span, u32)> = Vec::new();
        for op in &self.ops {
            let claim = match op {
                Op::Dense {
                    weight_codes,
                    table,
                    ..
                } => Some((*weight_codes, bits_for(table.weight_count))),
                Op::Conv {
                    weight_codes,
                    tables,
                    ..
                } => {
                    let rows = tables.iter().map(|t| t.weight_count).max().unwrap_or(0);
                    Some((*weight_codes, bits_for(rows)))
                }
                _ => None,
            };
            if let Some((span, width)) = claim {
                if span.len > 0 && span.start < total && span.start + span.len <= total {
                    claims.push((span, width));
                }
            }
        }
        claims.sort_by_key(|(s, _)| s.start);

        let mut sections = Vec::new();
        let mut push = |start: usize, len: usize, width: u32| {
            let width = width.max(bits_needed(&codes[start..start + len]));
            sections.push((start, len, width));
        };
        let mut cursor = 0usize;
        for (span, width) in claims {
            if span.start < cursor {
                continue; // overlap: the earlier section already covers it
            }
            if span.start > cursor {
                push(cursor, span.start - cursor, 1);
            }
            push(span.start, span.len, width);
            cursor = span.start + span.len;
        }
        if cursor < total {
            push(cursor, total - cursor, 1);
        }
        sections
    }

    /// Decodes and fully validates an artifact.
    ///
    /// # Errors
    ///
    /// Any corruption surfaces as a typed [`ArtifactError`] — bad magic,
    /// unknown version, truncation, checksum mismatch, or structural
    /// inconsistency. This function never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let model = Self::decode(bytes)?;
        model.validate()?;
        Ok(model)
    }

    /// Decodes the byte framing (magic, version, checksum, payload) into
    /// a structurally unvalidated model. Callers must `validate()` (the
    /// classic path) or run the static analyzer (`lint_bytes`) before
    /// inference.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION_V1 && version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let payload_len = r.usize()?;
        let payload = r.take(payload_len)?;
        let stored = r.u64()?;
        if r.remaining() != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after checksum",
                r.remaining()
            )));
        }
        let actual = fnv1a64(payload);
        if stored != actual {
            return Err(ArtifactError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }

        if version == FORMAT_VERSION_V1 {
            Self::decode_v1(payload)
        } else {
            Self::decode_v2(bytes, payload_len)
        }
    }

    /// Decodes a v1 payload: length-prefixed inline pools, parse-then-
    /// copy.
    fn decode_v1(payload: &[u8]) -> Result<Self, ArtifactError> {
        let mut p = Reader::new(payload);
        let input_features = p.extent()?;
        let output_features = p.extent()?;
        let nfloats = p.extent()?;
        // Bound the allocation by the bytes actually present.
        p.ensure(nfloats.checked_mul(4).ok_or_else(too_large)?)?;
        let mut floats = Vec::with_capacity(nfloats);
        for _ in 0..nfloats {
            floats.push(p.f32()?);
        }
        let ncodes = p.extent()?;
        p.ensure(ncodes.checked_mul(2).ok_or_else(too_large)?)?;
        let mut codes = Vec::with_capacity(ncodes);
        for _ in 0..ncodes {
            codes.push(p.u16()?);
        }
        let virtual_encoder = read_span(&mut p)?;
        let nops = p.extent()?;
        // Each op costs at least its 1-byte tag.
        p.ensure(nops)?;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(read_op(&mut p)?);
        }
        if p.remaining() != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes in payload",
                p.remaining()
            )));
        }

        Ok(CompiledModel {
            input_features,
            output_features,
            virtual_encoder,
            ops,
            floats: FloatPool::Owned(floats),
            codes: CodePool::Wide(codes),
            verified: false,
            quant: None,
        })
    }

    /// Decodes a v2 artifact: copies the whole image into one aligned
    /// buffer (the only copy), parses the fixed header and ops, checks
    /// the section directory's framing invariants, and builds borrowed
    /// pool views over the buffer — validate-then-borrow.
    fn decode_v2(bytes: &[u8], payload_len: usize) -> Result<Self, ArtifactError> {
        let invalid = |msg: String| ArtifactError::PackedLayout(msg);
        let buf = Arc::new(AlignedBytes::copy_from(bytes));
        let payload = &buf.bytes()[OUTER_HEADER_LEN..OUTER_HEADER_LEN + payload_len];

        let mut p = Reader::new(payload);
        let input_features = p.extent()?;
        let output_features = p.extent()?;
        let nfloats = p.extent()?;
        let ncodes = p.extent()?;
        let nops = p.extent()?;
        let nsections = p.extent()?;
        let float_byte_off = p.usize()?;
        let packed_byte_off = p.usize()?;
        let dir_byte_off = p.usize()?;

        let virtual_encoder = read_span(&mut p)?;
        // Each op costs at least its 1-byte tag, and all ops must end
        // before the float section.
        p.ensure(nops)?;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(read_op(&mut p)?);
        }
        let ops_end = p.pos();

        // Framing invariants: the four regions (ops + padding, floats,
        // packed streams, directory) must chain exactly through the
        // recorded offsets and fill the payload.
        if float_byte_off != ops_end.next_multiple_of(8) {
            return Err(invalid(format!(
                "float section at byte {float_byte_off}, ops end (8-aligned) at {}",
                ops_end.next_multiple_of(8)
            )));
        }
        let float_end = nfloats
            .checked_mul(4)
            .and_then(|n| float_byte_off.checked_add(n))
            .ok_or_else(too_large)?;
        if packed_byte_off != float_end {
            return Err(invalid(format!(
                "packed region at byte {packed_byte_off}, float section ends at {float_end}"
            )));
        }
        let dir_len = nsections
            .checked_mul(V2_DIR_ENTRY_LEN)
            .ok_or_else(too_large)?;
        if packed_byte_off > dir_byte_off || dir_byte_off.checked_add(dir_len) != Some(payload_len)
        {
            return Err(invalid(format!(
                "directory of {nsections} sections at byte {dir_byte_off} does not \
                 end the {payload_len}-byte payload"
            )));
        }
        if payload[ops_end..float_byte_off].iter().any(|&b| b != 0) {
            return Err(invalid("non-zero alignment padding after ops".into()));
        }

        // The tail directory: sections must tile 0..ncodes in order,
        // with byte streams chaining exactly through the packed region.
        let mut d = Reader::new(&payload[dir_byte_off..]);
        let mut sections = Vec::with_capacity(nsections);
        let mut code_cursor = 0usize;
        let mut byte_cursor = packed_byte_off;
        for i in 0..nsections {
            let start = d.usize()?;
            let len = d.extent()?;
            let byte_off = d.usize()?;
            let width_bits = u32::try_from(d.u64()?).map_err(|_| too_large())?;
            if len == 0 {
                return Err(invalid(format!("section {i} is empty")));
            }
            if !(1..=16).contains(&width_bits) {
                return Err(invalid(format!(
                    "section {i} packs {width_bits} bits per code, expected 1..=16"
                )));
            }
            if start != code_cursor {
                return Err(invalid(format!(
                    "section {i} starts at code {start}, tiling cursor is {code_cursor}"
                )));
            }
            if byte_off != byte_cursor {
                return Err(invalid(format!(
                    "section {i} stream at byte {byte_off}, chain cursor is {byte_cursor}"
                )));
            }
            let byte_len = packed_byte_len(len, width_bits);
            code_cursor = start.checked_add(len).ok_or_else(too_large)?;
            byte_cursor = byte_cursor.checked_add(byte_len).ok_or_else(too_large)?;
            if byte_cursor > dir_byte_off {
                return Err(invalid(format!(
                    "section {i} stream overruns the directory at byte {dir_byte_off}"
                )));
            }
            // Unused high bits of the final byte must be zero; recorded
            // here, enforced by `validate` and the analyzer so the
            // mutation invariant ("flagged or infers without panic")
            // has no third outcome.
            let tail_bits = (len * width_bits as usize) % 8;
            let padding_clear =
                tail_bits == 0 || payload[byte_off + byte_len - 1] >> tail_bits == 0;
            sections.push(PackedSection {
                start,
                len,
                // Absolute offset in the artifact buffer.
                byte_off: OUTER_HEADER_LEN + byte_off,
                width_bits,
                padding_clear,
            });
        }
        if code_cursor != ncodes {
            return Err(invalid(format!(
                "sections cover {code_cursor} codes, header says {ncodes}"
            )));
        }
        if byte_cursor != dir_byte_off {
            return Err(invalid(format!(
                "packed streams end at byte {byte_cursor}, directory starts at {dir_byte_off}"
            )));
        }

        let float_bytes =
            &buf.bytes()[OUTER_HEADER_LEN + float_byte_off..OUTER_HEADER_LEN + packed_byte_off];
        let floats = match pod::f32s(float_bytes) {
            // Zero-copy on little-endian targets: the section *is* the
            // decoded values.
            Some(_) => FloatPool::View {
                buf: Arc::clone(&buf),
                byte_off: OUTER_HEADER_LEN + float_byte_off,
                len: nfloats,
            },
            // Big-endian (or a format drift that broke alignment):
            // decode each lane instead of borrowing.
            None => FloatPool::Owned(
                float_bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte lane")))
                    .collect(),
            ),
        };
        let codes = CodePool::Packed {
            buf,
            sections,
            total: ncodes,
        };

        Ok(CompiledModel {
            input_features,
            output_features,
            virtual_encoder,
            ops,
            floats,
            codes,
            verified: false,
            quant: None,
        })
    }

    /// Decodes an artifact and requires a clean static-analysis report
    /// instead of (in addition to) classic validation.
    ///
    /// The analyzer subsumes every [`validate`](Self::from_bytes) check
    /// and adds finiteness and datapath analysis on top, so a model
    /// loaded this way is [`verified`](Self::is_verified): the batch
    /// kernels skip their defensive per-gather index clamps.
    ///
    /// # Errors
    ///
    /// Byte-level corruption surfaces as [`ServeError::Artifact`]; a
    /// structurally decodable model with analysis errors surfaces as
    /// [`ServeError::Rejected`] carrying the full diagnostic report.
    pub fn from_bytes_strict(bytes: &[u8]) -> Result<Self> {
        let mut model = Self::decode(bytes)?;
        model.verify()?;
        Ok(model)
    }

    /// Reads an artifact from `path` via [`Self::from_bytes_strict`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, [`ArtifactError`]s, and
    /// [`ServeError::Rejected`].
    pub fn load_strict(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes_strict(&bytes)
    }

    /// Writes the serialized artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and [`ArtifactError`]s.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(&bytes)?)
    }

    // ------------------------------------------------------------------
    // Static analysis
    // ------------------------------------------------------------------

    /// Lowers the model into the analyzer's IR, borrowing both pools.
    pub(crate) fn to_program(&self) -> rapidnn_analyze::Program<'_> {
        use rapidnn_analyze as a;
        use std::borrow::Cow;

        let span = |s: Span| a::Span {
            start: s.start,
            len: s.len,
        };
        let table = |t: &TableRef| a::TableRef {
            offset: t.offset,
            weight_count: t.weight_count,
            input_count: t.input_count,
        };
        let act = |x: &ActRef| match x {
            ActRef::Identity => a::Act::Identity,
            ActRef::Relu => a::Act::Relu,
            ActRef::Lookup { inputs, outputs } => a::Act::Lookup {
                inputs: span(*inputs),
                outputs: span(*outputs),
            },
        };
        let geom = |g: &Geom| a::Geom {
            in_channels: g.in_channels,
            in_height: g.in_height,
            in_width: g.in_width,
            kernel_h: g.kernel_h,
            kernel_w: g.kernel_w,
            stride: g.stride,
            pad: g.pad,
            out_height: g.out_height,
            out_width: g.out_width,
        };
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table: t,
                    act: x,
                    encoder,
                } => a::Op::Dense {
                    inputs: *inputs,
                    outputs: *outputs,
                    weight_codes: span(*weight_codes),
                    bias: span(*bias),
                    table: table(t),
                    act: act(x),
                    encoder: encoder.map(span),
                },
                Op::Conv {
                    geom: g,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act: x,
                    encoder,
                } => a::Op::Conv {
                    geom: geom(g),
                    out_channels: *out_channels,
                    weight_codes: span(*weight_codes),
                    bias: span(*bias),
                    tables: tables.iter().map(table).collect(),
                    zero_code: *zero_code,
                    act: act(x),
                    encoder: encoder.map(span),
                },
                Op::MaxPool(g) => a::Op::MaxPool(geom(g)),
                Op::AvgPool { geom: g, codebook } => a::Op::AvgPool {
                    geom: geom(g),
                    codebook: span(*codebook),
                },
                Op::ResidualBegin { skip_codebook } => a::Op::ResidualBegin {
                    skip_codebook: span(*skip_codebook),
                },
                Op::ResidualEnd { encoder } => a::Op::ResidualEnd {
                    encoder: encoder.map(span),
                },
            })
            .collect();
        a::Program {
            input_features: self.input_features,
            output_features: self.output_features,
            virtual_encoder: span(self.virtual_encoder),
            ops,
            floats: Cow::Borrowed(self.float_pool()),
            codes: match &self.codes {
                CodePool::Wide(v) => Cow::Borrowed(&v[..]),
                packed => Cow::Owned(packed.to_wide()),
            },
            packed: self
                .codes
                .sections()
                .iter()
                .map(|s| a::PackedSection {
                    code_start: s.start,
                    code_len: s.len,
                    width_bits: s.width_bits,
                    padding_clear: s.padding_clear,
                })
                .collect(),
        }
    }

    /// Builds a model from the analyzer's program IR — the inverse of
    /// the lowering behind [`Self::analyze`], used to realize optimized
    /// programs (and, in tests and benches, hand-built ones) as
    /// servable artifacts. Pools are materialized owned/wide; writing
    /// the model back out re-packs v2 code sections at the width the
    /// (possibly compacted) tables now imply.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] when the program fails the same
    /// structural validation every decoded artifact passes.
    pub fn from_program(program: &rapidnn_analyze::Program<'_>) -> Result<Self, ArtifactError> {
        use rapidnn_analyze as a;

        let span = |s: a::Span| Span {
            start: s.start,
            len: s.len,
        };
        let table = |t: &a::TableRef| TableRef {
            offset: t.offset,
            weight_count: t.weight_count,
            input_count: t.input_count,
        };
        let act = |x: &a::Act| match x {
            a::Act::Identity => ActRef::Identity,
            a::Act::Relu => ActRef::Relu,
            a::Act::Lookup { inputs, outputs } => ActRef::Lookup {
                inputs: span(*inputs),
                outputs: span(*outputs),
            },
        };
        let geom = |g: &a::Geom| Geom {
            in_channels: g.in_channels,
            in_height: g.in_height,
            in_width: g.in_width,
            kernel_h: g.kernel_h,
            kernel_w: g.kernel_w,
            stride: g.stride,
            pad: g.pad,
            out_height: g.out_height,
            out_width: g.out_width,
        };
        let ops = program
            .ops
            .iter()
            .map(|op| match op {
                a::Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table: t,
                    act: x,
                    encoder,
                } => Op::Dense {
                    inputs: *inputs,
                    outputs: *outputs,
                    weight_codes: span(*weight_codes),
                    bias: span(*bias),
                    table: table(t),
                    act: act(x),
                    encoder: encoder.map(span),
                },
                a::Op::Conv {
                    geom: g,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act: x,
                    encoder,
                } => Op::Conv {
                    geom: geom(g),
                    out_channels: *out_channels,
                    weight_codes: span(*weight_codes),
                    bias: span(*bias),
                    tables: tables.iter().map(table).collect(),
                    zero_code: *zero_code,
                    act: act(x),
                    encoder: encoder.map(span),
                },
                a::Op::MaxPool(g) => Op::MaxPool(geom(g)),
                a::Op::AvgPool { geom: g, codebook } => Op::AvgPool {
                    geom: geom(g),
                    codebook: span(*codebook),
                },
                a::Op::ResidualBegin { skip_codebook } => Op::ResidualBegin {
                    skip_codebook: span(*skip_codebook),
                },
                a::Op::ResidualEnd { encoder } => Op::ResidualEnd {
                    encoder: encoder.map(span),
                },
            })
            .collect();
        let model = CompiledModel {
            input_features: program.input_features,
            output_features: program.output_features,
            virtual_encoder: span(program.virtual_encoder),
            ops,
            floats: FloatPool::Owned(program.floats.to_vec()),
            codes: CodePool::Wide(program.codes.to_vec()),
            verified: false,
            quant: None,
        };
        model.validate()?;
        Ok(model)
    }

    /// Runs the certified optimizer ([`rapidnn_analyze::optimize`])
    /// over the compiled program and translation-validates the result
    /// before returning it: the rewrite's certificate is re-proven by
    /// [`rapidnn_analyze::validate_certificate`] against both programs,
    /// so a rewrite that cannot be re-proven is never handed back. The
    /// returned model is verified (the validator re-ran the analyzer
    /// over it) and carries no quantization state — callers opt back in
    /// with [`Self::quantize`], exactly as after a strict load.
    ///
    /// Inference is bit-identical to the source model on both the f32
    /// and the int16 path; what changes is the footprint: dead
    /// codebook entries, unreferenced product-table rows, dead columns
    /// and LUT rows are gone, and [`Self::to_bytes`] re-packs v2 code
    /// sections at the narrower width the compacted tables imply.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] carrying the diagnostic report when the
    /// input fails analysis, when the optimized program is structurally
    /// unrealizable, or when the certificate does not validate
    /// (RNA0015/RNA0016/RNA0017).
    pub fn optimize(&self) -> Result<(CompiledModel, rapidnn_analyze::Certificate)> {
        let input = self.to_program();
        let optimized = rapidnn_analyze::optimize(&input).map_err(ServeError::Rejected)?;
        let check = rapidnn_analyze::validate_certificate(
            &input,
            &optimized.program,
            &optimized.certificate,
        );
        if check.has_errors() {
            return Err(ServeError::Rejected(Box::new(check)));
        }
        let mut model = Self::from_program(&optimized.program)?;
        // The validator just re-ran the analyzer over the optimized
        // program with no errors: the model has earned `verified` the
        // same way `verify()` grants it.
        model.verified = true;
        Ok((model, optimized.certificate))
    }

    /// Runs the static analyzer over the compiled program and returns
    /// the full diagnostic report (errors, warnings, and notes) without
    /// changing the model's verified status.
    pub fn analyze(&self) -> rapidnn_analyze::Report {
        rapidnn_analyze::analyze(&self.to_program())
    }

    /// Runs the static analyzer and, if it proves the program free of
    /// errors, marks the model verified so the batch kernels can skip
    /// their defensive per-gather index clamps.
    ///
    /// Warnings and notes do not block verification; they are returned
    /// in the report for the caller to surface.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] carrying the report when it contains at
    /// least one `error` diagnostic.
    pub fn verify(&mut self) -> Result<rapidnn_analyze::Report> {
        let report = self.analyze();
        if report.has_errors() {
            return Err(ServeError::Rejected(Box::new(report)));
        }
        self.verified = true;
        Ok(report)
    }

    /// Whether [`Self::verify`] has proven this model error-free.
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    /// Verifies the model (as [`Self::verify`]) and then materializes
    /// integer kernels for every op the analyzer licenses
    /// ([`rapidnn_analyze::quantize_plan`]): `i16` weight/table tiles,
    /// quantized biases and precomputed finish LUTs, with v2 bit-packed
    /// code sections consumed directly — exactly once, here — so the
    /// integer batch path never decodes weight tiles again.
    ///
    /// Quantization is opt-in: plain loading, [`Self::verify`] and
    /// [`Self::from_bytes_strict`] never enable it, so the f32 path
    /// stays bit-identical unless a caller asks for integers. Ops the
    /// plan refuses stay on the f32 path; [`Self::kernel_path`] reports
    /// the resulting mix.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] carrying the report when static
    /// analysis finds errors (the model is left unchanged).
    pub fn quantize(&mut self) -> Result<rapidnn_analyze::Report> {
        let report = self.verify()?;
        let plan = rapidnn_analyze::quantize_plan(&self.to_program());
        self.quant = Some(crate::quant::QuantState::materialize(self, plan));
        Ok(report)
    }

    /// The quantization plan materialized by [`Self::quantize`], or
    /// `None` for a pure-f32 model.
    pub fn quant_plan(&self) -> Option<&rapidnn_analyze::QuantPlan> {
        self.quant.as_ref().map(|q| &q.plan)
    }

    /// Derives the quantization plan without changing the model: which
    /// ops the analyzer would license for the integer path and why the
    /// rest fall back. Works on unverified (even invalid) models, so
    /// lint tooling can explain artifacts it refuses to serve.
    pub fn quant_plan_preview(&self) -> rapidnn_analyze::QuantPlan {
        rapidnn_analyze::quantize_plan(&self.to_program())
    }

    /// Which kernels serve this model: `"f32"` (no quantization, or
    /// nothing licensed), `"int16"` (every table op licensed), or
    /// `"mixed"`.
    pub fn kernel_path(&self) -> &'static str {
        match &self.quant {
            None => "f32",
            Some(q) => {
                let plan = &q.plan;
                if plan.licensed() == 0 {
                    "f32"
                } else if plan.fallbacks() == 0 {
                    "int16"
                } else {
                    "mixed"
                }
            }
        }
    }

    /// Number of ops running on the integer path (0 unless
    /// [`Self::quantize`] licensed some).
    pub fn licensed_ops(&self) -> usize {
        self.quant.as_ref().map_or(0, |q| q.plan.licensed())
    }

    /// `(inputs, outputs)` of every dense op, in program order — the
    /// shapes an equivalent unquantized GEMM stack would multiply
    /// (used by the benchmark's dense-baseline comparison).
    pub fn dense_shapes(&self) -> Vec<(usize, usize)> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                Op::Dense {
                    inputs, outputs, ..
                } => Some((*inputs, *outputs)),
                _ => None,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Statically checks the whole program so that `infer` can index the
    /// pools without bounds failures: span ranges, weight codes vs table
    /// rows, the Codes/Floats flow state machine, code-domain chaining
    /// (every code producible upstream is in range downstream), and width
    /// tracking through every op.
    fn validate(&self) -> Result<(), ArtifactError> {
        let check_floats = |s: Span| -> Result<(), ArtifactError> {
            let end = s.start.checked_add(s.len).ok_or_else(too_large)?;
            if end > self.floats.len() {
                return Err(malformed(format!(
                    "float span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.floats.len()
                )));
            }
            Ok(())
        };
        let check_codebook = |s: Span| -> Result<(), ArtifactError> {
            check_floats(s)?;
            if s.len == 0 {
                return Err(malformed("empty codebook"));
            }
            if s.len > MAX_CODEBOOK_LEN {
                return Err(malformed(format!(
                    "codebook holds {} values, u16 codes address at most {MAX_CODEBOOK_LEN}",
                    s.len
                )));
            }
            Ok(())
        };
        let check_act = |act: &ActRef| -> Result<(), ArtifactError> {
            if let ActRef::Lookup { inputs, outputs } = act {
                check_floats(*inputs)?;
                check_floats(*outputs)?;
                if inputs.len == 0 || inputs.len != outputs.len {
                    return Err(malformed("activation lookup spans empty or misaligned"));
                }
            }
            Ok(())
        };
        let check_table = |t: &TableRef, domain: usize| -> Result<(), ArtifactError> {
            if t.weight_count == 0 || t.input_count == 0 {
                return Err(malformed("empty product table"));
            }
            let len = t
                .weight_count
                .checked_mul(t.input_count)
                .ok_or_else(too_large)?;
            check_floats(Span {
                start: t.offset,
                len,
            })?;
            if t.input_count < domain {
                return Err(malformed(format!(
                    "product table addresses {} input codes, upstream domain is {domain}",
                    t.input_count
                )));
            }
            Ok(())
        };
        let check_weight_codes = |s: Span, expected: usize| -> Result<(), ArtifactError> {
            let end = s.start.checked_add(s.len).ok_or_else(too_large)?;
            if end > self.codes.len() {
                return Err(malformed(format!(
                    "code span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.codes.len()
                )));
            }
            if s.len != expected {
                return Err(malformed(format!(
                    "weight-code span holds {} codes, expected {expected}",
                    s.len
                )));
            }
            Ok(())
        };

        if self.input_features == 0 {
            return Err(malformed("zero input features"));
        }
        check_codebook(self.virtual_encoder)?;
        // Packed pools: every section must have clean trailing padding;
        // per-op width checks happen in the op walk below. The analyzer
        // mirrors both (RNA0013/RNA0014), preserving the invariant that
        // it rejects everything `validate` rejects.
        for (i, s) in self.codes.sections().iter().enumerate() {
            if !s.padding_clear {
                return Err(malformed(format!(
                    "packed section {i} has non-zero trailing pad bits"
                )));
            }
        }
        // Scratch for bit-decoding packed weight-code spans; borrows the
        // wide pool directly when the codes are not packed.
        let mut scratch: Vec<u16> = Vec::new();

        // Flow state machine: (width, Some(domain) while encoded).
        let mut width = self.input_features;
        let mut domain: Option<usize> = Some(self.virtual_encoder.len);
        // Widths captured by open ResidualBegins.
        let mut residual_widths: Vec<usize> = Vec::new();

        for (i, op) in self.ops.iter().enumerate() {
            let at = |msg: String| malformed(format!("op {i}: {msg}"));
            match op {
                Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table,
                    act,
                    encoder,
                } => {
                    let d = domain.ok_or_else(|| at("dense op on decoded values".into()))?;
                    if *inputs != width {
                        return Err(at(format!(
                            "dense expects {inputs} inputs, flow width is {width}"
                        )));
                    }
                    if *outputs == 0 {
                        return Err(at("dense has zero outputs".into()));
                    }
                    check_table(table, d)?;
                    let expected = inputs.checked_mul(*outputs).ok_or_else(too_large)?;
                    check_weight_codes(*weight_codes, expected)?;
                    self.check_packed_op(i, *weight_codes, table.weight_count)?;
                    if let Some(&bad) = self
                        .codes_for(*weight_codes, &mut scratch)
                        .iter()
                        .find(|&&c| c as usize >= table.weight_count)
                    {
                        return Err(at(format!(
                            "weight code {bad} out of range for {}-row table",
                            table.weight_count
                        )));
                    }
                    if bias.len != *outputs {
                        return Err(at(format!(
                            "bias holds {} values, expected {outputs}",
                            bias.len
                        )));
                    }
                    check_floats(*bias)?;
                    check_act(act)?;
                    if let Some(enc) = encoder {
                        check_codebook(*enc)?;
                        domain = Some(enc.len);
                    } else {
                        domain = None;
                    }
                    width = *outputs;
                }
                Op::Conv {
                    geom,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act,
                    encoder,
                } => {
                    let d = domain.ok_or_else(|| at("conv op on decoded values".into()))?;
                    validate_geom(geom).map_err(&at)?;
                    if geom.in_volume() != width {
                        return Err(at(format!(
                            "conv expects {} inputs, flow width is {width}",
                            geom.in_volume()
                        )));
                    }
                    if *out_channels == 0 || tables.len() != *out_channels {
                        return Err(at(format!(
                            "{} tables for {out_channels} output channels",
                            tables.len()
                        )));
                    }
                    if *zero_code as usize >= d {
                        return Err(at(format!(
                            "zero code {zero_code} out of range for domain {d}"
                        )));
                    }
                    let patch_len = geom.patch_len();
                    let expected = out_channels.checked_mul(patch_len).ok_or_else(too_large)?;
                    check_weight_codes(*weight_codes, expected)?;
                    let max_rows = tables.iter().map(|t| t.weight_count).max().unwrap_or(0);
                    self.check_packed_op(i, *weight_codes, max_rows)?;
                    let wcodes = self.codes_for(*weight_codes, &mut scratch);
                    for (oc, table) in tables.iter().enumerate() {
                        check_table(table, d)?;
                        let row = &wcodes[oc * patch_len..(oc + 1) * patch_len];
                        if let Some(&bad) = row.iter().find(|&&c| c as usize >= table.weight_count)
                        {
                            return Err(at(format!(
                                "channel {oc} weight code {bad} out of range for {}-row table",
                                table.weight_count
                            )));
                        }
                    }
                    if bias.len != *out_channels {
                        return Err(at(format!(
                            "bias holds {} values, expected {out_channels}",
                            bias.len
                        )));
                    }
                    check_floats(*bias)?;
                    check_act(act)?;
                    width = out_channels
                        .checked_mul(geom.out_pixels())
                        .ok_or_else(too_large)?;
                    if width == 0 {
                        return Err(at("conv produces zero outputs".into()));
                    }
                    if let Some(enc) = encoder {
                        check_codebook(*enc)?;
                        domain = Some(enc.len);
                    } else {
                        domain = None;
                    }
                }
                Op::MaxPool(geom) => {
                    validate_geom(geom).map_err(&at)?;
                    if geom.pad != 0 {
                        return Err(at("pool has non-zero padding".into()));
                    }
                    if geom.in_volume() != width {
                        return Err(at(format!(
                            "pool expects {} inputs, flow width is {width}",
                            geom.in_volume()
                        )));
                    }
                    width = geom
                        .in_channels
                        .checked_mul(geom.out_pixels())
                        .ok_or_else(too_large)?;
                }
                Op::AvgPool { geom, codebook } => {
                    validate_geom(geom).map_err(&at)?;
                    if geom.pad != 0 {
                        return Err(at("pool has non-zero padding".into()));
                    }
                    if geom.in_volume() != width {
                        return Err(at(format!(
                            "pool expects {} inputs, flow width is {width}",
                            geom.in_volume()
                        )));
                    }
                    check_codebook(*codebook)?;
                    if let Some(d) = domain {
                        if codebook.len < d {
                            return Err(at(format!(
                                "avg-pool codebook holds {} values, domain is {d}",
                                codebook.len
                            )));
                        }
                        domain = Some(codebook.len);
                    }
                    width = geom
                        .in_channels
                        .checked_mul(geom.out_pixels())
                        .ok_or_else(too_large)?;
                }
                Op::ResidualBegin { skip_codebook } => {
                    let d = domain.ok_or_else(|| at("residual begin on decoded values".into()))?;
                    check_codebook(*skip_codebook)?;
                    if skip_codebook.len < d {
                        return Err(at(format!(
                            "skip codebook holds {} values, domain is {d}",
                            skip_codebook.len
                        )));
                    }
                    residual_widths.push(width);
                }
                Op::ResidualEnd { encoder } => {
                    if domain.is_some() {
                        return Err(at("residual join on encoded values".into()));
                    }
                    let skip_width = residual_widths
                        .pop()
                        .ok_or_else(|| at("residual join without matching begin".into()))?;
                    if skip_width != width {
                        return Err(at(format!(
                            "branch width {width} differs from skip width {skip_width}"
                        )));
                    }
                    if let Some(enc) = encoder {
                        check_codebook(*enc)?;
                        domain = Some(enc.len);
                    }
                }
            }
        }
        if !residual_widths.is_empty() {
            return Err(malformed("unclosed residual begin"));
        }
        if domain.is_some() {
            return Err(malformed("program ends in encoded domain"));
        }
        if width != self.output_features {
            return Err(malformed(format!(
                "program produces {width} outputs, header says {}",
                self.output_features
            )));
        }
        Ok(())
    }
}

/// Nearest-representative search over a sorted codebook, replicating
/// `Codebook::encode` exactly (ties resolve to the smaller value).
/// `validate` caps codebooks at [`MAX_CODEBOOK_LEN`] values, so the
/// returned index always fits a `u16` without wrapping.
///
/// The hot paths use the branch-free equivalent in `kernels`; this
/// binary-search form is the readable reference the unit tests check
/// both against, and the quantized-LUT materializer (`crate::quant`)
/// bakes finish codes through it so integer finishes encode exactly
/// like the scalar path would.
#[inline]
pub(crate) fn nearest(values: &[f32], value: f32) -> u16 {
    let idx = match values.binary_search_by(|probe| probe.total_cmp(&value)) {
        Ok(i) => i,
        Err(insertion) => {
            if insertion == 0 {
                0
            } else if insertion >= values.len() {
                values.len() - 1
            } else {
                let lo = insertion - 1;
                let hi = insertion;
                if (value - values[lo]).abs() <= (values[hi] - value).abs() {
                    lo
                } else {
                    hi
                }
            }
        }
    };
    idx as u16
}

/// Checks a decoded geometry against the same invariants
/// `Conv2dGeometry::new` establishes, including recomputing the output
/// dimensions, plus an extent cap so index arithmetic cannot overflow.
/// Pools read `data[ch*h*w + (oy*stride+kh)*w + ox*stride+kw]` without
/// padding, so the kernel sweep must stay in bounds with `pad = 0`;
/// convolutions handle padding explicitly at runtime.
fn validate_geom(g: &Geom) -> Result<(), String> {
    let dims = [
        g.in_channels,
        g.in_height,
        g.in_width,
        g.kernel_h,
        g.kernel_w,
        g.stride,
    ];
    if dims.contains(&0) {
        return Err("geometry has a zero dimension".into());
    }
    let all = [
        g.in_channels,
        g.in_height,
        g.in_width,
        g.kernel_h,
        g.kernel_w,
        g.stride,
        g.pad,
        g.out_height,
        g.out_width,
    ];
    if all.iter().any(|&d| d as u64 > MAX_EXTENT) {
        return Err("geometry dimension too large".into());
    }
    let padded_h = g.in_height + 2 * g.pad;
    let padded_w = g.in_width + 2 * g.pad;
    if padded_h < g.kernel_h || padded_w < g.kernel_w {
        return Err("kernel larger than padded input".into());
    }
    if g.out_height != (padded_h - g.kernel_h) / g.stride + 1
        || g.out_width != (padded_w - g.kernel_w) / g.stride + 1
    {
        return Err("output dimensions inconsistent with geometry".into());
    }
    // Volumes must fit comfortably.
    let volume = g.in_channels as u64 * g.in_height as u64 * g.in_width as u64;
    let out_volume = g.in_channels as u64 * g.out_height as u64 * g.out_width as u64;
    let patch = g.in_channels as u64 * g.kernel_h as u64 * g.kernel_w as u64;
    if volume > MAX_EXTENT || out_volume > MAX_EXTENT || patch > MAX_EXTENT {
        return Err("geometry volume too large".into());
    }
    Ok(())
}

fn malformed(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Malformed(msg.into())
}

fn too_large() -> ArtifactError {
    ArtifactError::Malformed("size overflow".into())
}

/// Wraps a payload in the outer framing shared by every format version:
/// magic, version, payload length, payload, FNV-1a 64 checksum.
fn frame(version: u32, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(OUTER_HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    write_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    write_u64(&mut out, fnv1a64(&payload));
    out
}

/// FNV-1a 64-bit hash — cheap, dependency-free corruption detection.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

// ----------------------------------------------------------------------
// Binary encoding helpers
// ----------------------------------------------------------------------

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_span(out: &mut Vec<u8>, s: Span) {
    write_u64(out, s.start as u64);
    write_u64(out, s.len as u64);
}

fn write_opt_span(out: &mut Vec<u8>, s: &Option<Span>) {
    match s {
        Some(s) => {
            out.push(1);
            write_span(out, *s);
        }
        None => out.push(0),
    }
}

fn write_table(out: &mut Vec<u8>, t: &TableRef) {
    write_u64(out, t.offset as u64);
    write_u64(out, t.weight_count as u64);
    write_u64(out, t.input_count as u64);
}

fn write_act(out: &mut Vec<u8>, act: &ActRef) {
    match act {
        ActRef::Identity => out.push(0),
        ActRef::Relu => out.push(1),
        ActRef::Lookup { inputs, outputs } => {
            out.push(2);
            write_span(out, *inputs);
            write_span(out, *outputs);
        }
    }
}

fn write_geom(out: &mut Vec<u8>, g: &Geom) {
    for v in [
        g.in_channels,
        g.in_height,
        g.in_width,
        g.kernel_h,
        g.kernel_w,
        g.stride,
        g.pad,
        g.out_height,
        g.out_width,
    ] {
        write_u64(out, v as u64);
    }
}

fn write_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Dense {
            inputs,
            outputs,
            weight_codes,
            bias,
            table,
            act,
            encoder,
        } => {
            out.push(0);
            write_u64(out, *inputs as u64);
            write_u64(out, *outputs as u64);
            write_span(out, *weight_codes);
            write_span(out, *bias);
            write_table(out, table);
            write_act(out, act);
            write_opt_span(out, encoder);
        }
        Op::Conv {
            geom,
            out_channels,
            weight_codes,
            bias,
            tables,
            zero_code,
            act,
            encoder,
        } => {
            out.push(1);
            write_geom(out, geom);
            write_u64(out, *out_channels as u64);
            write_span(out, *weight_codes);
            write_span(out, *bias);
            write_u64(out, tables.len() as u64);
            for t in tables {
                write_table(out, t);
            }
            out.extend_from_slice(&zero_code.to_le_bytes());
            write_act(out, act);
            write_opt_span(out, encoder);
        }
        Op::MaxPool(geom) => {
            out.push(2);
            write_geom(out, geom);
        }
        Op::AvgPool { geom, codebook } => {
            out.push(3);
            write_geom(out, geom);
            write_span(out, *codebook);
        }
        Op::ResidualBegin { skip_codebook } => {
            out.push(4);
            write_span(out, *skip_codebook);
        }
        Op::ResidualEnd { encoder } => {
            out.push(5);
            write_opt_span(out, encoder);
        }
    }
}

/// Little-endian cursor with typed truncation errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn ensure(&self, needed: usize) -> Result<(), ArtifactError> {
        if self.remaining() < needed {
            return Err(ArtifactError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.ensure(n)?;
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_le_bytes(self.u32()?.to_le_bytes()))
    }

    fn usize(&mut self) -> Result<usize, ArtifactError> {
        usize::try_from(self.u64()?).map_err(|_| too_large())
    }

    /// A length/count/dimension field, capped so later arithmetic on it
    /// cannot overflow.
    fn extent(&mut self) -> Result<usize, ArtifactError> {
        let v = self.u64()?;
        if v > MAX_EXTENT {
            return Err(too_large());
        }
        Ok(v as usize)
    }
}

fn read_span(r: &mut Reader<'_>) -> Result<Span, ArtifactError> {
    let start = r.usize()?;
    let len = r.extent()?;
    Ok(Span { start, len })
}

fn read_opt_span(r: &mut Reader<'_>) -> Result<Option<Span>, ArtifactError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_span(r)?)),
        t => Err(malformed(format!("bad option tag {t}"))),
    }
}

fn read_table(r: &mut Reader<'_>) -> Result<TableRef, ArtifactError> {
    Ok(TableRef {
        offset: r.usize()?,
        weight_count: r.extent()?,
        input_count: r.extent()?,
    })
}

fn read_act(r: &mut Reader<'_>) -> Result<ActRef, ArtifactError> {
    match r.u8()? {
        0 => Ok(ActRef::Identity),
        1 => Ok(ActRef::Relu),
        2 => Ok(ActRef::Lookup {
            inputs: read_span(r)?,
            outputs: read_span(r)?,
        }),
        t => Err(malformed(format!("bad activation tag {t}"))),
    }
}

fn read_geom(r: &mut Reader<'_>) -> Result<Geom, ArtifactError> {
    Ok(Geom {
        in_channels: r.extent()?,
        in_height: r.extent()?,
        in_width: r.extent()?,
        kernel_h: r.extent()?,
        kernel_w: r.extent()?,
        stride: r.extent()?,
        pad: r.extent()?,
        out_height: r.extent()?,
        out_width: r.extent()?,
    })
}

fn read_op(r: &mut Reader<'_>) -> Result<Op, ArtifactError> {
    match r.u8()? {
        0 => Ok(Op::Dense {
            inputs: r.extent()?,
            outputs: r.extent()?,
            weight_codes: read_span(r)?,
            bias: read_span(r)?,
            table: read_table(r)?,
            act: read_act(r)?,
            encoder: read_opt_span(r)?,
        }),
        1 => {
            let geom = read_geom(r)?;
            let out_channels = r.extent()?;
            let weight_codes = read_span(r)?;
            let bias = read_span(r)?;
            let ntables = r.extent()?;
            // Each table costs 24 bytes on the wire.
            r.ensure(ntables.checked_mul(24).ok_or_else(too_large)?)?;
            let mut tables = Vec::with_capacity(ntables);
            for _ in 0..ntables {
                tables.push(read_table(r)?);
            }
            Ok(Op::Conv {
                geom,
                out_channels,
                weight_codes,
                bias,
                tables,
                zero_code: r.u16()?,
                act: read_act(r)?,
                encoder: read_opt_span(r)?,
            })
        }
        2 => Ok(Op::MaxPool(read_geom(r)?)),
        3 => Ok(Op::AvgPool {
            geom: read_geom(r)?,
            codebook: read_span(r)?,
        }),
        4 => Ok(Op::ResidualBegin {
            skip_codebook: read_span(r)?,
        }),
        5 => Ok(Op::ResidualEnd {
            encoder: read_opt_span(r)?,
        }),
        t => Err(malformed(format!("bad op tag {t}"))),
    }
}

// ----------------------------------------------------------------------
// Flattening
// ----------------------------------------------------------------------

#[derive(Default)]
struct Flattener {
    floats: Vec<f32>,
    codes: Vec<u16>,
    ops: Vec<Op>,
}

impl Flattener {
    fn push_floats(&mut self, values: &[f32]) -> Span {
        let start = self.floats.len();
        self.floats.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn push_codes(&mut self, values: &[u16]) -> Span {
        let start = self.codes.len();
        self.codes.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn push_table(&mut self, table: &rapidnn_core::ProductTable) -> TableRef {
        let span = self.push_floats(table.products());
        TableRef {
            offset: span.start,
            weight_count: table.weight_count(),
            input_count: table.input_count(),
        }
    }

    fn flatten_act(&mut self, act: &ActivationTable) -> Result<ActRef, ArtifactError> {
        if act.is_exact() {
            return match act.activation() {
                Activation::Relu => Ok(ActRef::Relu),
                Activation::Identity => Ok(ActRef::Identity),
                other => Err(ArtifactError::Unsupported(format!(
                    "exact activation {other:?} has no compiled form"
                ))),
            };
        }
        Ok(ActRef::Lookup {
            inputs: self.push_floats(act.inputs()),
            outputs: self.push_floats(act.outputs()),
        })
    }

    fn flatten_stage(&mut self, stage: &Stage) -> Result<(), ArtifactError> {
        match stage {
            Stage::Neuron(s) => {
                let weight_codes = self.push_codes(s.weight_codes());
                let bias = self.push_floats(s.bias());
                let act = self.flatten_act(s.activation())?;
                let encoder = s.encoder().map(|e| self.push_floats(e.target().values()));
                match *s.kind() {
                    StageKind::Dense { inputs, outputs } => {
                        let table = self.push_table(&s.product_tables()[0]);
                        self.ops.push(Op::Dense {
                            inputs,
                            outputs,
                            weight_codes,
                            bias,
                            table,
                            act,
                            encoder,
                        });
                    }
                    StageKind::Conv {
                        geometry,
                        out_channels,
                    } => {
                        let tables = s
                            .product_tables()
                            .iter()
                            .map(|t| self.push_table(t))
                            .collect();
                        self.ops.push(Op::Conv {
                            geom: Geom::from_geometry(&geometry),
                            out_channels,
                            weight_codes,
                            bias,
                            tables,
                            zero_code: s.zero_code(),
                            act,
                            encoder,
                        });
                    }
                }
            }
            Stage::MaxPool(g) => self.ops.push(Op::MaxPool(Geom::from_geometry(g))),
            Stage::AvgPool { geometry, codebook } => {
                let codebook = self.push_floats(codebook.values());
                self.ops.push(Op::AvgPool {
                    geom: Geom::from_geometry(geometry),
                    codebook,
                });
            }
            Stage::Residual {
                branch,
                input_codebook,
                join_encoder,
            } => {
                let skip_codebook = self.push_floats(input_codebook.values());
                self.ops.push(Op::ResidualBegin { skip_codebook });
                for inner in branch {
                    self.flatten_stage(inner)?;
                }
                let encoder = join_encoder
                    .as_ref()
                    .map(|e| self.push_floats(e.target().values()));
                self.ops.push(Op::ResidualEnd { encoder });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn nearest_matches_codebook_semantics() {
        let values = [-1.25f32, -0.5, 0.2, 0.45];
        assert_eq!(nearest(&values, 1.2), 3);
        assert_eq!(nearest(&values, -9.0), 0);
        assert_eq!(nearest(&values, 0.2), 2);
        assert_eq!(nearest(&values, -0.9), 0);
        assert_eq!(nearest(&values, -0.6), 1);
        // Ties resolve low.
        assert_eq!(nearest(&[0.0, 2.0], 1.0), 0);
    }

    #[test]
    fn padded_pools_fail_validation_instead_of_panicking_in_infer() {
        // 2x2 input, 2x2 kernel, stride 1, pad 1 → 3x3 output: a geometry
        // convolutions accept, but pools index without padding.
        let geom = Geom {
            in_channels: 1,
            in_height: 2,
            in_width: 2,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            pad: 1,
            out_height: 3,
            out_width: 3,
        };
        let ops = [
            Op::MaxPool(geom),
            Op::AvgPool {
                geom,
                codebook: Span { start: 0, len: 2 },
            },
        ];
        for op in ops {
            let model = CompiledModel {
                input_features: 4,
                output_features: 9,
                virtual_encoder: Span { start: 0, len: 2 },
                ops: vec![op],
                floats: FloatPool::Owned(vec![0.0, 1.0]),
                codes: CodePool::Wide(vec![]),
                verified: false,
                quant: None,
            };
            // Must be rejected at decode time; without the pad check this
            // artifact passed validation and `infer` panicked out of
            // bounds inside `pool`.
            assert!(matches!(
                CompiledModel::from_bytes(&model.to_bytes()),
                Err(ArtifactError::Malformed(msg)) if msg.contains("padding")
            ));
        }
    }

    #[test]
    fn oversized_codebooks_are_rejected() {
        let book = |len: usize| CompiledModel {
            input_features: 1,
            output_features: 1,
            virtual_encoder: Span { start: 0, len },
            ops: vec![],
            floats: FloatPool::Owned(vec![0.0; len]),
            codes: CodePool::Wide(vec![]),
            verified: false,
            quant: None,
        };
        // One past the cap: `nearest` would wrap this book's top index to
        // code 0 through the u16 cast.
        assert!(matches!(
            CompiledModel::from_bytes(&book(MAX_CODEBOOK_LEN + 1).to_bytes()),
            Err(ArtifactError::Malformed(msg)) if msg.contains("u16")
        ));
        // Exactly at the cap the length check passes (this program is
        // still malformed, but for ending in the encoded domain).
        assert!(matches!(
            book(MAX_CODEBOOK_LEN).validate(),
            Err(ArtifactError::Malformed(msg)) if !msg.contains("u16")
        ));
    }

    #[test]
    fn reader_reports_truncation() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.u64(),
            Err(ArtifactError::Truncated {
                needed: 8,
                available: 3
            })
        ));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(matches!(
            CompiledModel::from_bytes(b"nope"),
            Err(ArtifactError::BadMagic | ArtifactError::Truncated { .. })
        ));
        assert!(matches!(
            CompiledModel::from_bytes(b"XXXXXXXXXXXXXXXXXXXX"),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn from_bytes_rejects_future_version() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&[]).to_le_bytes());
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn bits_for_matches_ceil_log2() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(MAX_CODEBOOK_LEN), 16);
        assert_eq!(bits_for(MAX_CODEBOOK_LEN + 7), 16);
    }

    #[test]
    fn bit_streams_round_trip_every_width() {
        for width in 1..=16u32 {
            let mask = (1u32 << width) - 1;
            let values: Vec<u16> = (0..41u32)
                .map(|i| (i.wrapping_mul(0x9e37_79b9) & mask) as u16)
                .collect();
            let mut w = BitWriter::default();
            for &v in &values {
                w.put(v, width);
            }
            let stream = w.finish();
            assert_eq!(stream.len(), packed_byte_len(values.len(), width));
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(
                    read_bits(&stream, i * width as usize, mask),
                    v,
                    "width {width}"
                );
            }
        }
    }

    /// The v2 writer's alignment contract: the float section offset is
    /// always a multiple of 8 in the payload, and the payload itself
    /// starts 8 bytes into the outer header — so the float bytes are
    /// 8-aligned in any 8-aligned buffer.
    #[test]
    fn v2_float_section_is_aligned() {
        let model = CompiledModel {
            input_features: 1,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 3 },
            ops: vec![],
            floats: FloatPool::Owned(vec![0.0, 1.0, 2.0]),
            codes: CodePool::Wide(vec![]),
            verified: false,
            quant: None,
        };
        let bytes = model.to_bytes();
        let float_off = u64::from_le_bytes(
            bytes[OUTER_HEADER_LEN + 48..OUTER_HEADER_LEN + 56]
                .try_into()
                .expect("8 bytes"),
        );
        assert_eq!(float_off % 8, 0);
        assert_eq!(OUTER_HEADER_LEN % 8, 0);
    }
}
