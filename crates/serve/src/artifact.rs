//! Compiled-model artifacts.
//!
//! [`CompiledModel`] flattens a [`ReinterpretedNetwork`] — nested stages,
//! per-stage codebooks, product tables, activation/encoder LUTs — into two
//! contiguous pools (`floats`, `codes`) plus a linear op program. The flat
//! layout is cache-friendly for serving and trivially serializable: the
//! binary format is a hand-rolled, versioned, checksummed little-endian
//! encoding with no dependencies beyond `std`.
//!
//! Loading performs *full static validation* (span bounds, code-domain
//! chaining, flow-kind state machine, width tracking), so
//! [`CompiledModel::infer`] never panics on any artifact that decoded
//! successfully — corrupt bytes surface as typed [`ArtifactError`]s.
//!
//! Inference over the flattened program is bit-for-bit identical to
//! [`ReinterpretedNetwork::infer_sample`]: the nearest-representative
//! search, activation lookup, and accumulation order are replicated
//! exactly. The execution itself lives in [`crate::kernels`]:
//! [`CompiledModel::infer`] and [`CompiledModel::infer_batch`] are thin
//! wrappers over a [`BatchRunner`], the zero-allocation batch-major
//! interpreter.

use crate::error::{ArtifactError, Result, ServeError};
use crate::kernels::BatchRunner;
use rapidnn_core::{ActivationTable, ReinterpretedNetwork, Stage, StageKind};
use rapidnn_nn::Activation;
use std::path::Path;

/// File magic: `RNNA` ("RapidNN Artifact").
pub const MAGIC: [u8; 4] = *b"RNNA";
/// Current artifact format version.
pub const FORMAT_VERSION: u32 = 1;
/// Upper bound on any single dimension/extent, keeping index arithmetic
/// far away from overflow on 32-bit-and-up targets.
const MAX_EXTENT: u64 = 1 << 31;
/// Most values a codebook may hold: codes are `u16`, so a larger book
/// would make `nearest` silently wrap indices.
const MAX_CODEBOOK_LEN: usize = 1 << 16;

/// A `(start, len)` view into one of the model's pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Span {
    pub(crate) start: usize,
    pub(crate) len: usize,
}

impl Span {
    pub(crate) fn slice<'a, T>(&self, pool: &'a [T]) -> &'a [T] {
        &pool[self.start..self.start + self.len]
    }
}

/// A flattened `w x u` product table inside the float pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TableRef {
    pub(crate) offset: usize,
    pub(crate) weight_count: usize,
    pub(crate) input_count: usize,
}

impl TableRef {
    #[inline]
    pub(crate) fn fetch(&self, floats: &[f32], w: u16, x: u16) -> f32 {
        floats[self.offset + w as usize * self.input_count + x as usize]
    }

    /// The table row for weight code `w`: all `u` precomputed products
    /// of that weight against the input codebook. The batch kernels
    /// hoist this lookup out of their row loops, so the inner loop is a
    /// pure `acc[r] += row[x[r]]` gather.
    #[inline]
    pub(crate) fn row<'a>(&self, floats: &'a [f32], w: u16) -> &'a [f32] {
        let start = self.offset + w as usize * self.input_count;
        &floats[start..start + self.input_count]
    }
}

/// Activation step of a neuron op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ActRef {
    /// Exact pass-through (output stage logits).
    Identity,
    /// Exact comparator ReLU.
    Relu,
    /// Nearest-input lookup table (`inputs` sorted, aligned with
    /// `outputs`), both spans into the float pool.
    Lookup { inputs: Span, outputs: Span },
}

impl ActRef {
    /// Mirrors `ActivationTable::lookup` exactly.
    #[inline]
    pub(crate) fn apply(&self, floats: &[f32], y: f32) -> f32 {
        match self {
            ActRef::Identity => y,
            ActRef::Relu => y.max(0.0),
            ActRef::Lookup { inputs, outputs } => {
                let xs = inputs.slice(floats);
                let idx = match xs.binary_search_by(|p| p.total_cmp(&y)) {
                    Ok(i) => i,
                    Err(ins) => {
                        if ins == 0 {
                            0
                        } else if ins >= xs.len() {
                            xs.len() - 1
                        } else if (y - xs[ins - 1]).abs() <= (xs[ins] - y).abs() {
                            ins - 1
                        } else {
                            ins
                        }
                    }
                };
                outputs.slice(floats)[idx]
            }
        }
    }
}

/// Convolution / pooling window geometry, mirroring
/// `rapidnn_tensor::Conv2dGeometry` field-for-field so artifacts do not
/// depend on that type's layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Geom {
    pub(crate) in_channels: usize,
    pub(crate) in_height: usize,
    pub(crate) in_width: usize,
    pub(crate) kernel_h: usize,
    pub(crate) kernel_w: usize,
    pub(crate) stride: usize,
    pub(crate) pad: usize,
    pub(crate) out_height: usize,
    pub(crate) out_width: usize,
}

impl Geom {
    fn from_geometry(g: &rapidnn_tensor::Conv2dGeometry) -> Self {
        Geom {
            in_channels: g.in_channels,
            in_height: g.in_height,
            in_width: g.in_width,
            kernel_h: g.kernel_h,
            kernel_w: g.kernel_w,
            stride: g.stride,
            pad: g.pad,
            out_height: g.out_height,
            out_width: g.out_width,
        }
    }

    pub(crate) fn in_volume(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }

    pub(crate) fn out_pixels(&self) -> usize {
        self.out_height * self.out_width
    }

    pub(crate) fn patch_len(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }
}

/// One step of the flattened inference program.
///
/// Residual stages are linearized: `ResidualBegin` snapshots the decoded
/// skip values onto a runtime stack, the branch's ops follow inline, and
/// `ResidualEnd` pops the snapshot and joins.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    Dense {
        inputs: usize,
        outputs: usize,
        weight_codes: Span,
        bias: Span,
        table: TableRef,
        act: ActRef,
        encoder: Option<Span>,
    },
    Conv {
        geom: Geom,
        out_channels: usize,
        weight_codes: Span,
        bias: Span,
        tables: Vec<TableRef>,
        zero_code: u16,
        act: ActRef,
        encoder: Option<Span>,
    },
    MaxPool(Geom),
    AvgPool {
        geom: Geom,
        codebook: Span,
    },
    ResidualBegin {
        skip_codebook: Span,
    },
    ResidualEnd {
        encoder: Option<Span>,
    },
}

/// A [`ReinterpretedNetwork`] flattened into contiguous pools plus a
/// linear op program — the deployable, serializable serving artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    pub(crate) input_features: usize,
    pub(crate) output_features: usize,
    /// Virtual input-layer codebook (sorted values) in the float pool.
    pub(crate) virtual_encoder: Span,
    pub(crate) ops: Vec<Op>,
    /// All f32 data: codebooks, product tables, LUTs, biases.
    pub(crate) floats: Vec<f32>,
    /// All encoded weights.
    pub(crate) codes: Vec<u16>,
    /// Set by [`CompiledModel::verify`] when the static analyzer proved
    /// the program error-free; lets [`BatchRunner`] drop its defensive
    /// per-gather index clamps. Never serialized — a loaded artifact
    /// must re-earn it.
    pub(crate) verified: bool,
}

impl CompiledModel {
    /// Flattens a reinterpreted network into a compiled model.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Unsupported`] when the network uses a
    /// construct the artifact format cannot express (e.g. an exact
    /// activation other than ReLU/identity), and
    /// [`ArtifactError::Malformed`] if the flattened program fails its own
    /// validation (which would indicate a bug, not bad input).
    pub fn from_reinterpreted(network: &ReinterpretedNetwork) -> Result<Self, ArtifactError> {
        let mut fl = Flattener::default();
        let virtual_encoder = fl.push_floats(network.virtual_encoder().target().values());
        for stage in network.stages() {
            fl.flatten_stage(stage)?;
        }
        let model = CompiledModel {
            input_features: network.input_features(),
            output_features: network.output_features(),
            virtual_encoder,
            ops: fl.ops,
            floats: fl.floats,
            codes: fl.codes,
            verified: false,
        };
        model.validate()?;
        Ok(model)
    }

    /// Input feature width.
    pub fn input_features(&self) -> usize {
        self.input_features
    }

    /// A deliberately inconsistent model (built without `validate`) whose
    /// `infer` panics out of bounds — for exercising the engine's worker
    /// panic containment.
    #[cfg(test)]
    pub(crate) fn broken_for_tests() -> CompiledModel {
        CompiledModel {
            input_features: 1,
            output_features: 1,
            virtual_encoder: Span { start: 0, len: 2 },
            ops: vec![Op::MaxPool(Geom {
                in_channels: 1,
                in_height: 2,
                in_width: 2,
                kernel_h: 2,
                kernel_w: 2,
                stride: 1,
                pad: 0,
                out_height: 1,
                out_width: 1,
            })],
            floats: vec![0.0, 1.0],
            codes: vec![],
            verified: false,
        }
    }

    /// Output feature width (class count).
    pub fn output_features(&self) -> usize {
        self.output_features
    }

    /// Number of ops in the flattened program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Total bytes held by the two pools (the dominant footprint).
    pub fn pool_bytes(&self) -> usize {
        self.floats.len() * 4 + self.codes.len() * 2
    }

    /// Runs encoded inference on one sample, returning the output logits.
    ///
    /// Bit-for-bit identical to
    /// [`ReinterpretedNetwork::infer_sample`] on the source network.
    /// Each call spins up a fresh single-row [`BatchRunner`]; a serving
    /// loop should hold a runner of its own and call
    /// [`BatchRunner::run`] to amortise the scratch arena across batches.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when `sample` has the wrong
    /// width. Never panics on a validated model.
    pub fn infer(&self, sample: &[f32]) -> Result<Vec<f32>> {
        if sample.len() != self.input_features {
            return Err(ServeError::InvalidInput(format!(
                "sample has {} features, expected {}",
                sample.len(),
                self.input_features
            )));
        }
        let mut out = Vec::with_capacity(self.output_features);
        BatchRunner::new().run(self, sample, &mut out)?;
        Ok(out)
    }

    /// Runs inference over `batch x features` row-major inputs.
    ///
    /// The whole batch executes through one [`BatchRunner`] pass — each
    /// op runs once over all rows — with outputs bit-for-bit identical
    /// to calling [`CompiledModel::infer`] per row.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when the input length is not a
    /// multiple of the model's feature width.
    pub fn infer_batch(&self, inputs: &[f32]) -> Result<Vec<Vec<f32>>> {
        let mut out = Vec::new();
        BatchRunner::new().run(self, inputs, &mut out)?;
        Ok(out
            .chunks(self.output_features)
            .map(<[f32]>::to_vec)
            .collect())
    }

    // ------------------------------------------------------------------
    // Serialization
    // ------------------------------------------------------------------

    /// Serializes the model: `RNNA` magic, format version, payload length,
    /// payload, FNV-1a 64 checksum — all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_u64(&mut payload, self.input_features as u64);
        write_u64(&mut payload, self.output_features as u64);
        write_u64(&mut payload, self.floats.len() as u64);
        for &f in &self.floats {
            payload.extend_from_slice(&f.to_le_bytes());
        }
        write_u64(&mut payload, self.codes.len() as u64);
        for &c in &self.codes {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        write_span(&mut payload, self.virtual_encoder);
        write_u64(&mut payload, self.ops.len() as u64);
        for op in &self.ops {
            write_op(&mut payload, op);
        }

        let mut out = Vec::with_capacity(4 + 4 + 8 + payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        write_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        write_u64(&mut out, fnv1a64(&payload));
        out
    }

    /// Decodes and fully validates an artifact.
    ///
    /// # Errors
    ///
    /// Any corruption surfaces as a typed [`ArtifactError`] — bad magic,
    /// unknown version, truncation, checksum mismatch, or structural
    /// inconsistency. This function never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let model = Self::decode(bytes)?;
        model.validate()?;
        Ok(model)
    }

    /// Decodes the byte framing (magic, version, checksum, payload) into
    /// a structurally unvalidated model. Callers must `validate()` (the
    /// classic path) or run the static analyzer (`lint_bytes`) before
    /// inference.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let payload_len = r.usize()?;
        let payload = r.take(payload_len)?.to_vec();
        let stored = r.u64()?;
        if r.remaining() != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after checksum",
                r.remaining()
            )));
        }
        let actual = fnv1a64(&payload);
        if stored != actual {
            return Err(ArtifactError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }

        let mut p = Reader::new(&payload);
        let input_features = p.extent()?;
        let output_features = p.extent()?;
        let nfloats = p.extent()?;
        // Bound the allocation by the bytes actually present.
        p.ensure(nfloats.checked_mul(4).ok_or_else(too_large)?)?;
        let mut floats = Vec::with_capacity(nfloats);
        for _ in 0..nfloats {
            floats.push(p.f32()?);
        }
        let ncodes = p.extent()?;
        p.ensure(ncodes.checked_mul(2).ok_or_else(too_large)?)?;
        let mut codes = Vec::with_capacity(ncodes);
        for _ in 0..ncodes {
            codes.push(p.u16()?);
        }
        let virtual_encoder = read_span(&mut p)?;
        let nops = p.extent()?;
        // Each op costs at least its 1-byte tag.
        p.ensure(nops)?;
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(read_op(&mut p)?);
        }
        if p.remaining() != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes in payload",
                p.remaining()
            )));
        }

        Ok(CompiledModel {
            input_features,
            output_features,
            virtual_encoder,
            ops,
            floats,
            codes,
            verified: false,
        })
    }

    /// Decodes an artifact and requires a clean static-analysis report
    /// instead of (in addition to) classic validation.
    ///
    /// The analyzer subsumes every [`validate`](Self::from_bytes) check
    /// and adds finiteness and datapath analysis on top, so a model
    /// loaded this way is [`verified`](Self::is_verified): the batch
    /// kernels skip their defensive per-gather index clamps.
    ///
    /// # Errors
    ///
    /// Byte-level corruption surfaces as [`ServeError::Artifact`]; a
    /// structurally decodable model with analysis errors surfaces as
    /// [`ServeError::Rejected`] carrying the full diagnostic report.
    pub fn from_bytes_strict(bytes: &[u8]) -> Result<Self> {
        let mut model = Self::decode(bytes)?;
        model.verify()?;
        Ok(model)
    }

    /// Reads an artifact from `path` via [`Self::from_bytes_strict`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors, [`ArtifactError`]s, and
    /// [`ServeError::Rejected`].
    pub fn load_strict(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes_strict(&bytes)
    }

    /// Writes the serialized artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors and [`ArtifactError`]s.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(&bytes)?)
    }

    // ------------------------------------------------------------------
    // Static analysis
    // ------------------------------------------------------------------

    /// Lowers the model into the analyzer's IR, borrowing both pools.
    pub(crate) fn to_program(&self) -> rapidnn_analyze::Program<'_> {
        use rapidnn_analyze as a;
        use std::borrow::Cow;

        let span = |s: Span| a::Span {
            start: s.start,
            len: s.len,
        };
        let table = |t: &TableRef| a::TableRef {
            offset: t.offset,
            weight_count: t.weight_count,
            input_count: t.input_count,
        };
        let act = |x: &ActRef| match x {
            ActRef::Identity => a::Act::Identity,
            ActRef::Relu => a::Act::Relu,
            ActRef::Lookup { inputs, outputs } => a::Act::Lookup {
                inputs: span(*inputs),
                outputs: span(*outputs),
            },
        };
        let geom = |g: &Geom| a::Geom {
            in_channels: g.in_channels,
            in_height: g.in_height,
            in_width: g.in_width,
            kernel_h: g.kernel_h,
            kernel_w: g.kernel_w,
            stride: g.stride,
            pad: g.pad,
            out_height: g.out_height,
            out_width: g.out_width,
        };
        let ops = self
            .ops
            .iter()
            .map(|op| match op {
                Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table: t,
                    act: x,
                    encoder,
                } => a::Op::Dense {
                    inputs: *inputs,
                    outputs: *outputs,
                    weight_codes: span(*weight_codes),
                    bias: span(*bias),
                    table: table(t),
                    act: act(x),
                    encoder: encoder.map(span),
                },
                Op::Conv {
                    geom: g,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act: x,
                    encoder,
                } => a::Op::Conv {
                    geom: geom(g),
                    out_channels: *out_channels,
                    weight_codes: span(*weight_codes),
                    bias: span(*bias),
                    tables: tables.iter().map(table).collect(),
                    zero_code: *zero_code,
                    act: act(x),
                    encoder: encoder.map(span),
                },
                Op::MaxPool(g) => a::Op::MaxPool(geom(g)),
                Op::AvgPool { geom: g, codebook } => a::Op::AvgPool {
                    geom: geom(g),
                    codebook: span(*codebook),
                },
                Op::ResidualBegin { skip_codebook } => a::Op::ResidualBegin {
                    skip_codebook: span(*skip_codebook),
                },
                Op::ResidualEnd { encoder } => a::Op::ResidualEnd {
                    encoder: encoder.map(span),
                },
            })
            .collect();
        a::Program {
            input_features: self.input_features,
            output_features: self.output_features,
            virtual_encoder: span(self.virtual_encoder),
            ops,
            floats: Cow::Borrowed(&self.floats),
            codes: Cow::Borrowed(&self.codes),
        }
    }

    /// Runs the static analyzer over the compiled program and returns
    /// the full diagnostic report (errors, warnings, and notes) without
    /// changing the model's verified status.
    pub fn analyze(&self) -> rapidnn_analyze::Report {
        rapidnn_analyze::analyze(&self.to_program())
    }

    /// Runs the static analyzer and, if it proves the program free of
    /// errors, marks the model verified so the batch kernels can skip
    /// their defensive per-gather index clamps.
    ///
    /// Warnings and notes do not block verification; they are returned
    /// in the report for the caller to surface.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] carrying the report when it contains at
    /// least one `error` diagnostic.
    pub fn verify(&mut self) -> Result<rapidnn_analyze::Report> {
        let report = self.analyze();
        if report.has_errors() {
            return Err(ServeError::Rejected(Box::new(report)));
        }
        self.verified = true;
        Ok(report)
    }

    /// Whether [`Self::verify`] has proven this model error-free.
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Statically checks the whole program so that `infer` can index the
    /// pools without bounds failures: span ranges, weight codes vs table
    /// rows, the Codes/Floats flow state machine, code-domain chaining
    /// (every code producible upstream is in range downstream), and width
    /// tracking through every op.
    fn validate(&self) -> Result<(), ArtifactError> {
        let check_floats = |s: Span| -> Result<(), ArtifactError> {
            let end = s.start.checked_add(s.len).ok_or_else(too_large)?;
            if end > self.floats.len() {
                return Err(malformed(format!(
                    "float span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.floats.len()
                )));
            }
            Ok(())
        };
        let check_codebook = |s: Span| -> Result<(), ArtifactError> {
            check_floats(s)?;
            if s.len == 0 {
                return Err(malformed("empty codebook"));
            }
            if s.len > MAX_CODEBOOK_LEN {
                return Err(malformed(format!(
                    "codebook holds {} values, u16 codes address at most {MAX_CODEBOOK_LEN}",
                    s.len
                )));
            }
            Ok(())
        };
        let check_act = |act: &ActRef| -> Result<(), ArtifactError> {
            if let ActRef::Lookup { inputs, outputs } = act {
                check_floats(*inputs)?;
                check_floats(*outputs)?;
                if inputs.len == 0 || inputs.len != outputs.len {
                    return Err(malformed("activation lookup spans empty or misaligned"));
                }
            }
            Ok(())
        };
        let check_table = |t: &TableRef, domain: usize| -> Result<(), ArtifactError> {
            if t.weight_count == 0 || t.input_count == 0 {
                return Err(malformed("empty product table"));
            }
            let len = t
                .weight_count
                .checked_mul(t.input_count)
                .ok_or_else(too_large)?;
            check_floats(Span {
                start: t.offset,
                len,
            })?;
            if t.input_count < domain {
                return Err(malformed(format!(
                    "product table addresses {} input codes, upstream domain is {domain}",
                    t.input_count
                )));
            }
            Ok(())
        };
        let check_weight_codes = |s: Span, expected: usize| -> Result<(), ArtifactError> {
            let end = s.start.checked_add(s.len).ok_or_else(too_large)?;
            if end > self.codes.len() {
                return Err(malformed(format!(
                    "code span {}+{} exceeds pool of {}",
                    s.start,
                    s.len,
                    self.codes.len()
                )));
            }
            if s.len != expected {
                return Err(malformed(format!(
                    "weight-code span holds {} codes, expected {expected}",
                    s.len
                )));
            }
            Ok(())
        };

        if self.input_features == 0 {
            return Err(malformed("zero input features"));
        }
        check_codebook(self.virtual_encoder)?;

        // Flow state machine: (width, Some(domain) while encoded).
        let mut width = self.input_features;
        let mut domain: Option<usize> = Some(self.virtual_encoder.len);
        // Widths captured by open ResidualBegins.
        let mut residual_widths: Vec<usize> = Vec::new();

        for (i, op) in self.ops.iter().enumerate() {
            let at = |msg: String| malformed(format!("op {i}: {msg}"));
            match op {
                Op::Dense {
                    inputs,
                    outputs,
                    weight_codes,
                    bias,
                    table,
                    act,
                    encoder,
                } => {
                    let d = domain.ok_or_else(|| at("dense op on decoded values".into()))?;
                    if *inputs != width {
                        return Err(at(format!(
                            "dense expects {inputs} inputs, flow width is {width}"
                        )));
                    }
                    if *outputs == 0 {
                        return Err(at("dense has zero outputs".into()));
                    }
                    check_table(table, d)?;
                    let expected = inputs.checked_mul(*outputs).ok_or_else(too_large)?;
                    check_weight_codes(*weight_codes, expected)?;
                    if let Some(&bad) = weight_codes
                        .slice(&self.codes)
                        .iter()
                        .find(|&&c| c as usize >= table.weight_count)
                    {
                        return Err(at(format!(
                            "weight code {bad} out of range for {}-row table",
                            table.weight_count
                        )));
                    }
                    if bias.len != *outputs {
                        return Err(at(format!(
                            "bias holds {} values, expected {outputs}",
                            bias.len
                        )));
                    }
                    check_floats(*bias)?;
                    check_act(act)?;
                    if let Some(enc) = encoder {
                        check_codebook(*enc)?;
                        domain = Some(enc.len);
                    } else {
                        domain = None;
                    }
                    width = *outputs;
                }
                Op::Conv {
                    geom,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act,
                    encoder,
                } => {
                    let d = domain.ok_or_else(|| at("conv op on decoded values".into()))?;
                    validate_geom(geom).map_err(&at)?;
                    if geom.in_volume() != width {
                        return Err(at(format!(
                            "conv expects {} inputs, flow width is {width}",
                            geom.in_volume()
                        )));
                    }
                    if *out_channels == 0 || tables.len() != *out_channels {
                        return Err(at(format!(
                            "{} tables for {out_channels} output channels",
                            tables.len()
                        )));
                    }
                    if *zero_code as usize >= d {
                        return Err(at(format!(
                            "zero code {zero_code} out of range for domain {d}"
                        )));
                    }
                    let patch_len = geom.patch_len();
                    let expected = out_channels.checked_mul(patch_len).ok_or_else(too_large)?;
                    check_weight_codes(*weight_codes, expected)?;
                    for (oc, table) in tables.iter().enumerate() {
                        check_table(table, d)?;
                        let row =
                            &weight_codes.slice(&self.codes)[oc * patch_len..(oc + 1) * patch_len];
                        if let Some(&bad) = row.iter().find(|&&c| c as usize >= table.weight_count)
                        {
                            return Err(at(format!(
                                "channel {oc} weight code {bad} out of range for {}-row table",
                                table.weight_count
                            )));
                        }
                    }
                    if bias.len != *out_channels {
                        return Err(at(format!(
                            "bias holds {} values, expected {out_channels}",
                            bias.len
                        )));
                    }
                    check_floats(*bias)?;
                    check_act(act)?;
                    width = out_channels
                        .checked_mul(geom.out_pixels())
                        .ok_or_else(too_large)?;
                    if width == 0 {
                        return Err(at("conv produces zero outputs".into()));
                    }
                    if let Some(enc) = encoder {
                        check_codebook(*enc)?;
                        domain = Some(enc.len);
                    } else {
                        domain = None;
                    }
                }
                Op::MaxPool(geom) => {
                    validate_geom(geom).map_err(&at)?;
                    if geom.pad != 0 {
                        return Err(at("pool has non-zero padding".into()));
                    }
                    if geom.in_volume() != width {
                        return Err(at(format!(
                            "pool expects {} inputs, flow width is {width}",
                            geom.in_volume()
                        )));
                    }
                    width = geom
                        .in_channels
                        .checked_mul(geom.out_pixels())
                        .ok_or_else(too_large)?;
                }
                Op::AvgPool { geom, codebook } => {
                    validate_geom(geom).map_err(&at)?;
                    if geom.pad != 0 {
                        return Err(at("pool has non-zero padding".into()));
                    }
                    if geom.in_volume() != width {
                        return Err(at(format!(
                            "pool expects {} inputs, flow width is {width}",
                            geom.in_volume()
                        )));
                    }
                    check_codebook(*codebook)?;
                    if let Some(d) = domain {
                        if codebook.len < d {
                            return Err(at(format!(
                                "avg-pool codebook holds {} values, domain is {d}",
                                codebook.len
                            )));
                        }
                        domain = Some(codebook.len);
                    }
                    width = geom
                        .in_channels
                        .checked_mul(geom.out_pixels())
                        .ok_or_else(too_large)?;
                }
                Op::ResidualBegin { skip_codebook } => {
                    let d = domain.ok_or_else(|| at("residual begin on decoded values".into()))?;
                    check_codebook(*skip_codebook)?;
                    if skip_codebook.len < d {
                        return Err(at(format!(
                            "skip codebook holds {} values, domain is {d}",
                            skip_codebook.len
                        )));
                    }
                    residual_widths.push(width);
                }
                Op::ResidualEnd { encoder } => {
                    if domain.is_some() {
                        return Err(at("residual join on encoded values".into()));
                    }
                    let skip_width = residual_widths
                        .pop()
                        .ok_or_else(|| at("residual join without matching begin".into()))?;
                    if skip_width != width {
                        return Err(at(format!(
                            "branch width {width} differs from skip width {skip_width}"
                        )));
                    }
                    if let Some(enc) = encoder {
                        check_codebook(*enc)?;
                        domain = Some(enc.len);
                    }
                }
            }
        }
        if !residual_widths.is_empty() {
            return Err(malformed("unclosed residual begin"));
        }
        if domain.is_some() {
            return Err(malformed("program ends in encoded domain"));
        }
        if width != self.output_features {
            return Err(malformed(format!(
                "program produces {width} outputs, header says {}",
                self.output_features
            )));
        }
        Ok(())
    }
}

/// Nearest-representative search over a sorted codebook, replicating
/// `Codebook::encode` exactly (ties resolve to the smaller value).
/// `validate` caps codebooks at [`MAX_CODEBOOK_LEN`] values, so the
/// returned index always fits a `u16` without wrapping.
///
/// The hot paths use the branch-free equivalent in `kernels`; this
/// binary-search form is kept as the readable reference the unit tests
/// check both against.
#[cfg(test)]
#[inline]
pub(crate) fn nearest(values: &[f32], value: f32) -> u16 {
    let idx = match values.binary_search_by(|probe| probe.total_cmp(&value)) {
        Ok(i) => i,
        Err(insertion) => {
            if insertion == 0 {
                0
            } else if insertion >= values.len() {
                values.len() - 1
            } else {
                let lo = insertion - 1;
                let hi = insertion;
                if (value - values[lo]).abs() <= (values[hi] - value).abs() {
                    lo
                } else {
                    hi
                }
            }
        }
    };
    idx as u16
}

/// Checks a decoded geometry against the same invariants
/// `Conv2dGeometry::new` establishes, including recomputing the output
/// dimensions, plus an extent cap so index arithmetic cannot overflow.
/// Pools read `data[ch*h*w + (oy*stride+kh)*w + ox*stride+kw]` without
/// padding, so the kernel sweep must stay in bounds with `pad = 0`;
/// convolutions handle padding explicitly at runtime.
fn validate_geom(g: &Geom) -> Result<(), String> {
    let dims = [
        g.in_channels,
        g.in_height,
        g.in_width,
        g.kernel_h,
        g.kernel_w,
        g.stride,
    ];
    if dims.contains(&0) {
        return Err("geometry has a zero dimension".into());
    }
    let all = [
        g.in_channels,
        g.in_height,
        g.in_width,
        g.kernel_h,
        g.kernel_w,
        g.stride,
        g.pad,
        g.out_height,
        g.out_width,
    ];
    if all.iter().any(|&d| d as u64 > MAX_EXTENT) {
        return Err("geometry dimension too large".into());
    }
    let padded_h = g.in_height + 2 * g.pad;
    let padded_w = g.in_width + 2 * g.pad;
    if padded_h < g.kernel_h || padded_w < g.kernel_w {
        return Err("kernel larger than padded input".into());
    }
    if g.out_height != (padded_h - g.kernel_h) / g.stride + 1
        || g.out_width != (padded_w - g.kernel_w) / g.stride + 1
    {
        return Err("output dimensions inconsistent with geometry".into());
    }
    // Volumes must fit comfortably.
    let volume = g.in_channels as u64 * g.in_height as u64 * g.in_width as u64;
    let out_volume = g.in_channels as u64 * g.out_height as u64 * g.out_width as u64;
    let patch = g.in_channels as u64 * g.kernel_h as u64 * g.kernel_w as u64;
    if volume > MAX_EXTENT || out_volume > MAX_EXTENT || patch > MAX_EXTENT {
        return Err("geometry volume too large".into());
    }
    Ok(())
}

fn malformed(msg: impl Into<String>) -> ArtifactError {
    ArtifactError::Malformed(msg.into())
}

fn too_large() -> ArtifactError {
    ArtifactError::Malformed("size overflow".into())
}

/// FNV-1a 64-bit hash — cheap, dependency-free corruption detection.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

// ----------------------------------------------------------------------
// Binary encoding helpers
// ----------------------------------------------------------------------

fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_span(out: &mut Vec<u8>, s: Span) {
    write_u64(out, s.start as u64);
    write_u64(out, s.len as u64);
}

fn write_opt_span(out: &mut Vec<u8>, s: &Option<Span>) {
    match s {
        Some(s) => {
            out.push(1);
            write_span(out, *s);
        }
        None => out.push(0),
    }
}

fn write_table(out: &mut Vec<u8>, t: &TableRef) {
    write_u64(out, t.offset as u64);
    write_u64(out, t.weight_count as u64);
    write_u64(out, t.input_count as u64);
}

fn write_act(out: &mut Vec<u8>, act: &ActRef) {
    match act {
        ActRef::Identity => out.push(0),
        ActRef::Relu => out.push(1),
        ActRef::Lookup { inputs, outputs } => {
            out.push(2);
            write_span(out, *inputs);
            write_span(out, *outputs);
        }
    }
}

fn write_geom(out: &mut Vec<u8>, g: &Geom) {
    for v in [
        g.in_channels,
        g.in_height,
        g.in_width,
        g.kernel_h,
        g.kernel_w,
        g.stride,
        g.pad,
        g.out_height,
        g.out_width,
    ] {
        write_u64(out, v as u64);
    }
}

fn write_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Dense {
            inputs,
            outputs,
            weight_codes,
            bias,
            table,
            act,
            encoder,
        } => {
            out.push(0);
            write_u64(out, *inputs as u64);
            write_u64(out, *outputs as u64);
            write_span(out, *weight_codes);
            write_span(out, *bias);
            write_table(out, table);
            write_act(out, act);
            write_opt_span(out, encoder);
        }
        Op::Conv {
            geom,
            out_channels,
            weight_codes,
            bias,
            tables,
            zero_code,
            act,
            encoder,
        } => {
            out.push(1);
            write_geom(out, geom);
            write_u64(out, *out_channels as u64);
            write_span(out, *weight_codes);
            write_span(out, *bias);
            write_u64(out, tables.len() as u64);
            for t in tables {
                write_table(out, t);
            }
            out.extend_from_slice(&zero_code.to_le_bytes());
            write_act(out, act);
            write_opt_span(out, encoder);
        }
        Op::MaxPool(geom) => {
            out.push(2);
            write_geom(out, geom);
        }
        Op::AvgPool { geom, codebook } => {
            out.push(3);
            write_geom(out, geom);
            write_span(out, *codebook);
        }
        Op::ResidualBegin { skip_codebook } => {
            out.push(4);
            write_span(out, *skip_codebook);
        }
        Op::ResidualEnd { encoder } => {
            out.push(5);
            write_opt_span(out, encoder);
        }
    }
}

/// Little-endian cursor with typed truncation errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn ensure(&self, needed: usize) -> Result<(), ArtifactError> {
        if self.remaining() < needed {
            return Err(ArtifactError::Truncated {
                needed,
                available: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ArtifactError> {
        self.ensure(n)?;
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ArtifactError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ArtifactError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, ArtifactError> {
        Ok(f32::from_le_bytes(self.u32()?.to_le_bytes()))
    }

    fn usize(&mut self) -> Result<usize, ArtifactError> {
        usize::try_from(self.u64()?).map_err(|_| too_large())
    }

    /// A length/count/dimension field, capped so later arithmetic on it
    /// cannot overflow.
    fn extent(&mut self) -> Result<usize, ArtifactError> {
        let v = self.u64()?;
        if v > MAX_EXTENT {
            return Err(too_large());
        }
        Ok(v as usize)
    }
}

fn read_span(r: &mut Reader<'_>) -> Result<Span, ArtifactError> {
    let start = r.usize()?;
    let len = r.extent()?;
    Ok(Span { start, len })
}

fn read_opt_span(r: &mut Reader<'_>) -> Result<Option<Span>, ArtifactError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_span(r)?)),
        t => Err(malformed(format!("bad option tag {t}"))),
    }
}

fn read_table(r: &mut Reader<'_>) -> Result<TableRef, ArtifactError> {
    Ok(TableRef {
        offset: r.usize()?,
        weight_count: r.extent()?,
        input_count: r.extent()?,
    })
}

fn read_act(r: &mut Reader<'_>) -> Result<ActRef, ArtifactError> {
    match r.u8()? {
        0 => Ok(ActRef::Identity),
        1 => Ok(ActRef::Relu),
        2 => Ok(ActRef::Lookup {
            inputs: read_span(r)?,
            outputs: read_span(r)?,
        }),
        t => Err(malformed(format!("bad activation tag {t}"))),
    }
}

fn read_geom(r: &mut Reader<'_>) -> Result<Geom, ArtifactError> {
    Ok(Geom {
        in_channels: r.extent()?,
        in_height: r.extent()?,
        in_width: r.extent()?,
        kernel_h: r.extent()?,
        kernel_w: r.extent()?,
        stride: r.extent()?,
        pad: r.extent()?,
        out_height: r.extent()?,
        out_width: r.extent()?,
    })
}

fn read_op(r: &mut Reader<'_>) -> Result<Op, ArtifactError> {
    match r.u8()? {
        0 => Ok(Op::Dense {
            inputs: r.extent()?,
            outputs: r.extent()?,
            weight_codes: read_span(r)?,
            bias: read_span(r)?,
            table: read_table(r)?,
            act: read_act(r)?,
            encoder: read_opt_span(r)?,
        }),
        1 => {
            let geom = read_geom(r)?;
            let out_channels = r.extent()?;
            let weight_codes = read_span(r)?;
            let bias = read_span(r)?;
            let ntables = r.extent()?;
            // Each table costs 24 bytes on the wire.
            r.ensure(ntables.checked_mul(24).ok_or_else(too_large)?)?;
            let mut tables = Vec::with_capacity(ntables);
            for _ in 0..ntables {
                tables.push(read_table(r)?);
            }
            Ok(Op::Conv {
                geom,
                out_channels,
                weight_codes,
                bias,
                tables,
                zero_code: r.u16()?,
                act: read_act(r)?,
                encoder: read_opt_span(r)?,
            })
        }
        2 => Ok(Op::MaxPool(read_geom(r)?)),
        3 => Ok(Op::AvgPool {
            geom: read_geom(r)?,
            codebook: read_span(r)?,
        }),
        4 => Ok(Op::ResidualBegin {
            skip_codebook: read_span(r)?,
        }),
        5 => Ok(Op::ResidualEnd {
            encoder: read_opt_span(r)?,
        }),
        t => Err(malformed(format!("bad op tag {t}"))),
    }
}

// ----------------------------------------------------------------------
// Flattening
// ----------------------------------------------------------------------

#[derive(Default)]
struct Flattener {
    floats: Vec<f32>,
    codes: Vec<u16>,
    ops: Vec<Op>,
}

impl Flattener {
    fn push_floats(&mut self, values: &[f32]) -> Span {
        let start = self.floats.len();
        self.floats.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn push_codes(&mut self, values: &[u16]) -> Span {
        let start = self.codes.len();
        self.codes.extend_from_slice(values);
        Span {
            start,
            len: values.len(),
        }
    }

    fn push_table(&mut self, table: &rapidnn_core::ProductTable) -> TableRef {
        let span = self.push_floats(table.products());
        TableRef {
            offset: span.start,
            weight_count: table.weight_count(),
            input_count: table.input_count(),
        }
    }

    fn flatten_act(&mut self, act: &ActivationTable) -> Result<ActRef, ArtifactError> {
        if act.is_exact() {
            return match act.activation() {
                Activation::Relu => Ok(ActRef::Relu),
                Activation::Identity => Ok(ActRef::Identity),
                other => Err(ArtifactError::Unsupported(format!(
                    "exact activation {other:?} has no compiled form"
                ))),
            };
        }
        Ok(ActRef::Lookup {
            inputs: self.push_floats(act.inputs()),
            outputs: self.push_floats(act.outputs()),
        })
    }

    fn flatten_stage(&mut self, stage: &Stage) -> Result<(), ArtifactError> {
        match stage {
            Stage::Neuron(s) => {
                let weight_codes = self.push_codes(s.weight_codes());
                let bias = self.push_floats(s.bias());
                let act = self.flatten_act(s.activation())?;
                let encoder = s.encoder().map(|e| self.push_floats(e.target().values()));
                match *s.kind() {
                    StageKind::Dense { inputs, outputs } => {
                        let table = self.push_table(&s.product_tables()[0]);
                        self.ops.push(Op::Dense {
                            inputs,
                            outputs,
                            weight_codes,
                            bias,
                            table,
                            act,
                            encoder,
                        });
                    }
                    StageKind::Conv {
                        geometry,
                        out_channels,
                    } => {
                        let tables = s
                            .product_tables()
                            .iter()
                            .map(|t| self.push_table(t))
                            .collect();
                        self.ops.push(Op::Conv {
                            geom: Geom::from_geometry(&geometry),
                            out_channels,
                            weight_codes,
                            bias,
                            tables,
                            zero_code: s.zero_code(),
                            act,
                            encoder,
                        });
                    }
                }
            }
            Stage::MaxPool(g) => self.ops.push(Op::MaxPool(Geom::from_geometry(g))),
            Stage::AvgPool { geometry, codebook } => {
                let codebook = self.push_floats(codebook.values());
                self.ops.push(Op::AvgPool {
                    geom: Geom::from_geometry(geometry),
                    codebook,
                });
            }
            Stage::Residual {
                branch,
                input_codebook,
                join_encoder,
            } => {
                let skip_codebook = self.push_floats(input_codebook.values());
                self.ops.push(Op::ResidualBegin { skip_codebook });
                for inner in branch {
                    self.flatten_stage(inner)?;
                }
                let encoder = join_encoder
                    .as_ref()
                    .map(|e| self.push_floats(e.target().values()));
                self.ops.push(Op::ResidualEnd { encoder });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn nearest_matches_codebook_semantics() {
        let values = [-1.25f32, -0.5, 0.2, 0.45];
        assert_eq!(nearest(&values, 1.2), 3);
        assert_eq!(nearest(&values, -9.0), 0);
        assert_eq!(nearest(&values, 0.2), 2);
        assert_eq!(nearest(&values, -0.9), 0);
        assert_eq!(nearest(&values, -0.6), 1);
        // Ties resolve low.
        assert_eq!(nearest(&[0.0, 2.0], 1.0), 0);
    }

    #[test]
    fn padded_pools_fail_validation_instead_of_panicking_in_infer() {
        // 2x2 input, 2x2 kernel, stride 1, pad 1 → 3x3 output: a geometry
        // convolutions accept, but pools index without padding.
        let geom = Geom {
            in_channels: 1,
            in_height: 2,
            in_width: 2,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            pad: 1,
            out_height: 3,
            out_width: 3,
        };
        let ops = [
            Op::MaxPool(geom),
            Op::AvgPool {
                geom,
                codebook: Span { start: 0, len: 2 },
            },
        ];
        for op in ops {
            let model = CompiledModel {
                input_features: 4,
                output_features: 9,
                virtual_encoder: Span { start: 0, len: 2 },
                ops: vec![op],
                floats: vec![0.0, 1.0],
                codes: vec![],
                verified: false,
            };
            // Must be rejected at decode time; without the pad check this
            // artifact passed validation and `infer` panicked out of
            // bounds inside `pool`.
            assert!(matches!(
                CompiledModel::from_bytes(&model.to_bytes()),
                Err(ArtifactError::Malformed(msg)) if msg.contains("padding")
            ));
        }
    }

    #[test]
    fn oversized_codebooks_are_rejected() {
        let book = |len: usize| CompiledModel {
            input_features: 1,
            output_features: 1,
            virtual_encoder: Span { start: 0, len },
            ops: vec![],
            floats: vec![0.0; len],
            codes: vec![],
            verified: false,
        };
        // One past the cap: `nearest` would wrap this book's top index to
        // code 0 through the u16 cast.
        assert!(matches!(
            CompiledModel::from_bytes(&book(MAX_CODEBOOK_LEN + 1).to_bytes()),
            Err(ArtifactError::Malformed(msg)) if msg.contains("u16")
        ));
        // Exactly at the cap the length check passes (this program is
        // still malformed, but for ending in the encoded domain).
        assert!(matches!(
            book(MAX_CODEBOOK_LEN).validate(),
            Err(ArtifactError::Malformed(msg)) if !msg.contains("u16")
        ));
    }

    #[test]
    fn reader_reports_truncation() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.u64(),
            Err(ArtifactError::Truncated {
                needed: 8,
                available: 3
            })
        ));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(matches!(
            CompiledModel::from_bytes(b"nope"),
            Err(ArtifactError::BadMagic | ArtifactError::Truncated { .. })
        ));
        assert!(matches!(
            CompiledModel::from_bytes(b"XXXXXXXXXXXXXXXXXXXX"),
            Err(ArtifactError::BadMagic)
        ));
    }

    #[test]
    fn from_bytes_rejects_future_version() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&[]).to_le_bytes());
        assert!(matches!(
            CompiledModel::from_bytes(&bytes),
            Err(ArtifactError::UnsupportedVersion(99))
        ));
    }
}
