//! Zero-allocation batched inference kernels.
//!
//! [`BatchRunner`] executes a [`CompiledModel`]'s op program *batch-major*:
//! each op runs once per batch over all rows, instead of once per sample.
//! All intermediate state lives in a reusable scratch arena — a ping-pong
//! pair of `codes` buffers, a ping-pong pair of `floats` buffers (each
//! sized `batch × width` for the widest flow the program reaches) and a
//! stack of residual-skip buffers. Buffers are cleared, never dropped,
//! between batches, so once their capacity has grown to the model's
//! high-water mark the steady-state op loop performs **zero heap
//! allocations** per sample.
//!
//! # Memory layout
//!
//! The flow between ops is one flat row-major buffer, `rows × width`, in
//! either the encoded (`u16` codes) or decoded (`f32`) domain. Dense and
//! Conv process the batch in [`LANES`]-row blocks: the accumulators of a
//! block live in a fixed-size local array (registers, not memory) and
//! the weight/tap loop runs innermost, so
//!
//! * the per-sample serial `acc += table[w][x]` chain — the latency
//!   bottleneck of single-sample inference, since every table fits in
//!   cache and the adds cannot overlap — becomes [`LANES`] independent
//!   chains the CPU overlaps;
//! * one weight-code row and one product table stay hot while the block
//!   streams through them, and a block's codes (`LANES` consecutive
//!   rows) stay L1-resident across all output neurons;
//! * the gather index is clamped with `min`, a no-op for valid codes
//!   that the optimiser can prove in-bounds, keeping panic branches out
//!   of the hot loop.
//!
//! Pools, residual joins and encode steps are element-wise or
//! window-local and run as plain batched loops.
//!
//! # Equivalence
//!
//! Results are bit-for-bit identical to per-sample inference (and
//! therefore to `ReinterpretedNetwork::infer_sample`): samples are
//! independent, and for each sample every accumulation, activation
//! lookup and nearest-representative search happens in exactly the
//! order the per-sample path uses. Batching only reorders work *across*
//! samples.

use crate::artifact::{ActRef, CompiledModel, Geom, Op, Span, TableRef};
use crate::error::{ArtifactError, Result, ServeError};
use crate::quant::{QuantFinish, QuantKind, QuantOp};
// The branch-free nearest-representative search originated here and now
// lives in `rapidnn_core::nearest`, shared with the composer's encode
// paths so both sides pay the same cost per encode.
use rapidnn_core::nearest::{load_keys, nearest_index, nearest_sorted, nearest_sorted_block};

/// Domain of the data currently flowing between ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Domain {
    /// Encoded `u16` cluster codes.
    Codes,
    /// Decoded `f32` values.
    Floats,
}

/// Where the flow stands between two ops: which domain it is in, how
/// wide a row is, and (in the encoded domain) which codebook the codes
/// index into. A pipeline stage boundary is exactly one of these — the
/// shard planner derives the entry state of every legal cut point
/// statically, and [`BatchRunner::exec_ops`] resumes execution from it
/// bit-identically to an uncut run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FlowState {
    /// Current flow domain.
    pub(crate) domain: Domain,
    /// Values per row.
    pub(crate) width: usize,
    /// Codebook the current codes index into (`None` when decoded or
    /// unknown); lets a downstream dense op take the factored fast path.
    pub(crate) book: Option<Span>,
}

/// Owned batch buffer handed between pipeline stages. Buffers are
/// swapped in and out of the runner's arena, so a handoff moves one
/// allocation downstream instead of copying `rows × width` values; in
/// steady state each stage keeps recycling the buffers that arrive from
/// upstream and only stage 0 allocates (one codes buffer per
/// micro-batch).
#[derive(Debug)]
pub(crate) enum FlowData {
    /// Encoded flow (`padded × width` codes, row-major).
    Codes(Vec<u16>),
    /// Decoded flow (`padded × width` floats, row-major).
    Floats(Vec<f32>),
}

/// Rows per register-resident accumulator block in the dense/conv
/// gather loops. The constant bound lets the compiler unroll the lane
/// loop completely and keep the whole block in registers.
const LANES: usize = 8;

/// Output neurons processed per pass over a dense block: one code load
/// and clamp feeds this many accumulator blocks. `OBLOCK * LANES`
/// accumulators fill the SSE register file exactly.
///
/// 8 lanes by 2 outputs measured fastest: fewer lanes starve the
/// floating-point add chains, more outputs spill the register file.
const OBLOCK: usize = 2;

// The u64 lane folding in `dense_block_gather` spells out eight lanes.
const _: () = assert!(LANES == 8, "lane folding assumes eight lanes");

/// Reusable scratch arena executing a compiled model's op program over
/// whole batches.
///
/// A runner is plain state — it holds no reference to any model and may
/// be reused across models of different shapes; buffers grow to the
/// largest `batch × width` ever required and are then recycled. For a
/// long-lived serving loop, construct one with [`BatchRunner::for_model`]
/// (which pre-reserves the high-water capacity) and call
/// [`BatchRunner::run`] per batch.
#[derive(Debug, Default)]
pub struct BatchRunner {
    /// Current encoded flow (`rows × width`, row-major).
    codes: Vec<u16>,
    /// Encoded scratch the next op writes into (then swapped in).
    codes_next: Vec<u16>,
    /// Current decoded flow (`rows × width`, row-major).
    floats: Vec<f32>,
    /// Decoded scratch the next op writes into (then swapped in).
    floats_next: Vec<f32>,
    /// Arena of residual-skip snapshots, indexed by nesting depth.
    /// Entries are reused across batches; only `0..depth` are live.
    skips: Vec<Vec<f32>>,
    /// Total-order keys of the codebook currently being encoded
    /// through, recomputed per encode step (see
    /// [`rapidnn_core::nearest::total_key`]).
    keys: Vec<i32>,
    /// Total-order keys of the activation lookup table currently being
    /// applied (alive at the same time as the encoder's `keys`).
    act_keys: Vec<i32>,
    /// Interleaved code tile for one [`LANES`]-row block (see
    /// [`interleave`]).
    tile: Vec<u16>,
    /// Interleaved *decoded* tile for the factored dense fast path (see
    /// [`interleave_decode`]).
    tile_f: Vec<f32>,
    /// Row-major *quantized* input row for the integer Madd fast path
    /// (see [`quantize_row`]).
    tile_q: Vec<i16>,
    /// Recovered per-weight-code factors of the current product table
    /// (see [`factor_table`]).
    wvals: Vec<f32>,
    /// Decoded weight matrix (`outputs × inputs`) for the factored
    /// dense fast path, rebuilt once per op per batch.
    wdec: Vec<f32>,
    /// Decoded weight-code tile for models whose code pool is
    /// bit-packed (format v2): each neuron op's span is unpacked here
    /// once per batch, so the gather loops read the same wide codes
    /// they read for v1 models — bit-for-bit identical results, with
    /// the unpack cost amortized across the whole batch. Wide pools
    /// borrow their codes directly and leave this untouched.
    wcodes: Vec<u16>,
}

impl BatchRunner {
    /// Creates an empty runner; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// Creates a runner with capacity pre-reserved for running `model` on
    /// batches of up to `max_rows` samples, so even the first batch
    /// allocates nothing inside the op loop.
    pub fn for_model(model: &CompiledModel, max_rows: usize) -> Self {
        let mut runner = BatchRunner::new();
        runner.reserve(model, max_rows);
        runner
    }

    /// Grows the scratch arena to the high-water capacity `model` needs
    /// for batches of `max_rows` samples.
    pub fn reserve(&mut self, model: &CompiledModel, max_rows: usize) {
        let plan = plan(model);
        let (max_width, skip_depth) = (plan.max_width, plan.skip_depth);
        self.keys.reserve(plan.max_book);
        self.act_keys.reserve(plan.max_act);
        self.tile.reserve(max_width.saturating_mul(LANES));
        self.tile_f.reserve(max_width.saturating_mul(LANES));
        self.tile_q.reserve(plan.max_tile_q);
        self.wvals.reserve(plan.max_wcount);
        self.wdec.reserve(plan.max_dense);
        self.wcodes.reserve(plan.max_wcodes);
        let cap = max_rows.saturating_mul(max_width);
        self.codes.reserve(cap);
        self.codes_next.reserve(cap);
        self.floats.reserve(cap);
        self.floats_next.reserve(cap);
        while self.skips.len() < skip_depth {
            self.skips.push(Vec::with_capacity(cap));
        }
        for skip in &mut self.skips {
            skip.reserve(cap.saturating_sub(skip.capacity()));
        }
    }

    /// Total bytes currently reserved across the scratch arena
    /// (capacities, not live lengths).
    ///
    /// This is the runner's whole heap footprint, exposed so tests can
    /// pin the high-water accounting — in particular that models whose
    /// table ops all run the integer path stop paying for weight-code
    /// decode tiles, so the arena no longer scales with the artifact's
    /// code-section size.
    pub fn scratch_bytes(&self) -> usize {
        use std::mem::size_of;
        self.codes.capacity() * size_of::<u16>()
            + self.codes_next.capacity() * size_of::<u16>()
            + self.floats.capacity() * size_of::<f32>()
            + self.floats_next.capacity() * size_of::<f32>()
            + self
                .skips
                .iter()
                .map(|s| s.capacity() * size_of::<f32>())
                .sum::<usize>()
            + self.keys.capacity() * size_of::<i32>()
            + self.act_keys.capacity() * size_of::<i32>()
            + self.tile.capacity() * size_of::<u16>()
            + self.tile_f.capacity() * size_of::<f32>()
            + self.tile_q.capacity() * size_of::<i16>()
            + self.wvals.capacity() * size_of::<f32>()
            + self.wdec.capacity() * size_of::<f32>()
            + self.wcodes.capacity() * size_of::<u16>()
    }

    /// Runs batched inference over `rows × features` row-major `inputs`,
    /// appending the `rows × output_features` logits to `out` (which is
    /// cleared first) and returning the number of rows executed.
    ///
    /// Outputs are bit-for-bit identical to calling
    /// [`CompiledModel::infer`] per row. The runner fully re-initialises
    /// its scratch state on entry, so a runner whose previous `run`
    /// panicked (possible only on a model that bypassed validation) is
    /// safe to reuse.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidInput`] when `inputs` is not a whole
    /// number of feature rows. Never panics on a validated model.
    pub fn run(
        &mut self,
        model: &CompiledModel,
        inputs: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<usize> {
        let features = model.input_features;
        if features == 0 || !inputs.len().is_multiple_of(features) {
            return Err(ServeError::InvalidInput(format!(
                "{} values is not a whole number of {features}-feature rows",
                inputs.len()
            )));
        }
        let rows = inputs.len() / features;
        out.clear();
        if rows == 0 {
            return Ok(0);
        }
        let padded = pad_rows(rows);
        let entry = self.encode_batch(model, inputs, padded);
        let exit = self.exec_ops(model, 0..model.ops.len(), entry, padded)?;
        match exit.domain {
            Domain::Floats => {
                out.extend_from_slice(&self.floats[..rows * exit.width]);
                Ok(rows)
            }
            Domain::Codes => Err(ServeError::Artifact(ArtifactError::Malformed(
                "program ended in encoded domain".into(),
            ))),
        }
    }

    /// Encodes a `padded`-row batch through the model's virtual input
    /// codebook into the arena's `codes` buffer and returns the flow
    /// state the op program starts from. `inputs` may hold fewer than
    /// `padded` rows; pad rows keep code 0 — valid for every non-empty
    /// codebook — and their results are computed but never copied out.
    pub(crate) fn encode_batch(
        &mut self,
        model: &CompiledModel,
        inputs: &[f32],
        padded: usize,
    ) -> FlowState {
        let features = model.input_features;
        let pool_f = model.float_pool();
        let book = model.virtual_encoder.slice(pool_f);
        load_keys(&mut self.keys, book);
        refill(&mut self.codes, padded * features);
        nearest_sorted_block(book, &self.keys, inputs, &mut self.codes);
        FlowState {
            domain: Domain::Codes,
            width: features,
            book: Some(model.virtual_encoder),
        }
    }

    /// Takes the current flow out of the arena as an owned buffer for a
    /// cross-stage handoff (the arena keeps its other scratch; the next
    /// [`run_segment`](Self::run_segment) swaps an incoming buffer back
    /// in).
    pub(crate) fn take_flow(&mut self, domain: Domain) -> FlowData {
        match domain {
            Domain::Codes => FlowData::Codes(std::mem::take(&mut self.codes)),
            Domain::Floats => FlowData::Floats(std::mem::take(&mut self.floats)),
        }
    }

    /// Runs the contiguous op range of one pipeline stage: installs the
    /// handed-off `data` as the current flow, executes `range` from
    /// `entry`, and extracts the resulting flow for the next stage.
    ///
    /// The planner guarantees `entry` matches the upstream stage's exit
    /// state and that `range` never cuts a residual region; under those
    /// invariants the concatenation of all stages' `run_segment` calls
    /// performs exactly the op sequence (and arithmetic order) of an
    /// uncut [`run`](Self::run), so outputs are bit-identical.
    ///
    /// # Errors
    ///
    /// [`ServeError::Artifact`] when `data`'s domain contradicts
    /// `entry` (a planner/handoff bug, never input-dependent) or the
    /// range itself is malformed.
    pub(crate) fn run_segment(
        &mut self,
        model: &CompiledModel,
        range: std::ops::Range<usize>,
        entry: FlowState,
        data: FlowData,
        padded: usize,
    ) -> Result<(FlowState, FlowData)> {
        match (entry.domain, data) {
            (Domain::Codes, FlowData::Codes(v)) => self.codes = v,
            (Domain::Floats, FlowData::Floats(v)) => self.floats = v,
            _ => {
                return Err(ServeError::Artifact(ArtifactError::Malformed(
                    "stage handoff domain mismatch".into(),
                )))
            }
        }
        let exit = self.exec_ops(model, range, entry, padded)?;
        let out = self.take_flow(exit.domain);
        Ok((exit, out))
    }

    /// Executes the ops in `range` (global op indices) over the current
    /// arena flow, starting from `entry`. This is the op loop shared by
    /// the whole-model [`run`](Self::run) (`0..ops.len()`) and the
    /// pipeline stages (one contiguous sub-range each).
    ///
    /// Quantization state is looked up by *global* op index, so a stage
    /// executes exactly the kernels the unsharded run would.
    fn exec_ops(
        &mut self,
        model: &CompiledModel,
        range: std::ops::Range<usize>,
        entry: FlowState,
        padded: usize,
    ) -> Result<FlowState> {
        let BatchRunner {
            codes,
            codes_next,
            floats,
            floats_next,
            skips,
            keys,
            act_keys,
            tile,
            tile_f,
            tile_q,
            wvals,
            wdec,
            wcodes: wcodes_scratch,
        } = self;
        let pool_f: &[f32] = model.float_pool();
        // Statically verified models (see `CompiledModel::verify`) have
        // proven every gather index in bounds, so the block kernels run
        // with an identity clamp instead of the defensive `min`/mask.
        let verified = model.verified;
        // Residual nesting is stage-local: the planner only cuts at
        // depth 0, so every range starts and ends outside all regions.
        let mut skip_depth = 0usize;

        let mut domain = entry.domain;
        let mut width = entry.width;
        // The codebook the current codes index into, tracked so dense
        // ops can try the factored multiply path (see [`factor_table`]).
        // `None` whenever the flow is decoded or the book is unknown.
        let mut cur_book: Option<Span> = entry.book;

        for oi in range {
            let op = &model.ops[oi];
            match op {
                Op::Dense {
                    inputs: nin,
                    outputs,
                    weight_codes,
                    bias,
                    table,
                    act,
                    encoder,
                } => {
                    if domain != Domain::Codes {
                        return Err(decoded_neuron());
                    }
                    let (nin, nout) = (*nin, *outputs);
                    // Analyzer-licensed ops run the integer path on
                    // tiles materialized once at load time, streamed
                    // straight from the (possibly bit-packed) code
                    // sections. This branch never calls `codes_for`:
                    // no per-op weight tile is decoded into the arena,
                    // and the activation + re-encode are baked into
                    // the finish LUT, so the op is one pass.
                    let quant_op = model
                        .quant
                        .as_ref()
                        .and_then(|qs| qs.ops.get(oi))
                        .and_then(Option::as_ref);
                    if let Some(q) = quant_op {
                        debug_assert_eq!(q.nin, nin);
                        match &q.finish {
                            QuantFinish::Dequant { inv } => {
                                let inv = *inv;
                                refill(floats_next, padded * nout);
                                quant_dense_exec(
                                    q,
                                    codes,
                                    floats_next,
                                    padded,
                                    tile,
                                    tile_q,
                                    move |a| a as f32 * inv,
                                );
                                std::mem::swap(floats, floats_next);
                                domain = Domain::Floats;
                            }
                            QuantFinish::DequantRelu { inv } => {
                                let inv = *inv;
                                refill(floats_next, padded * nout);
                                quant_dense_exec(
                                    q,
                                    codes,
                                    floats_next,
                                    padded,
                                    tile,
                                    tile_q,
                                    move |a| (a as f32 * inv).max(0.0),
                                );
                                std::mem::swap(floats, floats_next);
                                domain = Domain::Floats;
                            }
                            QuantFinish::Lut {
                                lo_q,
                                shift,
                                codes: lut_codes,
                                vals,
                                encoded,
                            } => {
                                let (lo_q, shift) = (*lo_q, *shift);
                                if *encoded {
                                    let last = lut_codes.len().saturating_sub(1);
                                    refill(codes_next, padded * nout);
                                    quant_dense_exec(
                                        q,
                                        codes,
                                        codes_next,
                                        padded,
                                        tile,
                                        tile_q,
                                        |a| lut_codes[lut_bucket(a, lo_q, shift, last)],
                                    );
                                    std::mem::swap(codes, codes_next);
                                    domain = Domain::Codes;
                                } else {
                                    let last = vals.len().saturating_sub(1);
                                    refill(floats_next, padded * nout);
                                    quant_dense_exec(
                                        q,
                                        codes,
                                        floats_next,
                                        padded,
                                        tile,
                                        tile_q,
                                        |a| vals[lut_bucket(a, lo_q, shift, last)],
                                    );
                                    std::mem::swap(floats, floats_next);
                                    domain = Domain::Floats;
                                }
                            }
                        }
                        cur_book = *encoder;
                        width = nout;
                        continue;
                    }
                    let wcodes = model.codes_for(*weight_codes, wcodes_scratch);
                    let b = bias.slice(pool_f);
                    refill(floats_next, padded * nout);
                    // When the incoming codebook is known, try to factor
                    // the product table back into per-weight multipliers
                    // (verified bitwise) and run the op as a packed
                    // multiply instead of a table gather.
                    let factored = padded >= LANES
                        && cur_book
                            .is_some_and(|bk| factor_table(pool_f, table, bk.slice(pool_f), wvals));
                    let mut r0 = 0usize;
                    if factored {
                        let bk = cur_book.map_or(&[] as &[f32], |s| s.slice(pool_f));
                        decode_weights(wvals, wcodes, wdec);
                        while r0 + LANES <= padded {
                            interleave_decode(
                                &codes[r0 * nin..(r0 + LANES) * nin],
                                nin,
                                bk,
                                tile_f,
                            );
                            dense_mul_block(
                                wdec,
                                b,
                                tile_f,
                                &mut floats_next[r0 * nout..(r0 + LANES) * nout],
                                nout,
                            );
                            r0 += LANES;
                        }
                    } else {
                        while r0 + LANES <= padded {
                            dense_block(
                                pool_f,
                                table,
                                wcodes,
                                b,
                                &codes[r0 * nin..(r0 + LANES) * nin],
                                &mut floats_next[r0 * nout..(r0 + LANES) * nout],
                                nin,
                                nout,
                                tile,
                                verified,
                            );
                            r0 += LANES;
                        }
                    }
                    for r in r0..padded {
                        dense_row(
                            pool_f,
                            table,
                            wcodes,
                            b,
                            &codes[r * nin..(r + 1) * nin],
                            &mut floats_next[r * nout..(r + 1) * nout],
                        );
                    }
                    domain = finish_neuron(
                        pool_f,
                        act,
                        encoder,
                        floats,
                        floats_next,
                        codes,
                        codes_next,
                        keys,
                        act_keys,
                    );
                    cur_book = *encoder;
                    width = nout;
                }
                Op::Conv {
                    geom: g,
                    out_channels,
                    weight_codes,
                    bias,
                    tables,
                    zero_code,
                    act,
                    encoder,
                } => {
                    if domain != Domain::Codes {
                        return Err(decoded_neuron());
                    }
                    let wcodes = model.codes_for(*weight_codes, wcodes_scratch);
                    let b = bias.slice(pool_f);
                    let in_vol = g.in_volume();
                    let nout = out_channels * g.out_pixels();
                    refill(floats_next, padded * nout);
                    let mut r0 = 0usize;
                    while r0 + LANES <= padded {
                        conv_block(
                            pool_f,
                            g,
                            *out_channels,
                            wcodes,
                            b,
                            tables,
                            *zero_code,
                            &codes[r0 * in_vol..(r0 + LANES) * in_vol],
                            &mut floats_next[r0 * nout..(r0 + LANES) * nout],
                            in_vol,
                            nout,
                            tile,
                            verified,
                        );
                        r0 += LANES;
                    }
                    for r in r0..padded {
                        conv_row(
                            pool_f,
                            g,
                            *out_channels,
                            wcodes,
                            b,
                            tables,
                            *zero_code,
                            &codes[r * in_vol..(r + 1) * in_vol],
                            &mut floats_next[r * nout..(r + 1) * nout],
                        );
                    }
                    domain = finish_neuron(
                        pool_f,
                        act,
                        encoder,
                        floats,
                        floats_next,
                        codes,
                        codes_next,
                        keys,
                        act_keys,
                    );
                    cur_book = *encoder;
                    width = nout;
                }
                Op::MaxPool(g) => {
                    let in_vol = g.in_volume();
                    let out_w = g.in_channels * g.out_pixels();
                    match domain {
                        Domain::Codes => {
                            refill(codes_next, padded * out_w);
                            for r in 0..padded {
                                pool_into(
                                    g,
                                    &codes[r * in_vol..(r + 1) * in_vol],
                                    &mut codes_next[r * out_w..(r + 1) * out_w],
                                    |a, b| if a >= b { a } else { b },
                                );
                            }
                            std::mem::swap(codes, codes_next);
                        }
                        Domain::Floats => {
                            refill(floats_next, padded * out_w);
                            for r in 0..padded {
                                pool_into(
                                    g,
                                    &floats[r * in_vol..(r + 1) * in_vol],
                                    &mut floats_next[r * out_w..(r + 1) * out_w],
                                    f32::max,
                                );
                            }
                            std::mem::swap(floats, floats_next);
                        }
                    }
                    width = out_w;
                }
                Op::AvgPool { geom: g, codebook } => {
                    let in_vol = g.in_volume();
                    let out_w = g.in_channels * g.out_pixels();
                    let window = (g.kernel_h * g.kernel_w) as f32;
                    match domain {
                        Domain::Codes => {
                            let book = codebook.slice(pool_f);
                            load_keys(keys, book);
                            refill(codes_next, padded * out_w);
                            avg_pool_batch(
                                g, book, keys, window, codes, codes_next, padded, verified,
                            );
                            std::mem::swap(codes, codes_next);
                            cur_book = Some(*codebook);
                        }
                        Domain::Floats => {
                            refill(floats_next, padded * out_w);
                            for r in 0..padded {
                                let dst = &mut floats_next[r * out_w..(r + 1) * out_w];
                                pool_into(g, &floats[r * in_vol..(r + 1) * in_vol], dst, |a, b| {
                                    a + b
                                });
                                for v in dst.iter_mut() {
                                    *v /= window;
                                }
                            }
                            std::mem::swap(floats, floats_next);
                        }
                    }
                    width = out_w;
                }
                Op::ResidualBegin { skip_codebook } => {
                    if domain != Domain::Codes {
                        return Err(decoded_neuron());
                    }
                    let book = skip_codebook.slice(pool_f);
                    if skips.len() == skip_depth {
                        skips.push(Vec::new());
                    }
                    let buf = &mut skips[skip_depth];
                    buf.clear();
                    // Same clamp specialization as the gather kernels:
                    // identity on verified models, defensive otherwise.
                    let src = &codes[..padded * width];
                    let last = book.len().saturating_sub(1);
                    if verified {
                        buf.extend(src.iter().map(|&c| book[c as usize]));
                    } else if book.len().is_power_of_two() {
                        buf.extend(src.iter().map(|&c| book[c as usize & last]));
                    } else {
                        buf.extend(src.iter().map(|&c| book[(c as usize).min(last)]));
                    }
                    skip_depth += 1;
                }
                Op::ResidualEnd { encoder } => {
                    if domain != Domain::Floats {
                        return Err(ServeError::Artifact(ArtifactError::Malformed(
                            "residual join received encoded values".into(),
                        )));
                    }
                    if skip_depth == 0 {
                        return Err(ServeError::Artifact(ArtifactError::Malformed(
                            "residual join without matching begin".into(),
                        )));
                    }
                    skip_depth -= 1;
                    let skip = &skips[skip_depth];
                    let n = padded * width;
                    match encoder {
                        Some(enc) => {
                            let book = enc.slice(pool_f);
                            load_keys(keys, book);
                            refill(codes_next, n);
                            for i in 0..n {
                                codes_next[i] = nearest_sorted(book, keys, floats[i] + skip[i]);
                            }
                            std::mem::swap(codes, codes_next);
                            domain = Domain::Codes;
                            cur_book = Some(*enc);
                        }
                        None => {
                            refill(floats_next, n);
                            for i in 0..n {
                                floats_next[i] = floats[i] + skip[i];
                            }
                            std::mem::swap(floats, floats_next);
                            domain = Domain::Floats;
                            cur_book = None;
                        }
                    }
                }
            }
        }

        Ok(FlowState {
            domain,
            width,
            book: cur_book,
        })
    }
}

/// Rows the kernels actually execute for a `rows`-sample batch: padded
/// to a whole number of [`LANES`]-row blocks so the final partial block
/// runs through the block kernels instead of the serial row path. Pad
/// rows carry code 0 and are computed but never copied out. Small
/// batches stay unpadded: below a block the serial path is cheaper.
pub(crate) fn pad_rows(rows: usize) -> usize {
    if rows >= LANES {
        rows.next_multiple_of(LANES)
    } else {
        rows
    }
}

/// Scratch-arena high-water marks for one model (see [`plan`]).
struct Plan {
    /// Widest flow the op program reaches.
    max_width: usize,
    /// Deepest residual nesting.
    skip_depth: usize,
    /// Largest codebook encoded through.
    max_book: usize,
    /// Largest activation lookup table applied.
    max_act: usize,
    /// Most weight representatives in any product table.
    max_wcount: usize,
    /// Largest dense weight matrix (`outputs × inputs`).
    max_dense: usize,
    /// Longest weight-code span of any neuron op (the packed-pool
    /// decode tile's high-water mark).
    max_wcodes: usize,
    /// Widest quantized-input row of any integer Madd op.
    max_tile_q: usize,
}

/// Walks the op program like `validate` does, collecting the scratch
/// arena's high-water marks.
///
/// Quantized models reserve less: an analyzer-licensed dense op runs
/// entirely on tiles materialized at load time, so it contributes no
/// weight-decode, factored-matrix, activation-key or encode-book
/// capacity — only its interleave tile. In particular `max_wcodes`
/// (the packed-pool decode tile) skips licensed ops, so a fully
/// licensed model's arena no longer grows with its code-section size.
fn plan(model: &CompiledModel) -> Plan {
    let mut width = model.input_features;
    let mut p = Plan {
        max_width: width,
        skip_depth: 0,
        max_book: model.virtual_encoder.len,
        max_act: 0,
        max_wcount: 0,
        max_dense: 0,
        max_wcodes: 0,
        max_tile_q: 0,
    };
    let mut depth = 0usize;
    fn span_len(enc: &Option<Span>) -> usize {
        enc.as_ref().map_or(0, |e| e.len)
    }
    fn act_len(act: &ActRef) -> usize {
        match act {
            ActRef::Lookup { inputs, .. } => inputs.len,
            _ => 0,
        }
    }
    for (oi, op) in model.ops.iter().enumerate() {
        let quant_op = model
            .quant
            .as_ref()
            .and_then(|qs| qs.ops.get(oi))
            .and_then(Option::as_ref);
        match op {
            Op::Dense {
                inputs,
                outputs,
                weight_codes,
                encoder,
                act,
                table,
                ..
            } => {
                width = *outputs;
                if let Some(q) = quant_op {
                    if matches!(q.kind, QuantKind::Madd { .. }) {
                        p.max_tile_q = p.max_tile_q.max(q.nin);
                    }
                } else {
                    p.max_book = p.max_book.max(span_len(encoder));
                    p.max_act = p.max_act.max(act_len(act));
                    p.max_wcount = p.max_wcount.max(table.weight_count);
                    p.max_dense = p.max_dense.max(inputs.saturating_mul(*outputs));
                    p.max_wcodes = p.max_wcodes.max(weight_codes.len);
                }
            }
            Op::Conv {
                geom,
                out_channels,
                weight_codes,
                encoder,
                act,
                ..
            } => {
                width = out_channels * geom.out_pixels();
                p.max_book = p.max_book.max(span_len(encoder));
                p.max_act = p.max_act.max(act_len(act));
                p.max_wcodes = p.max_wcodes.max(weight_codes.len);
            }
            Op::MaxPool(g) => width = g.in_channels * g.out_pixels(),
            Op::AvgPool { geom: g, codebook } => {
                width = g.in_channels * g.out_pixels();
                p.max_book = p.max_book.max(codebook.len);
            }
            Op::ResidualBegin { .. } => {
                depth += 1;
                p.skip_depth = p.skip_depth.max(depth);
            }
            Op::ResidualEnd { encoder } => {
                depth = depth.saturating_sub(1);
                p.max_book = p.max_book.max(span_len(encoder));
            }
        }
        p.max_width = p.max_width.max(width);
    }
    p
}

/// Dense over one [`LANES`]-row block: for each output neuron, [`LANES`]
/// accumulators live in a local array while the weight loop runs
/// innermost, so the block's add chains are independent and the current
/// table row is shared by all lanes. The block's codes are first
/// transposed into the interleaved `tile` (feature-major, lane-minor),
/// so the hot loop reads one contiguous `LANES`-code group per weight —
/// `chunks_exact` makes the lane indices provably in-bounds.
#[allow(clippy::too_many_arguments)]
fn dense_block(
    pool_f: &[f32],
    table: &TableRef,
    wcodes: &[u16],
    bias: &[f32],
    xblock: &[u16],
    dst: &mut [f32],
    nin: usize,
    nout: usize,
    tile: &mut Vec<u16>,
    verified: bool,
) {
    // Unreachable on a validated model (empty product tables are
    // rejected); guarantees `last` below cannot wrap, which lets the
    // optimiser drop the bounds check on the clamped gather.
    if table.input_count == 0 {
        return;
    }
    let last = table.input_count - 1;
    interleave(xblock, nin, tile);
    // Valid codes never exceed `last`, so clamping with `min` and
    // masking are both identities on real data; for power-of-two
    // tables the mask variant saves a compare per gather. A statically
    // verified model has *proven* every code in bounds, so it skips the
    // clamp entirely — same indices, one less op per gather.
    if verified {
        dense_block_gather(pool_f, table, wcodes, bias, dst, nout, tile, |x| x);
    } else if table.input_count.is_power_of_two() {
        dense_block_gather(pool_f, table, wcodes, bias, dst, nout, tile, |x| x & last);
    } else {
        dense_block_gather(pool_f, table, wcodes, bias, dst, nout, tile, |x| {
            x.min(last)
        });
    }
}

/// Gather loop of [`dense_block`] over the already-interleaved `tile`,
/// generic over the in-bounds clamp.
#[allow(clippy::too_many_arguments)]
#[inline]
fn dense_block_gather(
    pool_f: &[f32],
    table: &TableRef,
    wcodes: &[u16],
    bias: &[f32],
    dst: &mut [f32],
    nout: usize,
    tile: &[u16],
    clamp: impl Fn(usize) -> usize,
) {
    let nin = tile.len() / LANES;
    // Output neurons go in groups of OBLOCK sharing one pass over the
    // block's codes: each lane's load and clamp feeds OBLOCK
    // accumulator blocks, dividing the per-product bookkeeping. Each
    // accumulator still sums its weights in ascending order, so
    // per-output results are unchanged.
    let mut o = 0usize;
    while o + OBLOCK <= nout {
        let w0 = &wcodes[o * nin..(o + 1) * nin];
        let w1 = &wcodes[(o + 1) * nin..(o + 2) * nin];
        let mut acc0 = [bias[o]; LANES];
        let mut acc1 = [bias[o + 1]; LANES];
        for ((xs, &wa), &wb) in tile.chunks_exact(LANES).zip(w0).zip(w1) {
            let ta = table.row(pool_f, wa);
            let tb = table.row(pool_f, wb);
            // Fold the lane group into two words so the eight code
            // loads become two 64-bit loads plus shifts, easing the
            // pressure on the load ports (the loop's throughput limit).
            let lo = u64::from(xs[0])
                | u64::from(xs[1]) << 16
                | u64::from(xs[2]) << 32
                | u64::from(xs[3]) << 48;
            let hi = u64::from(xs[4])
                | u64::from(xs[5]) << 16
                | u64::from(xs[6]) << 32
                | u64::from(xs[7]) << 48;
            for l in 0..LANES {
                let word = if l < 4 { lo } else { hi };
                let x = clamp((word >> (16 * (l & 3))) as u16 as usize);
                acc0[l] += ta[x];
                acc1[l] += tb[x];
            }
        }
        for l in 0..LANES {
            dst[l * nout + o] = acc0[l];
            dst[l * nout + o + 1] = acc1[l];
        }
        o += OBLOCK;
    }
    while o < nout {
        let wrow = &wcodes[o * nin..(o + 1) * nin];
        let mut acc = [bias[o]; LANES];
        for (xs, &w) in tile.chunks_exact(LANES).zip(wrow) {
            let trow = table.row(pool_f, w);
            for (l, a) in acc.iter_mut().enumerate() {
                *a += trow[clamp(xs[l] as usize)];
            }
        }
        for (l, &a) in acc.iter().enumerate() {
            dst[l * nout + o] = a;
        }
        o += 1;
    }
}

/// Transposes a row-major `LANES`-row block of codes into the
/// interleaved tile layout `tile[i * LANES + l] = block[l * width + i]`,
/// putting all lanes of one feature side by side.
fn interleave(xblock: &[u16], width: usize, tile: &mut Vec<u16>) {
    refill(tile, width * LANES);
    for (l, xrow) in xblock.chunks_exact(width).enumerate() {
        for (i, &x) in xrow.iter().enumerate() {
            tile[i * LANES + l] = x;
        }
    }
}

/// Attempts to factor a dense product table back into per-weight-code
/// multipliers. `ProductTable` stores the single-rounded product
/// `w * x` for every (weight, input) representative pair, so with the
/// input codebook in hand each table row is `fl(w · book[x])` for one
/// recoverable weight value `w`. A candidate is read off any finite
/// nonzero book entry and then **every** product is verified bitwise
/// against the stored table, so on success `wvals[w] * book[x]`
/// reproduces each entry exactly and the caller may replace the table
/// gather with a packed multiply ([`dense_mul_block`]). Returns `false`
/// — leaving the gather path in charge — for tables not of this form
/// (possible only in hand-crafted artifacts).
fn factor_table(pool_f: &[f32], table: &TableRef, book: &[f32], wvals: &mut Vec<f32>) -> bool {
    if book.is_empty() || book.len() > table.input_count || table.weight_count == 0 {
        return false;
    }
    wvals.clear();
    for w in 0..table.weight_count {
        let row = table.row(pool_f, w as u16);
        let mut found = None;
        'candidate: for (x0, &b0) in book.iter().enumerate() {
            if b0 == 0.0 || !b0.is_finite() {
                continue;
            }
            let cand = row[x0] / b0;
            for (&bx, &rx) in book.iter().zip(row) {
                if (cand * bx).to_bits() != rx.to_bits() {
                    continue 'candidate;
                }
            }
            found = Some(cand);
            break;
        }
        match found {
            Some(v) => wvals.push(v),
            None => return false,
        }
    }
    true
}

/// Expands the weight-code matrix through the recovered factors
/// (`wdec[j] = wvals[wcodes[j]]`) into one flat `outputs × inputs`
/// matrix for [`dense_mul_block`] to stream through.
fn decode_weights(wvals: &[f32], wcodes: &[u16], wdec: &mut Vec<f32>) {
    let last = wvals.len() - 1;
    wdec.clear();
    wdec.extend(wcodes.iter().map(|&w| wvals[(w as usize).min(last)]));
}

/// [`interleave`] fused with a codebook decode, producing the `f32`
/// tile the factored dense path multiplies against:
/// `tile_f[i * LANES + l] = book[block[l * width + i]]`.
fn interleave_decode(xblock: &[u16], width: usize, book: &[f32], tile_f: &mut Vec<f32>) {
    refill(tile_f, width * LANES);
    let last = book.len() - 1;
    for (l, xrow) in xblock.chunks_exact(width).enumerate() {
        for (i, &x) in xrow.iter().enumerate() {
            tile_f[i * LANES + l] = book[(x as usize).min(last)];
        }
    }
}

/// Multiply-accumulate form of [`dense_block_gather`] for factored
/// tables: `acc += w · x` on the decoded weight matrix and tile. Every
/// product is bitwise equal to the table entry the gather would have
/// loaded ([`factor_table`] verified all of them) and each accumulator
/// still sums its weights in ascending order, so results are unchanged
/// — but the inner loop is a pure mul-add stream the compiler turns
/// into packed vector arithmetic, with no loads serialised behind
/// gathered indices.
fn dense_mul_block(wdec: &[f32], bias: &[f32], tile_f: &[f32], dst: &mut [f32], nout: usize) {
    let nin = tile_f.len() / LANES;
    let mut o = 0usize;
    while o + OBLOCK <= nout {
        let w0 = &wdec[o * nin..(o + 1) * nin];
        let w1 = &wdec[(o + 1) * nin..(o + 2) * nin];
        let mut acc0 = [bias[o]; LANES];
        let mut acc1 = [bias[o + 1]; LANES];
        for ((xs, &wa), &wb) in tile_f.chunks_exact(LANES).zip(w0).zip(w1) {
            for l in 0..LANES {
                acc0[l] += wa * xs[l];
                acc1[l] += wb * xs[l];
            }
        }
        for l in 0..LANES {
            dst[l * nout + o] = acc0[l];
            dst[l * nout + o + 1] = acc1[l];
        }
        o += OBLOCK;
    }
    while o < nout {
        let wrow = &wdec[o * nin..(o + 1) * nin];
        let mut acc = [bias[o]; LANES];
        for (xs, &wa) in tile_f.chunks_exact(LANES).zip(wrow) {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += wa * xs[l];
            }
        }
        for (l, &a) in acc.iter().enumerate() {
            dst[l * nout + o] = a;
        }
        o += 1;
    }
}

/// Dense over a single row: the serial per-sample chain, used for
/// `rows == 1` and the tail of a batch that doesn't fill a block.
fn dense_row(
    pool_f: &[f32],
    table: &TableRef,
    wcodes: &[u16],
    bias: &[f32],
    xrow: &[u16],
    dst: &mut [f32],
) {
    let nin = xrow.len();
    for (o, d) in dst.iter_mut().enumerate() {
        let wrow = &wcodes[o * nin..(o + 1) * nin];
        let mut acc = bias[o];
        for (&w, &x) in wrow.iter().zip(xrow) {
            acc += table.fetch(pool_f, w, x);
        }
        *d = acc;
    }
}

/// Runs one analyzer-licensed dense op over the whole padded batch on
/// the integer path: quantized interleave, `i32` block accumulation,
/// branch-free per-lane `finish` (dequantize or finish-LUT bucket).
///
/// `i32` addition is associative and exact, so the block and row
/// variants produce identical accumulators and the batch path stays
/// bit-for-bit identical to per-sample execution — the property the
/// f32 kernels only get by fixing the summation order.
fn quant_dense_exec<T: Copy + Default>(
    q: &QuantOp,
    codes: &[u16],
    dst: &mut [T],
    padded: usize,
    tile: &mut Vec<u16>,
    tile_q: &mut Vec<i16>,
    finish: impl Fn(i32) -> T + Copy,
) {
    let (nin, nout) = (q.nin, q.nout);
    let mut r0 = 0usize;
    match &q.kind {
        QuantKind::Madd { weights, xq } => {
            // Every row — block or tail, any batch size — takes this
            // exact path, so bit-identity across batch sizes is
            // structural rather than argued.
            for r in 0..padded {
                quantize_row(&codes[r * nin..(r + 1) * nin], xq, tile_q);
                madd_row(
                    weights,
                    &q.bias_q,
                    tile_q,
                    &mut dst[r * nout..(r + 1) * nout],
                    finish,
                );
            }
        }
        QuantKind::Gather { rows, table_q } => {
            while r0 + LANES <= padded {
                interleave(&codes[r0 * nin..(r0 + LANES) * nin], nin, tile);
                gather_i16_block(
                    rows,
                    table_q,
                    &q.bias_q,
                    tile,
                    &mut dst[r0 * nout..(r0 + LANES) * nout],
                    nout,
                    finish,
                );
                r0 += LANES;
            }
            for r in r0..padded {
                gather_i16_row(
                    rows,
                    table_q,
                    &q.bias_q,
                    &codes[r * nin..(r + 1) * nin],
                    &mut dst[r * nout..(r + 1) * nout],
                    finish,
                );
            }
        }
    }
}

/// Maps an integer accumulator to its finish-LUT bucket: offset from
/// the domain floor, right-shift down to bucket granularity, clamp to
/// the table. The subtraction runs in `i64` — the quant plan proves the
/// *true* accumulator range lands inside the table, but the mapping
/// must stay total for every `i32` bit pattern so the kernels carry no
/// per-element branches (`max`/`min` lower to conditional moves).
#[inline]
fn lut_bucket(acc: i32, lo_q: i32, shift: u32, last: usize) -> usize {
    (((i64::from(acc) - i64::from(lo_q)).max(0) >> shift) as usize).min(last)
}

/// Maps one row of input codes through the quantized input codebook
/// into the row-major `i16` tile the integer Madd kernel streams. No
/// transpose: the dot-product kernel reads the row contiguously.
fn quantize_row(xrow: &[u16], xq: &[i16], tile_q: &mut Vec<i16>) {
    tile_q.clear();
    let last = xq.len() - 1;
    tile_q.extend(xrow.iter().map(|&x| xq[(x as usize).min(last)]));
}

/// Eight-element `i16 × i16 → i32` dot step — the exact shape x86's
/// `pmaddwd` (and the equivalent widening-multiply pairs elsewhere)
/// accepts, which the autovectorizer reliably matches.
#[inline]
fn dot8(w: &[i16], x: &[i16]) -> i32 {
    let mut acc = 0i32;
    for k in 0..8 {
        acc += i32::from(w[k]) * i32::from(x[k]);
    }
    acc
}

/// Integer Madd over one row: each output is a plain contiguous
/// `i16` dot product, split into two independent accumulator chains so
/// the vector multiply-adds pipeline instead of serialising on one
/// accumulator's latency.
///
/// A single product cannot overflow `i32`, and the quant plan proved
/// the sum of absolute products — over the *full* input code domain,
/// rounding slack included — stays within the `2^30` accumulator
/// budget, so every partial chain is exact in any association and all
/// groupings produce the same bits (a wrong license would trip the
/// debug overflow check).
fn madd_row<T: Copy>(
    weights: &[i16],
    bias_q: &[i32],
    xrow: &[i16],
    dst: &mut [T],
    finish: impl Fn(i32) -> T,
) {
    let nin = xrow.len();
    for (o, d) in dst.iter_mut().enumerate() {
        let w = &weights[o * nin..(o + 1) * nin];
        let mut a0 = 0i32;
        let mut a1 = 0i32;
        let mut i = 0usize;
        while i + 16 <= nin {
            a0 += dot8(&w[i..i + 8], &xrow[i..i + 8]);
            a1 += dot8(&w[i + 8..i + 16], &xrow[i + 8..i + 16]);
            i += 16;
        }
        let mut acc = bias_q[o] + a0 + a1;
        while i < nin {
            acc += i32::from(w[i]) * i32::from(xrow[i]);
            i += 1;
        }
        *d = finish(acc);
    }
}

/// Integer table gather over one [`LANES`]-row block for unfactorable
/// tables: `rows` holds each weight's precomputed base offset into the
/// compacted `i16` table, so the inner loop is one add and one clamped
/// load per product — the per-gather row-address arithmetic of the f32
/// path is gone.
fn gather_i16_block<T: Copy>(
    rows: &[u32],
    table_q: &[i16],
    bias_q: &[i32],
    tile: &[u16],
    dst: &mut [T],
    nout: usize,
    finish: impl Fn(i32) -> T,
) {
    let nin = tile.len() / LANES;
    let last = table_q.len().saturating_sub(1);
    let mut o = 0usize;
    while o + OBLOCK <= nout {
        let r0 = &rows[o * nin..(o + 1) * nin];
        let r1 = &rows[(o + 1) * nin..(o + 2) * nin];
        let mut acc0 = [bias_q[o]; LANES];
        let mut acc1 = [bias_q[o + 1]; LANES];
        for ((xs, &ra), &rb) in tile.chunks_exact(LANES).zip(r0).zip(r1) {
            let (ra, rb) = (ra as usize, rb as usize);
            for l in 0..LANES {
                let x = xs[l] as usize;
                acc0[l] += i32::from(table_q[(ra + x).min(last)]);
                acc1[l] += i32::from(table_q[(rb + x).min(last)]);
            }
        }
        for l in 0..LANES {
            dst[l * nout + o] = finish(acc0[l]);
            dst[l * nout + o + 1] = finish(acc1[l]);
        }
        o += OBLOCK;
    }
    while o < nout {
        let wrow = &rows[o * nin..(o + 1) * nin];
        let mut acc = [bias_q[o]; LANES];
        for (xs, &ra) in tile.chunks_exact(LANES).zip(wrow) {
            let ra = ra as usize;
            for (l, a) in acc.iter_mut().enumerate() {
                *a += i32::from(table_q[(ra + xs[l] as usize).min(last)]);
            }
        }
        for (l, &a) in acc.iter().enumerate() {
            dst[l * nout + o] = finish(a);
        }
        o += 1;
    }
}

/// Integer gather over a single row (`rows == 1` and block tails);
/// bit-identical to [`gather_i16_block`] by `i32` exactness.
fn gather_i16_row<T: Copy>(
    rows: &[u32],
    table_q: &[i16],
    bias_q: &[i32],
    xrow: &[u16],
    dst: &mut [T],
    finish: impl Fn(i32) -> T,
) {
    let nin = xrow.len();
    let last = table_q.len().saturating_sub(1);
    for (o, d) in dst.iter_mut().enumerate() {
        let wrow = &rows[o * nin..(o + 1) * nin];
        let mut acc = bias_q[o];
        for (&r, &x) in wrow.iter().zip(xrow) {
            acc += i32::from(table_q[(r as usize + x as usize).min(last)]);
        }
        *d = finish(acc);
    }
}

/// Convolution over one [`LANES`]-row block, mirroring [`dense_block`]:
/// per output pixel, the tap loop runs innermost over a register block
/// of accumulators reading contiguous lane groups from the interleaved
/// tile; padding taps add the same product to every lane.
#[allow(clippy::too_many_arguments)]
fn conv_block(
    pool_f: &[f32],
    g: &Geom,
    out_channels: usize,
    wcodes: &[u16],
    bias: &[f32],
    tables: &[TableRef],
    zero_code: u16,
    xblock: &[u16],
    dst: &mut [f32],
    in_vol: usize,
    nout: usize,
    tile: &mut Vec<u16>,
    verified: bool,
) {
    interleave(xblock, in_vol, tile);
    let patch_len = g.patch_len();
    for oc in 0..out_channels {
        let table = &tables[oc];
        // See dense_block: the guard proves the clamp stays in bounds.
        if table.input_count == 0 {
            continue;
        }
        let last = table.input_count - 1;
        let wrow = &wcodes[oc * patch_len..(oc + 1) * patch_len];
        // Per-channel clamp choice (each channel's table has its own
        // `last`); see dense_block for the verified-identity rationale.
        if verified {
            conv_channel_block(
                pool_f,
                g,
                table,
                wrow,
                bias[oc],
                zero_code,
                tile,
                dst,
                nout,
                oc,
                |x| x,
            );
        } else {
            conv_channel_block(
                pool_f,
                g,
                table,
                wrow,
                bias[oc],
                zero_code,
                tile,
                dst,
                nout,
                oc,
                |x| x.min(last),
            );
        }
    }
}

/// Tap loop of [`conv_block`] for one output channel, generic over the
/// in-bounds clamp.
#[allow(clippy::too_many_arguments)]
#[inline]
fn conv_channel_block(
    pool_f: &[f32],
    g: &Geom,
    table: &TableRef,
    wrow: &[u16],
    bias: f32,
    zero_code: u16,
    tile: &[u16],
    dst: &mut [f32],
    nout: usize,
    oc: usize,
    clamp: impl Fn(usize) -> usize,
) {
    let pixels = g.out_pixels();
    let (c, h, w) = (g.in_channels, g.in_height, g.in_width);
    // The padding code is constant for the whole channel, so its clamp
    // is hoisted out of the tap loops; each padding tap is then a
    // single indexed load off its table row.
    let zero_i = clamp(zero_code as usize);
    for oy in 0..g.out_height {
        for ox in 0..g.out_width {
            let mut acc = [bias; LANES];
            let mut k = 0usize;
            for ic in 0..c {
                for kh in 0..g.kernel_h {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    for kw in 0..g.kernel_w {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        let trow = table.row(pool_f, wrow[k]);
                        k += 1;
                        if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            let src = ic * h * w + iy as usize * w + ix as usize;
                            let xs: &[u16; LANES] = tile[src * LANES..(src + 1) * LANES]
                                .try_into()
                                .expect("lane group");
                            for (l, a) in acc.iter_mut().enumerate() {
                                let x = xs[l] as usize;
                                *a += trow[clamp(x)];
                            }
                        } else {
                            let pad_v = trow[zero_i];
                            for a in acc.iter_mut() {
                                *a += pad_v;
                            }
                        }
                    }
                }
            }
            let pixel = oc * pixels + oy * g.out_width + ox;
            for (l, &a) in acc.iter().enumerate() {
                dst[l * nout + pixel] = a;
            }
        }
    }
}

/// Convolution over a single row (`rows == 1` and block tails).
#[allow(clippy::too_many_arguments)]
fn conv_row(
    pool_f: &[f32],
    g: &Geom,
    out_channels: usize,
    wcodes: &[u16],
    bias: &[f32],
    tables: &[TableRef],
    zero_code: u16,
    xrow: &[u16],
    dst: &mut [f32],
) {
    let patch_len = g.patch_len();
    let pixels = g.out_pixels();
    let (c, h, w) = (g.in_channels, g.in_height, g.in_width);
    for oc in 0..out_channels {
        let table = &tables[oc];
        let wrow = &wcodes[oc * patch_len..(oc + 1) * patch_len];
        for oy in 0..g.out_height {
            for ox in 0..g.out_width {
                let mut acc = bias[oc];
                let mut k = 0usize;
                for ic in 0..c {
                    for kh in 0..g.kernel_h {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        for kw in 0..g.kernel_w {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            let xcode =
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                    xrow[ic * h * w + iy as usize * w + ix as usize]
                                } else {
                                    zero_code
                                };
                            acc += table.fetch(pool_f, wrow[k], xcode);
                            k += 1;
                        }
                    }
                }
                dst[oc * pixels + oy * g.out_width + ox] = acc;
            }
        }
    }
}

/// Applies the activation to the raw accumulators in `floats_next` and
/// routes the batch into the next flow domain, mirroring the per-sample
/// finish-neuron step: activate every value, then encode through the
/// stage encoder if one is present.
///
/// A `Lookup` activation is a nearest-input search over a sorted LUT —
/// the same shape as an encode step — so its total-order keys are
/// cached once per op and every value goes through the branch-free
/// [`nearest_index`] instead of `ActRef::apply`'s binary search. The
/// LUT's inputs are strictly increasing (built sorted and deduplicated),
/// so both searches pick the same index bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn finish_neuron(
    pool_f: &[f32],
    act: &ActRef,
    encoder: &Option<Span>,
    floats: &mut Vec<f32>,
    floats_next: &mut Vec<f32>,
    codes: &mut Vec<u16>,
    codes_next: &mut Vec<u16>,
    keys: &mut Vec<i32>,
    act_keys: &mut Vec<i32>,
) -> Domain {
    let lut = match act {
        ActRef::Lookup { inputs, outputs } => {
            let xs = inputs.slice(pool_f);
            load_keys(act_keys, xs);
            Some((xs, outputs.slice(pool_f)))
        }
        _ => None,
    };
    let act_keys: &[i32] = act_keys;
    let apply = |y: f32| match lut {
        Some((xs, ys)) => ys[nearest_index(xs, act_keys, y)],
        None => act.apply(pool_f, y),
    };
    match encoder {
        Some(enc) => {
            let book = enc.slice(pool_f);
            load_keys(keys, book);
            refill(codes_next, floats_next.len());
            for (dst, &y) in codes_next.iter_mut().zip(floats_next.iter()) {
                *dst = nearest_sorted(book, keys, apply(y));
            }
            std::mem::swap(codes, codes_next);
            Domain::Codes
        }
        None => {
            for y in floats_next.iter_mut() {
                *y = apply(*y);
            }
            std::mem::swap(floats, floats_next);
            Domain::Floats
        }
    }
}

/// Windowed reduction of one sample in the same iteration order as the
/// per-sample pool (channel, output row, output column, kernel row,
/// kernel column): the accumulator starts at the window's first element
/// and `combine` folds the rest in visit order.
fn pool_into<T: Copy>(g: &Geom, src: &[T], dst: &mut [T], combine: impl Fn(T, T) -> T) {
    let (c, h, w) = (g.in_channels, g.in_height, g.in_width);
    let mut i = 0usize;
    for ch in 0..c {
        let base = ch * h * w;
        for oy in 0..g.out_height {
            for ox in 0..g.out_width {
                let mut acc = src[base + oy * g.stride * w + ox * g.stride];
                for kh in 0..g.kernel_h {
                    for kw in 0..g.kernel_w {
                        if kh == 0 && kw == 0 {
                            continue;
                        }
                        acc = combine(
                            acc,
                            src[base + (oy * g.stride + kh) * w + ox * g.stride + kw],
                        );
                    }
                }
                dst[i] = acc;
                i += 1;
            }
        }
    }
}

/// Batched [`avg_pool_codes`] with the clamp chosen once per op —
/// identity for statically verified models, mask for power-of-two
/// codebooks, `min` otherwise — mirroring the dense path's
/// verified-identity specialization (the clamp is an identity on all
/// real data, so every variant is bit-identical).
#[allow(clippy::too_many_arguments)]
fn avg_pool_batch(
    g: &Geom,
    book: &[f32],
    keys: &[i32],
    window: f32,
    codes: &[u16],
    codes_next: &mut [u16],
    padded: usize,
    verified: bool,
) {
    #[allow(clippy::too_many_arguments)]
    fn go(
        g: &Geom,
        book: &[f32],
        keys: &[i32],
        window: f32,
        codes: &[u16],
        codes_next: &mut [u16],
        padded: usize,
        clamp: impl Fn(usize) -> usize + Copy,
    ) {
        let in_vol = g.in_volume();
        let out_w = g.in_channels * g.out_pixels();
        for r in 0..padded {
            avg_pool_codes(
                g,
                book,
                keys,
                window,
                &codes[r * in_vol..(r + 1) * in_vol],
                &mut codes_next[r * out_w..(r + 1) * out_w],
                clamp,
            );
        }
    }
    let last = book.len().saturating_sub(1);
    if verified {
        go(g, book, keys, window, codes, codes_next, padded, |x| x);
    } else if book.len().is_power_of_two() {
        go(g, book, keys, window, codes, codes_next, padded, |x| {
            x & last
        });
    } else {
        go(g, book, keys, window, codes, codes_next, padded, |x| {
            x.min(last)
        });
    }
}

/// Fused decode + average-pool + re-encode of one encoded sample:
/// gathers codebook values straight out of the window (identical sum
/// order to decoding the whole sample first), divides by the window
/// size, and encodes each pooled value back through the codebook.
/// Generic over the in-bounds clamp like [`dense_block_gather`].
fn avg_pool_codes(
    g: &Geom,
    book: &[f32],
    keys: &[i32],
    window: f32,
    src: &[u16],
    dst: &mut [u16],
    clamp: impl Fn(usize) -> usize,
) {
    let (c, h, w) = (g.in_channels, g.in_height, g.in_width);
    let mut i = 0usize;
    for ch in 0..c {
        let base = ch * h * w;
        for oy in 0..g.out_height {
            for ox in 0..g.out_width {
                let mut acc = book[clamp(src[base + oy * g.stride * w + ox * g.stride] as usize)];
                for kh in 0..g.kernel_h {
                    for kw in 0..g.kernel_w {
                        if kh == 0 && kw == 0 {
                            continue;
                        }
                        acc += book[clamp(
                            src[base + (oy * g.stride + kh) * w + ox * g.stride + kw] as usize,
                        )];
                    }
                }
                dst[i] = nearest_sorted(book, keys, acc / window);
                i += 1;
            }
        }
    }
}

/// Resets `buf` to `len` default-filled elements, reusing its capacity:
/// no allocation happens once capacity has reached the high-water mark.
fn refill<T: Copy + Default>(buf: &mut Vec<T>, len: usize) {
    buf.clear();
    buf.resize(len, T::default());
}

fn decoded_neuron() -> ServeError {
    ServeError::Artifact(ArtifactError::Malformed(
        "neuron op received decoded values".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::nearest;

    /// The branch-free search must agree with the reference binary
    /// search on every probe, including exact hits, ties, boundary
    /// clamps, signed zeros and NaN.
    #[test]
    fn nearest_sorted_matches_reference() {
        let books: &[&[f32]] = &[
            &[0.0],
            &[-1.0, 1.0],
            &[-2.0, -0.5, 0.0, 0.25, 3.0],
            &[f32::NEG_INFINITY, -1.0, 0.0, f32::INFINITY],
        ];
        let mut probes: Vec<f32> = vec![
            f32::NEG_INFINITY,
            -3.0,
            -1.0,
            -0.75,
            -0.25,
            -0.0,
            0.0,
            0.125,
            0.25,
            1.0,
            2.0,
            3.0,
            10.0,
            f32::INFINITY,
            f32::NAN,
        ];
        for i in -40..=40 {
            probes.push(i as f32 * 0.11);
        }
        for book in books {
            let mut keys = Vec::new();
            load_keys(&mut keys, book);
            for &p in &probes {
                assert_eq!(
                    nearest_sorted(book, &keys, p),
                    nearest(book, p),
                    "book {book:?} probe {p}"
                );
            }
        }
    }
}
