//! Batched, multi-threaded serving engine.
//!
//! [`Engine::start`] spins up a worker pool over a bounded request queue.
//! Each worker gathers a dynamic batch — up to
//! [`EngineConfig::max_batch_size`] requests, waiting at most
//! [`EngineConfig::max_wait`] for stragglers — then executes the whole
//! batch in one [`BatchRunner::run`] call outside the lock and answers
//! each request through its own channel. The runner and its scratch
//! arena persist across batches, so steady-state serving performs no
//! per-sample heap allocation in the op loop.
//!
//! The straggler wait is bounded both ways: a worker stops waiting the
//! moment its batch fills or shutdown begins, and the deadline is
//! measured from the first request popped — a partial batch is never
//! held longer than [`EngineConfig::max_wait`], even when the queue has
//! gone idle.
//!
//! Backpressure is explicit: [`Engine::try_submit`] returns
//! [`ServeError::QueueFull`] instead of buffering without bound, while
//! [`Engine::submit`] blocks until space frees up. Shutdown drains the
//! queue before the workers exit, so every accepted request is answered.
//! A panic inside inference is caught and returned to the affected
//! requesters as [`ServeError::WorkerPanic`]; the worker itself keeps
//! serving.

use crate::artifact::CompiledModel;
use crate::error::{ArtifactError, Result, ServeError};
use crate::kernels::BatchRunner;
use crate::metrics::{Metrics, ServerStats};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Engine::start`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` sizes the pool to available parallelism.
    pub workers: usize,
    /// Maximum queued (accepted but unserved) requests.
    pub queue_capacity: usize,
    /// Most requests a worker executes per batch.
    pub max_batch_size: usize,
    /// Longest a worker holds a partial batch waiting for more work.
    pub max_wait: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 1024,
            max_batch_size: 32,
            max_wait: Duration::from_millis(1),
        }
    }
}

impl EngineConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// One batch's outputs, shared by every reply from that batch: the
/// worker pays one allocation per *batch* instead of one `Vec` per
/// request, and the requester copies its row out on its own thread.
#[derive(Debug, Clone)]
struct ReplySlice {
    data: Arc<[f32]>,
    start: usize,
    len: usize,
}

impl ReplySlice {
    fn to_vec(&self) -> Vec<f32> {
        self.data[self.start..self.start + self.len].to_vec()
    }
}

/// One queued request.
struct Job {
    input: Vec<f32>,
    reply: mpsc::Sender<Result<ReplySlice>>,
    enqueued: Instant,
}

/// Queue state guarded by the mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when work arrives or shutdown begins.
    work_ready: Condvar,
    /// Signalled when queue space frees up.
    space_ready: Condvar,
}

/// Handle to one in-flight request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    reply: mpsc::Receiver<Result<ReplySlice>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates the inference error, or [`ServeError::ShuttingDown`] if
    /// the engine died before answering.
    pub fn wait(self) -> Result<Vec<f32>> {
        match self.reply.recv() {
            Ok(result) => result.map(|slice| slice.to_vec()),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocks until the response arrives or `timeout` elapses; `None` on
    /// timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<f32>>> {
        match self.reply.recv_timeout(timeout) {
            Ok(result) => Some(result.map(|slice| slice.to_vec())),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Outcome of [`Engine::drain`]: the final stats plus whether every
/// worker finished inside the deadline.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Metrics snapshot taken when the drain returned.
    pub stats: ServerStats,
    /// `true` when all workers drained the queue and exited before the
    /// deadline. `false` means the workers were detached still running;
    /// they hold their own `Arc`s to the queue and metrics, keep
    /// answering the remaining accepted requests, and exit once the
    /// queue empties — the engine just stopped waiting for them.
    pub joined: bool,
}

/// A running inference server over one [`CompiledModel`].
pub struct Engine {
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    model: Arc<CompiledModel>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
}

impl Engine {
    /// Starts the worker pool and returns the serving handle.
    pub fn start(model: CompiledModel, config: EngineConfig) -> Engine {
        let worker_count = config.resolved_workers();
        let queue_capacity = config.queue_capacity.max(1);
        let max_batch = config.max_batch_size.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
        });
        let metrics = Arc::new(Metrics::new());
        let model = Arc::new(model);
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                let model = Arc::clone(&model);
                let max_wait = config.max_wait;
                std::thread::spawn(move || worker_loop(shared, metrics, model, max_batch, max_wait))
            })
            .collect();
        Engine {
            shared,
            metrics,
            model,
            workers,
            queue_capacity,
        }
    }

    /// Runs the static analyzer over the model and starts the worker
    /// pool only if it is proven free of `error` diagnostics; the
    /// workers then serve on the verified kernel paths (no defensive
    /// per-gather index clamps).
    ///
    /// An already-[`verified`](CompiledModel::is_verified) model skips
    /// the re-analysis.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] with the diagnostic report when the
    /// analyzer finds errors.
    pub fn start_verified(mut model: CompiledModel, config: EngineConfig) -> Result<Engine> {
        if !model.is_verified() {
            model.verify()?;
        }
        Ok(Engine::start(model, config))
    }

    /// The model being served.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// Worker-pool size.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for a width mismatch (checked before
    /// enqueueing), [`ServeError::QueueFull`] when the bounded queue is at
    /// capacity, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn try_submit(&self, input: Vec<f32>) -> Result<Ticket> {
        self.check_width(&input)?;
        let mut state = lock_state(&self.shared);
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.jobs.len() >= self.queue_capacity {
            self.metrics.record_rejected();
            return Err(ServeError::QueueFull);
        }
        Ok(self.enqueue(&mut state, input))
    }

    /// Submits a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for a width mismatch,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket> {
        self.check_width(&input)?;
        let mut state = lock_state(&self.shared);
        loop {
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if state.jobs.len() < self.queue_capacity {
                return Ok(self.enqueue(&mut state, input));
            }
            state = self
                .shared
                .space_ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn check_width(&self, input: &[f32]) -> Result<()> {
        if input.len() != self.model.input_features() {
            return Err(ServeError::InvalidInput(format!(
                "request has {} features, model expects {}",
                input.len(),
                self.model.input_features()
            )));
        }
        Ok(())
    }

    fn enqueue(&self, state: &mut QueueState, input: Vec<f32>) -> Ticket {
        let (tx, rx) = mpsc::channel();
        state.jobs.push_back(Job {
            input,
            reply: tx,
            enqueued: Instant::now(),
        });
        self.metrics.record_submit(state.jobs.len());
        self.shared.work_ready.notify_one();
        Ticket { reply: rx }
    }

    /// Current metrics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Shared handle to the engine's metrics sink, so a caller in front
    /// of the engine (e.g. a gateway's admission control) can record
    /// into the same per-model [`ServerStats`] the engine reports.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops accepting requests, drains the queue, joins the workers, and
    /// returns the final stats. Every request accepted before the call is
    /// still answered.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.metrics.snapshot()
    }

    /// Gracefully drains the engine with a deadline: stops accepting new
    /// requests, lets the workers finish every accepted request, and
    /// waits up to `deadline` for them to exit.
    ///
    /// Unlike [`shutdown`](Self::shutdown), which joins unconditionally,
    /// `drain` never blocks past the deadline: workers still running
    /// when it expires are detached ([`DrainReport::joined`] is `false`)
    /// and keep answering the queue's remaining requests on their own —
    /// every accepted ticket is still redeemable either way. This is the
    /// primitive a hot-swap builds on: cut traffic to the new engine,
    /// then `drain` the old one without risking an unbounded stall.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        self.begin_shutdown();
        let end = Instant::now() + deadline;
        let mut workers = std::mem::take(&mut self.workers);
        loop {
            workers.retain(|w| !w.is_finished());
            if workers.is_empty() {
                return DrainReport {
                    stats: self.metrics.snapshot(),
                    joined: true,
                };
            }
            if Instant::now() >= end {
                // Dropping the handles detaches the stragglers; they own
                // Arcs to everything they touch, so this is safe.
                return DrainReport {
                    stats: self.metrics.snapshot(),
                    joined: false,
                };
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn begin_shutdown(&self) {
        let mut state = lock_state(&self.shared);
        state.shutting_down = true;
        drop(state);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("input_features", &self.model.input_features())
            .finish()
    }
}

fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, QueueState> {
    // A worker can only panic between batches with the lock released, so
    // a poisoned mutex still guards consistent state.
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    model: Arc<CompiledModel>,
    max_batch: usize,
    max_wait: Duration,
) {
    // Per-worker scratch, reused across batches: the batch kernel's
    // arena plus flat input/output staging. Nothing here allocates per
    // sample once the high-water batch size has been seen.
    let mut runner = BatchRunner::for_model(&model, max_batch);
    let mut flat: Vec<f32> = Vec::with_capacity(max_batch * model.input_features());
    let mut outputs: Vec<f32> = Vec::with_capacity(max_batch * model.output_features());
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    loop {
        batch.clear();
        {
            let mut state = lock_state(&shared);
            // Sleep until there is work; exit only once the queue has
            // drained after shutdown.
            loop {
                if !state.jobs.is_empty() {
                    break;
                }
                if state.shutting_down {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            // Gather a dynamic batch. The straggler wait runs from the
            // first drain and ends at the earliest of: batch full,
            // shutdown, or `max_wait` elapsed — whatever raced in by
            // the deadline still joins the batch, but a partial batch
            // is never held past it. Each pass moves everything the
            // queue holds in one bulk drain rather than popping (and
            // bounds-checking) per request.
            let deadline = Instant::now() + max_wait;
            loop {
                let take = (max_batch - batch.len()).min(state.jobs.len());
                batch.extend(state.jobs.drain(..take));
                if batch.len() >= max_batch || state.shutting_down {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .work_ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = next;
                if timeout.timed_out() && state.jobs.is_empty() {
                    break;
                }
            }
            metrics.set_queue_depth(state.jobs.len());
        }
        if batch.is_empty() {
            continue;
        }
        // Queue space was freed by the pops above; wake blocked
        // submitters only now that there is actually room.
        shared.space_ready.notify_all();
        metrics.record_batch(batch.len());
        flat.clear();
        for job in &batch {
            flat.extend_from_slice(&job.input);
        }
        // Contain panics so a bad batch cannot kill the worker: a dead
        // worker would shrink the pool silently, and with no workers
        // left queued tickets would wait forever. The runner resets its
        // scratch on every call, so reuse after a panic is safe.
        let run =
            std::panic::catch_unwind(AssertUnwindSafe(|| runner.run(&model, &flat, &mut outputs)));
        let width = model.output_features();
        match run {
            Ok(Ok(_)) => {
                // One shared allocation carries the whole batch's
                // outputs; each requester copies its row out on its own
                // thread when it redeems the ticket.
                let data: Arc<[f32]> = Arc::from(&outputs[..batch.len() * width]);
                for (i, job) in batch.iter().enumerate() {
                    metrics.record_completion(job.enqueued.elapsed(), true);
                    // The requester may have dropped its ticket; fine.
                    let _ = job.reply.send(Ok(ReplySlice {
                        data: Arc::clone(&data),
                        start: i * width,
                        len: width,
                    }));
                }
            }
            Ok(Err(err)) => {
                for job in &batch {
                    metrics.record_completion(job.enqueued.elapsed(), false);
                    let _ = job.reply.send(Err(replicate(&err)));
                }
            }
            Err(payload) => {
                let msg = panic_message(&payload);
                for job in &batch {
                    metrics.record_completion(job.enqueued.elapsed(), false);
                    let _ = job.reply.send(Err(ServeError::WorkerPanic(msg.clone())));
                }
            }
        }
    }
}

/// Fans one batch-level error out to every affected job. [`ServeError`]
/// is not `Clone` (it can wrap `io::Error`), so replicate the variants
/// the batch kernel can actually produce.
fn replicate(err: &ServeError) -> ServeError {
    match err {
        ServeError::InvalidInput(msg) => ServeError::InvalidInput(msg.clone()),
        ServeError::Artifact(ArtifactError::Malformed(msg)) => {
            ServeError::Artifact(ArtifactError::Malformed(msg.clone()))
        }
        ServeError::WorkerPanic(msg) => ServeError::WorkerPanic(msg.clone()),
        other => ServeError::InvalidInput(other.to_string()),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CompiledModel;

    /// A panicking `infer` must fail only that request: the worker stays
    /// alive, later requests are still answered, and shutdown drains.
    #[test]
    fn worker_survives_inference_panic() {
        let engine = Engine::start(
            CompiledModel::broken_for_tests(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        for _ in 0..2 {
            let ticket = engine.try_submit(vec![0.5]).unwrap();
            assert!(matches!(ticket.wait(), Err(ServeError::WorkerPanic(_))));
        }
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 0);
    }
}
