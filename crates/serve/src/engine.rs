//! Batched, multi-threaded serving engine.
//!
//! [`Engine::start`] spins up a worker pool over a bounded request queue.
//! Each worker gathers a dynamic batch — up to
//! [`EngineConfig::max_batch_size`] requests, waiting at most
//! [`EngineConfig::max_wait`] for stragglers — then executes the whole
//! batch in one [`BatchRunner::run`] call outside the lock and answers
//! each request through its own channel. The runner and its scratch
//! arena persist across batches, so steady-state serving performs no
//! per-sample heap allocation in the op loop.
//!
//! The straggler wait is bounded both ways: a worker stops waiting the
//! moment its batch fills or shutdown begins, and the deadline is
//! measured from the first request popped — a partial batch is never
//! held longer than [`EngineConfig::max_wait`], even when the queue has
//! gone idle.
//!
//! Backpressure is explicit: [`Engine::try_submit`] returns
//! [`ServeError::QueueFull`] instead of buffering without bound, while
//! [`Engine::submit`] blocks until space frees up. Shutdown drains the
//! queue before the workers exit, so every accepted request is answered.
//! A panic inside inference is caught and returned to the affected
//! requesters as [`ServeError::WorkerPanic`]; the worker itself keeps
//! serving.

use crate::artifact::CompiledModel;
use crate::error::{ArtifactError, Result, ServeError};
use crate::kernels::{pad_rows, BatchRunner, FlowData, FlowState};
use crate::metrics::{Metrics, ServerStats};
use crate::pipeline::{self, PipelineStats, StageStats};
use rapidnn_pool::spsc;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Micro-batches each inter-stage channel buffers: enough for adjacent
/// stages to overlap, small enough that backpressure reaches the
/// request queue after a couple of batches rather than after a pile.
const STAGE_CHANNEL_CAP: usize = 2;

/// Tuning knobs for [`Engine::start`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` sizes the pool to available parallelism.
    /// Ignored when [`stages`](Self::stages) shards the model — the
    /// stage set is the worker set (one thread per stage).
    pub workers: usize,
    /// Maximum queued (accepted but unserved) requests.
    pub queue_capacity: usize,
    /// Most *rows* a worker executes per batch. A single
    /// [`Engine::submit_batch`] request carrying more rows than this
    /// still runs (alone, in one kernel call).
    pub max_batch_size: usize,
    /// Longest a worker holds a partial batch waiting for more work.
    pub max_wait: Duration,
    /// Pipeline stages to shard the op program into: `0` or `1` serves
    /// unsharded; `2+` splits the model into that many contiguous op
    /// ranges (clamped to the number of legal cut points), each with
    /// its own worker and scratch arena, connected by bounded channels.
    /// Outputs are bit-identical either way.
    pub stages: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_capacity: 1024,
            max_batch_size: 32,
            max_wait: Duration::from_millis(1),
            stages: 0,
        }
    }
}

impl EngineConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    }
}

/// One batch's outputs, shared by every reply from that batch: the
/// worker pays one allocation per *batch* instead of one `Vec` per
/// request, and the requester copies its row out on its own thread.
#[derive(Debug, Clone)]
struct ReplySlice {
    data: Arc<[f32]>,
    start: usize,
    len: usize,
}

impl ReplySlice {
    fn to_vec(&self) -> Vec<f32> {
        self.data[self.start..self.start + self.len].to_vec()
    }
}

/// One queued request: `rows` feature rows flattened into `input`
/// (`rows == 1` for plain [`Engine::submit`]; [`Engine::submit_batch`]
/// carries a whole pre-batched block in one job).
struct Job {
    input: Vec<f32>,
    rows: usize,
    reply: mpsc::Sender<Result<ReplySlice>>,
    enqueued: Instant,
}

/// Queue state guarded by the mutex.
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signalled when work arrives or shutdown begins.
    work_ready: Condvar,
    /// Signalled when queue space frees up.
    space_ready: Condvar,
}

/// Handle to one in-flight request; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    reply: mpsc::Receiver<Result<ReplySlice>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Propagates the inference error, or [`ServeError::ShuttingDown`] if
    /// the engine died before answering.
    pub fn wait(self) -> Result<Vec<f32>> {
        match self.reply.recv() {
            Ok(result) => result.map(|slice| slice.to_vec()),
            Err(_) => Err(ServeError::ShuttingDown),
        }
    }

    /// Blocks until the response arrives or `timeout` elapses; `None` on
    /// timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<f32>>> {
        match self.reply.recv_timeout(timeout) {
            Ok(result) => Some(result.map(|slice| slice.to_vec())),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Outcome of [`Engine::drain`]: the final stats plus whether every
/// worker finished inside the deadline.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Metrics snapshot taken when the drain returned.
    pub stats: ServerStats,
    /// `true` when all workers drained the queue and exited before the
    /// deadline. `false` means the workers were detached still running;
    /// they hold their own `Arc`s to the queue and metrics, keep
    /// answering the remaining accepted requests, and exit once the
    /// queue empties — the engine just stopped waiting for them.
    pub joined: bool,
    /// Requests accepted but not yet answered when the drain returned:
    /// `0` after a clean join, and the actual stranded-work count when
    /// the deadline fired first. Before this field a deadline expiry
    /// with a full queue was indistinguishable from a clean drain that
    /// merely joined slowly.
    pub in_flight_at_deadline: u64,
}

/// Per-stage plumbing a pipelined engine keeps for stats: the plan plus
/// each inter-stage channel's occupancy gauge.
struct PipelineShape {
    ranges: Vec<std::ops::Range<usize>>,
    costs: Vec<u64>,
    gauges: Vec<rapidnn_pool::spsc::Gauge>,
}

/// A running inference server over one [`CompiledModel`].
pub struct Engine {
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    model: Arc<CompiledModel>,
    workers: Vec<JoinHandle<()>>,
    queue_capacity: usize,
    pipeline: Option<PipelineShape>,
}

impl Engine {
    /// Starts the worker pool and returns the serving handle.
    ///
    /// With [`EngineConfig::stages`] ≥ 2 (and a model with at least one
    /// legal cut point) the op program is sharded into balanced
    /// contiguous ranges: stage 0 gathers batches from the request
    /// queue, every stage runs its range on its own thread and scratch
    /// arena, and micro-batches stream stage-to-stage through bounded
    /// FIFO channels — outputs stay bit-identical to the unsharded
    /// engine at any stage count.
    pub fn start(model: CompiledModel, config: EngineConfig) -> Engine {
        let queue_capacity = config.queue_capacity.max(1);
        let max_batch = config.max_batch_size.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
        });
        let metrics = Arc::new(Metrics::new());
        let model = Arc::new(model);
        if let Some(plan) = pipeline::plan_stages(&model, config.stages) {
            let n = plan.ranges.len();
            // Channel s connects stage s to stage s+1; each link buffers
            // a couple of micro-batches so adjacent stages overlap
            // without letting a slow stage hoard unbounded work —
            // backpressure runs from the last stage back to the queue.
            let mut txs = Vec::with_capacity(n - 1);
            let mut rxs = Vec::with_capacity(n - 1);
            let mut gauges = Vec::with_capacity(n - 1);
            for _ in 1..n {
                let (tx, rx, gauge) = spsc::channel::<Micro>(STAGE_CHANNEL_CAP);
                txs.push(tx);
                rxs.push(rx);
                gauges.push(gauge);
            }
            let mut txs = txs.into_iter();
            let mut rxs = rxs.into_iter();
            let mut workers = Vec::with_capacity(n);
            for (s, (range, entry)) in plan
                .ranges
                .iter()
                .cloned()
                .zip(plan.entries.iter().copied())
                .enumerate()
            {
                let model = Arc::clone(&model);
                let metrics = Arc::clone(&metrics);
                if s == 0 {
                    let shared = Arc::clone(&shared);
                    let tx = txs.next().expect("a pipeline has at least two stages");
                    let max_wait = config.max_wait;
                    workers.push(std::thread::spawn(move || {
                        stage0_loop(&shared, &metrics, &model, range, max_batch, max_wait, &tx);
                    }));
                } else {
                    let rx = rxs.next().expect("every later stage has an input link");
                    let tx = txs.next();
                    workers.push(std::thread::spawn(move || {
                        stage_loop(&metrics, &model, range, entry, &rx, tx.as_ref());
                    }));
                }
            }
            return Engine {
                shared,
                metrics,
                model,
                workers,
                queue_capacity,
                pipeline: Some(PipelineShape {
                    ranges: plan.ranges,
                    costs: plan.costs,
                    gauges,
                }),
            };
        }
        let worker_count = config.resolved_workers();
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                let model = Arc::clone(&model);
                let max_wait = config.max_wait;
                std::thread::spawn(move || worker_loop(shared, metrics, model, max_batch, max_wait))
            })
            .collect();
        Engine {
            shared,
            metrics,
            model,
            workers,
            queue_capacity,
            pipeline: None,
        }
    }

    /// Runs the static analyzer over the model and starts the worker
    /// pool only if it is proven free of `error` diagnostics; the
    /// workers then serve on the verified kernel paths (no defensive
    /// per-gather index clamps).
    ///
    /// An already-[`verified`](CompiledModel::is_verified) model skips
    /// the re-analysis.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] with the diagnostic report when the
    /// analyzer finds errors.
    pub fn start_verified(mut model: CompiledModel, config: EngineConfig) -> Result<Engine> {
        if !model.is_verified() {
            model.verify()?;
        }
        Ok(Engine::start(model, config))
    }

    /// The model being served.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// Worker-pool size.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for a width mismatch (checked before
    /// enqueueing), [`ServeError::QueueFull`] when the bounded queue is at
    /// capacity, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn try_submit(&self, input: Vec<f32>) -> Result<Ticket> {
        self.check_width(&input)?;
        let mut state = lock_state(&self.shared);
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.jobs.len() >= self.queue_capacity {
            self.metrics.record_rejected();
            return Err(ServeError::QueueFull);
        }
        Ok(self.enqueue(&mut state, input, 1))
    }

    /// Submits a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for a width mismatch,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket> {
        self.check_width(&input)?;
        let mut state = lock_state(&self.shared);
        loop {
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if state.jobs.len() < self.queue_capacity {
                return Ok(self.enqueue(&mut state, input, 1));
            }
            state = self
                .shared
                .space_ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Submits a pre-batched request — `rows × input_features` values
    /// flattened row-major — without blocking. The whole block runs as
    /// one unit and the ticket resolves to `rows × output_features`
    /// values. Because the block is already flat, a worker serving it
    /// alone skips the gather copy entirely and runs the kernel
    /// straight off the request buffer.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] when `input` is empty or not a whole
    /// number of feature rows; [`ServeError::QueueFull`] /
    /// [`ServeError::ShuttingDown`] as for [`try_submit`](Self::try_submit).
    pub fn try_submit_batch(&self, input: Vec<f32>) -> Result<Ticket> {
        let rows = self.check_batch_width(&input)?;
        let mut state = lock_state(&self.shared);
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.jobs.len() >= self.queue_capacity {
            self.metrics.record_rejected();
            return Err(ServeError::QueueFull);
        }
        Ok(self.enqueue(&mut state, input, rows))
    }

    /// Blocking variant of [`try_submit_batch`](Self::try_submit_batch):
    /// waits for queue space instead of returning
    /// [`ServeError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidInput`] for a shape mismatch,
    /// [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit_batch(&self, input: Vec<f32>) -> Result<Ticket> {
        let rows = self.check_batch_width(&input)?;
        let mut state = lock_state(&self.shared);
        loop {
            if state.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            if state.jobs.len() < self.queue_capacity {
                return Ok(self.enqueue(&mut state, input, rows));
            }
            state = self
                .shared
                .space_ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn check_width(&self, input: &[f32]) -> Result<()> {
        if input.len() != self.model.input_features() {
            return Err(ServeError::InvalidInput(format!(
                "request has {} features, model expects {}",
                input.len(),
                self.model.input_features()
            )));
        }
        Ok(())
    }

    fn check_batch_width(&self, input: &[f32]) -> Result<usize> {
        let features = self.model.input_features();
        if input.is_empty() || !input.len().is_multiple_of(features) {
            return Err(ServeError::InvalidInput(format!(
                "batch of {} values is not a non-empty whole number of {features}-feature rows",
                input.len()
            )));
        }
        Ok(input.len() / features)
    }

    fn enqueue(&self, state: &mut QueueState, input: Vec<f32>, rows: usize) -> Ticket {
        let (tx, rx) = mpsc::channel();
        state.jobs.push_back(Job {
            input,
            rows,
            reply: tx,
            enqueued: Instant::now(),
        });
        self.metrics.record_submit(state.jobs.len());
        self.shared.work_ready.notify_one();
        Ticket { reply: rx }
    }

    /// Current metrics snapshot.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Shared handle to the engine's metrics sink, so a caller in front
    /// of the engine (e.g. a gateway's admission control) can record
    /// into the same per-model [`ServerStats`] the engine reports.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops accepting requests, drains the queue, joins the workers, and
    /// returns the final stats. Every request accepted before the call is
    /// still answered.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.metrics.snapshot()
    }

    /// Gracefully drains the engine with a deadline: stops accepting new
    /// requests, lets the workers finish every accepted request, and
    /// waits up to `deadline` for them to exit.
    ///
    /// Unlike [`shutdown`](Self::shutdown), which joins unconditionally,
    /// `drain` never blocks past the deadline: workers still running
    /// when it expires are detached ([`DrainReport::joined`] is `false`)
    /// and keep answering the queue's remaining requests on their own —
    /// every accepted ticket is still redeemable either way. This is the
    /// primitive a hot-swap builds on: cut traffic to the new engine,
    /// then `drain` the old one without risking an unbounded stall.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        self.begin_shutdown();
        let end = Instant::now() + deadline;
        let mut workers = std::mem::take(&mut self.workers);
        loop {
            workers.retain(|w| !w.is_finished());
            if workers.is_empty() {
                return Self::drain_report(&self.metrics, true);
            }
            if Instant::now() >= end {
                // Dropping the handles detaches the stragglers; they own
                // Arcs to everything they touch, so this is safe.
                return Self::drain_report(&self.metrics, false);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    fn drain_report(metrics: &Metrics, joined: bool) -> DrainReport {
        let stats = metrics.snapshot();
        // Accepted minus answered (either way) is exactly the work the
        // detached workers still hold; counters only ever grow, so a
        // torn read can only momentarily overstate it — saturate.
        let in_flight_at_deadline = stats
            .submitted
            .saturating_sub(stats.completed)
            .saturating_sub(stats.failed);
        DrainReport {
            stats,
            joined,
            in_flight_at_deadline,
        }
    }

    /// Stage topology and queue occupancy when this engine serves a
    /// sharded pipeline; `None` for the classic worker pool.
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        let shape = self.pipeline.as_ref()?;
        let stages = shape
            .ranges
            .iter()
            .enumerate()
            .map(|(s, range)| {
                let (queue_depth, queue_capacity) = if s == 0 {
                    (lock_state(&self.shared).jobs.len(), self.queue_capacity)
                } else {
                    let gauge = &shape.gauges[s - 1];
                    (gauge.len(), gauge.capacity())
                };
                StageStats {
                    ops: range.clone(),
                    cost_units: shape.costs[s],
                    queue_depth,
                    queue_capacity,
                }
            })
            .collect();
        Some(PipelineStats { stages })
    }

    /// Pipeline stages this engine runs (`1` when serving unsharded).
    pub fn stage_count(&self) -> usize {
        self.pipeline.as_ref().map_or(1, |p| p.ranges.len())
    }

    fn begin_shutdown(&self) {
        let mut state = lock_state(&self.shared);
        state.shutting_down = true;
        drop(state);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.queue_capacity)
            .field("input_features", &self.model.input_features())
            .finish()
    }
}

fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, QueueState> {
    // A worker can only panic between batches with the lock released, so
    // a poisoned mutex still guards consistent state.
    shared
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Gathers a dynamic batch from the request queue into `batch`,
/// row-aware: jobs join until their summed rows would exceed
/// `max_rows` (a single job bigger than `max_rows` still runs, alone).
/// The straggler wait runs from the first pop and ends at the earliest
/// of: batch full, shutdown, or `max_wait` elapsed — a partial batch is
/// never held past the deadline.
///
/// Returns `false` only when the engine is shutting down and the queue
/// has drained (the caller should exit); on `true` the batch is
/// non-empty.
fn gather_batch(
    shared: &Shared,
    metrics: &Metrics,
    batch: &mut Vec<Job>,
    max_rows: usize,
    max_wait: Duration,
) -> bool {
    batch.clear();
    let mut rows = 0usize;
    let mut state = lock_state(shared);
    // Sleep until there is work; exit only once the queue has drained
    // after shutdown.
    loop {
        if !state.jobs.is_empty() {
            break;
        }
        if state.shutting_down {
            return false;
        }
        state = shared
            .work_ready
            .wait(state)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    let deadline = Instant::now() + max_wait;
    loop {
        // `full` means the *next* queued job no longer fits by rows —
        // stop waiting for stragglers, there is no room for them.
        let mut full = false;
        while let Some(front) = state.jobs.front() {
            if !batch.is_empty() && rows + front.rows > max_rows {
                full = true;
                break;
            }
            let job = state
                .jobs
                .pop_front()
                .expect("front existed under the lock");
            rows += job.rows;
            batch.push(job);
        }
        if full || rows >= max_rows || state.shutting_down {
            break;
        }
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let (next, timeout) = shared
            .work_ready
            .wait_timeout(state, deadline - now)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state = next;
        if timeout.timed_out() && state.jobs.is_empty() {
            break;
        }
    }
    metrics.set_queue_depth(state.jobs.len());
    drop(state);
    // Queue space was freed by the pops above; wake blocked submitters
    // only now that there is actually room.
    shared.space_ready.notify_all();
    true
}

/// The batch's flat inputs: a lone pre-batched job is already flat, so
/// serve the kernel straight off its buffer and skip the gather copy.
fn flatten<'a>(batch: &'a [Job], flat: &'a mut Vec<f32>) -> &'a [f32] {
    if let [only] = batch {
        return &only.input;
    }
    flat.clear();
    for job in batch {
        flat.extend_from_slice(&job.input);
    }
    flat
}

/// Answers every job in `batch` out of one shared output allocation;
/// each requester copies its rows out on its own thread when it
/// redeems the ticket.
fn answer_ok(metrics: &Metrics, batch: &[Job], data: &Arc<[f32]>, width: usize) {
    let mut start = 0;
    for job in batch {
        metrics.record_completion(job.enqueued.elapsed(), true);
        let len = job.rows * width;
        // The requester may have dropped its ticket; fine.
        let _ = job.reply.send(Ok(ReplySlice {
            data: Arc::clone(data),
            start,
            len,
        }));
        start += len;
    }
}

/// Fails every job in `batch` with (a replica of) `err`.
fn answer_err(metrics: &Metrics, batch: &[Job], err: &ServeError) {
    for job in batch {
        metrics.record_completion(job.enqueued.elapsed(), false);
        let _ = job.reply.send(Err(replicate(err)));
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    metrics: Arc<Metrics>,
    model: Arc<CompiledModel>,
    max_batch: usize,
    max_wait: Duration,
) {
    // Per-worker scratch, reused across batches: the batch kernel's
    // arena plus flat input/output staging. Nothing here allocates per
    // sample once the high-water batch size has been seen.
    let mut runner = BatchRunner::for_model(&model, max_batch);
    let mut flat: Vec<f32> = Vec::with_capacity(max_batch * model.input_features());
    let mut outputs: Vec<f32> = Vec::with_capacity(max_batch * model.output_features());
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    let width = model.output_features();
    while gather_batch(&shared, &metrics, &mut batch, max_batch, max_wait) {
        let rows: usize = batch.iter().map(|job| job.rows).sum();
        metrics.record_batch(rows);
        let inputs = flatten(&batch, &mut flat);
        // Contain panics so a bad batch cannot kill the worker: a dead
        // worker would shrink the pool silently, and with no workers
        // left queued tickets would wait forever. The runner resets its
        // scratch on every call, so reuse after a panic is safe.
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            runner.run(&model, inputs, &mut outputs)
        }));
        match run {
            Ok(Ok(_)) => {
                let data: Arc<[f32]> = Arc::from(&outputs[..rows * width]);
                answer_ok(&metrics, &batch, &data, width);
            }
            Ok(Err(err)) => answer_err(&metrics, &batch, &err),
            Err(payload) => answer_err(
                &metrics,
                &batch,
                &ServeError::WorkerPanic(panic_message(&payload)),
            ),
        }
    }
}

/// One micro-batch in flight between pipeline stages: the jobs it will
/// answer, its row counts, and the flow buffer being transformed. The
/// buffer *moves* stage to stage — rows are never copied or reordered,
/// which is half of the bit-identity argument (the other half is that
/// channels are FIFO and stages run disjoint op ranges in order).
struct Micro {
    jobs: Vec<Job>,
    rows: usize,
    padded: usize,
    data: FlowData,
}

/// First pipeline stage: owns the request queue end — gathers dynamic
/// batches exactly like a classic worker, encodes them, runs its op
/// range, and streams the resulting flow downstream.
fn stage0_loop(
    shared: &Shared,
    metrics: &Metrics,
    model: &CompiledModel,
    range: std::ops::Range<usize>,
    max_batch: usize,
    max_wait: Duration,
    tx: &spsc::Sender<Micro>,
) {
    let mut runner = BatchRunner::for_model(model, max_batch);
    let mut flat: Vec<f32> = Vec::with_capacity(max_batch * model.input_features());
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    while gather_batch(shared, metrics, &mut batch, max_batch, max_wait) {
        let rows: usize = batch.iter().map(|job| job.rows).sum();
        metrics.record_batch(rows);
        let padded = pad_rows(rows);
        let inputs = flatten(&batch, &mut flat);
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let entry = runner.encode_batch(model, inputs, padded);
            let data = runner.take_flow(entry.domain);
            runner.run_segment(model, range.clone(), entry, data, padded)
        }));
        match run {
            Ok(Ok((_, data))) => {
                let micro = Micro {
                    jobs: std::mem::take(&mut batch),
                    rows,
                    padded,
                    data,
                };
                // Blocks while downstream is busy — this is the
                // backpressure path. `Err` means the next stage is gone,
                // which only happens when the engine is tearing down.
                if let Err(micro) = tx.send(micro) {
                    answer_err(metrics, &micro.jobs, &ServeError::ShuttingDown);
                    return;
                }
            }
            Ok(Err(err)) => answer_err(metrics, &batch, &err),
            Err(payload) => answer_err(
                metrics,
                &batch,
                &ServeError::WorkerPanic(panic_message(&payload)),
            ),
        }
    }
}

/// A non-first pipeline stage: receives micro-batches in FIFO order,
/// runs its op range over the moved-in flow buffer, and either forwards
/// downstream or (last stage) answers every job. Exits when the
/// upstream sender drops *and* the channel has drained — shutdown is a
/// cascade from stage 0.
///
/// A panic while executing one micro-batch fails exactly that batch's
/// jobs as [`ServeError::WorkerPanic`]; the stage keeps serving — the
/// same containment contract as the classic pool.
fn stage_loop(
    metrics: &Metrics,
    model: &CompiledModel,
    range: std::ops::Range<usize>,
    entry: FlowState,
    rx: &spsc::Receiver<Micro>,
    tx: Option<&spsc::Sender<Micro>>,
) {
    // The arena resizes to the first micro-batch; sizing it up front
    // would need max_batch plumbing for no steady-state difference.
    let mut runner = BatchRunner::for_model(model, 1);
    while let Some(micro) = rx.recv() {
        let Micro {
            jobs,
            rows,
            padded,
            data,
        } = micro;
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            runner.run_segment(model, range.clone(), entry, data, padded)
        }));
        match run {
            Ok(Ok((exit, data))) => {
                if let Some(tx) = tx {
                    if tx
                        .send(Micro {
                            jobs,
                            rows,
                            padded,
                            data,
                        })
                        .is_err()
                    {
                        return;
                    }
                } else {
                    match data {
                        FlowData::Floats(values) => {
                            let data: Arc<[f32]> = Arc::from(&values[..rows * exit.width]);
                            answer_ok(metrics, &jobs, &data, exit.width);
                        }
                        FlowData::Codes(_) => answer_err(
                            metrics,
                            &jobs,
                            &ServeError::Artifact(ArtifactError::Malformed(
                                "program ended in encoded domain".into(),
                            )),
                        ),
                    }
                }
            }
            Ok(Err(err)) => answer_err(metrics, &jobs, &err),
            Err(payload) => answer_err(
                metrics,
                &jobs,
                &ServeError::WorkerPanic(panic_message(&payload)),
            ),
        }
    }
}

/// Fans one batch-level error out to every affected job. [`ServeError`]
/// is not `Clone` (it can wrap `io::Error`), so replicate the variants
/// the batch kernel can actually produce.
fn replicate(err: &ServeError) -> ServeError {
    match err {
        ServeError::InvalidInput(msg) => ServeError::InvalidInput(msg.clone()),
        ServeError::Artifact(ArtifactError::Malformed(msg)) => {
            ServeError::Artifact(ArtifactError::Malformed(msg.clone()))
        }
        ServeError::WorkerPanic(msg) => ServeError::WorkerPanic(msg.clone()),
        other => ServeError::InvalidInput(other.to_string()),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::CompiledModel;

    /// A panicking `infer` must fail only that request: the worker stays
    /// alive, later requests are still answered, and shutdown drains.
    #[test]
    fn worker_survives_inference_panic() {
        let engine = Engine::start(
            CompiledModel::broken_for_tests(),
            EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        );
        for _ in 0..2 {
            let ticket = engine.try_submit(vec![0.5]).unwrap();
            assert!(matches!(ticket.wait(), Err(ServeError::WorkerPanic(_))));
        }
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 2);
        assert_eq!(stats.completed, 0);
    }

    /// A panic in a *late* pipeline stage (mid-stream, after stage 0
    /// already encoded and forwarded the micro-batch) must fail exactly
    /// the affected requests with a typed [`ServeError::WorkerPanic`]
    /// while every stage keeps serving later traffic, and shutdown must
    /// still drain cleanly.
    #[test]
    fn late_stage_panic_fails_typed_while_pipeline_keeps_serving() {
        let model = CompiledModel::deep_broken_tail_for_tests(4);
        // One op per stage: the healthy dense prefix spreads over the
        // early stages and the broken pool op lands alone in the last.
        let stages = model.op_count();
        let engine = Engine::start(
            model,
            EngineConfig {
                stages,
                max_batch_size: 2,
                max_wait: Duration::ZERO,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.stage_count(), stages);
        assert!(engine.pipeline_stats().is_some());
        for round in 0..3 {
            let tickets: Vec<Ticket> = (0..4)
                .map(|_| engine.try_submit(vec![0.1, 0.2, 0.3, 0.4]).unwrap())
                .collect();
            for ticket in tickets {
                assert!(
                    matches!(ticket.wait(), Err(ServeError::WorkerPanic(_))),
                    "round {round}: expected a typed panic failure"
                );
            }
        }
        // The pre-batched path crosses the same broken stage.
        let ticket = engine.try_submit_batch(vec![0.0; 8]).unwrap();
        assert!(matches!(ticket.wait(), Err(ServeError::WorkerPanic(_))));
        let stats = engine.shutdown();
        assert_eq!(stats.failed, 13);
        assert_eq!(stats.completed, 0);
    }
}
