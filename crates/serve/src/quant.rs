//! Materialized integer-kernel state.
//!
//! [`CompiledModel::quantize`] derives a [`rapidnn_analyze::QuantPlan`]
//! and this module turns each licensed op into the flat tiles the
//! integer batch kernels stream through: expanded `i16` weight
//! matrices (Madd) or compacted `i16` product tables plus row offsets
//! (Gather), `i32` biases on the accumulator grid, and precomputed
//! finish LUTs whose entries went through the *exact* scalar f32
//! finish (activation lookup, nearest re-encode) at each bucket's
//! center — so the integer path's only deviations from f32 are the
//! rounding terms the plan's error bound already accounts for.
//!
//! Weight codes are consumed here exactly once, streamed straight out
//! of the artifact's (possibly bit-packed) code pool via
//! `CodePool::map_range`; at run time the integer path never touches
//! the code sections again, and the batch arena never holds a weight
//! tile for a licensed op.

use crate::artifact::{nearest, ActRef, CompiledModel, Op};
use rapidnn_analyze::{FinishPlan, OpQuant, QuantMode, QuantPlan};

/// Everything the integer batch path needs, op-aligned with the model.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QuantState {
    /// The licensing plan (exposed via `CompiledModel::quant_plan`).
    pub(crate) plan: QuantPlan,
    /// One materialized kernel per op; `None` where the op runs f32.
    pub(crate) ops: Vec<Option<QuantOp>>,
}

/// One dense op lowered to integer tiles.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QuantOp {
    /// Fan-in per output neuron.
    pub(crate) nin: usize,
    /// Output neuron count.
    pub(crate) nout: usize,
    /// How the accumulator is fed.
    pub(crate) kind: QuantKind,
    /// Per-output bias on the `2^acc_frac` grid.
    pub(crate) bias_q: Vec<i32>,
    /// How the accumulator leaves the op.
    pub(crate) finish: QuantFinish,
}

/// Integer multiply strategy of one op.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QuantKind {
    /// Factored multiply-accumulate: `weights` is the expanded
    /// `nout × nin` quantized weight matrix, `xq` the quantized input
    /// codebook (indexed by input code).
    Madd {
        /// `nout × nin` weights at `2^w_frac`.
        weights: Vec<i16>,
        /// Input codebook at `2^x_frac`, one entry per code.
        xq: Vec<i16>,
    },
    /// Table gather: `rows[o * nin + i]` is the precomputed base offset
    /// of the weight's row in `table_q`; the input code indexes within
    /// the row.
    Gather {
        /// `nout × nin` row base offsets (`weight code × book_len`).
        rows: Vec<u32>,
        /// Compacted `weight_count × book_len` table at `2^acc_frac`.
        table_q: Vec<i16>,
    },
}

/// Integer finish: one requantize/dequantize at the op boundary.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum QuantFinish {
    /// `acc as f32 * inv` — output-stage identity.
    Dequant {
        /// `2^-acc_frac`.
        inv: f32,
    },
    /// `(acc as f32 * inv).max(0.0)` — output-stage ReLU.
    DequantRelu {
        /// `2^-acc_frac`.
        inv: f32,
    },
    /// Bucketed lookup `(acc - lo_q) >> shift`, entries precomputed
    /// through the exact scalar finish at each bucket center.
    Lut {
        /// Accumulator value of bucket 0's left edge.
        lo_q: i32,
        /// Accumulator-to-bucket right shift.
        shift: u32,
        /// Finished output codes (`encoded == true`).
        codes: Vec<u16>,
        /// Finished output floats (`encoded == false`).
        vals: Vec<f32>,
        /// Whether the op re-encodes (next op consumes codes).
        encoded: bool,
    },
}

impl QuantState {
    /// Builds the integer tiles for every licensed op of `plan`.
    ///
    /// `model` must have passed [`CompiledModel::verify`] (the caller,
    /// `CompiledModel::quantize`, guarantees it), so spans are in
    /// bounds; weight codes are still clamped defensively — this runs
    /// once at load time, never in the batch loop.
    pub(crate) fn materialize(model: &CompiledModel, plan: QuantPlan) -> QuantState {
        let pool_f = model.float_pool();
        let mut ops = Vec::with_capacity(model.ops.len());
        for (op, verdict) in model.ops.iter().zip(&plan.ops) {
            let OpQuant::Licensed(lic) = verdict else {
                ops.push(None);
                continue;
            };
            let Op::Dense {
                inputs,
                outputs,
                weight_codes,
                bias,
                table,
                act,
                encoder,
            } = op
            else {
                ops.push(None);
                continue;
            };
            let book = &pool_f[lic.input_book.start..lic.input_book.start + lic.input_book.len];
            let scale = exp2(lic.acc_frac);
            let bias_q = bias
                .slice(pool_f)
                .iter()
                .map(|&b| quant_i32(f64::from(b), scale))
                .collect();
            let kind = match lic.mode {
                QuantMode::Madd { w_frac, x_frac } => {
                    let ws = exp2(w_frac);
                    let last = lic.wvals.len().saturating_sub(1);
                    let mut weights = Vec::with_capacity(weight_codes.len);
                    model
                        .codes
                        .map_range(weight_codes.start, weight_codes.len, |c| {
                            let w = lic.wvals[(c as usize).min(last)];
                            weights.push(quant_i16(f64::from(w), ws));
                        });
                    let xs = exp2(x_frac);
                    let xq = book.iter().map(|&b| quant_i16(f64::from(b), xs)).collect();
                    QuantKind::Madd { weights, xq }
                }
                QuantMode::Gather => {
                    let blen = book.len();
                    let last = table.weight_count.saturating_sub(1) as u32;
                    let mut rows = Vec::with_capacity(weight_codes.len);
                    model
                        .codes
                        .map_range(weight_codes.start, weight_codes.len, |c| {
                            rows.push(u32::from(c).min(last) * blen as u32);
                        });
                    let mut table_q = Vec::with_capacity(table.weight_count * blen);
                    for w in 0..table.weight_count {
                        let row = table.row(pool_f, w as u16);
                        table_q.extend(row[..blen].iter().map(|&v| quant_i16(f64::from(v), scale)));
                    }
                    QuantKind::Gather { rows, table_q }
                }
            };
            let inv = 1.0 / scale;
            let finish = match lic.finish {
                FinishPlan::Direct => match act {
                    ActRef::Relu => QuantFinish::DequantRelu { inv },
                    _ => QuantFinish::Dequant { inv },
                },
                FinishPlan::Lut { lo_q, shift, len } => {
                    let enc = encoder.as_ref().map(|e| e.slice(pool_f));
                    let mut codes = Vec::new();
                    let mut vals = Vec::new();
                    let step = 1i64 << shift;
                    for idx in 0..len as i64 {
                        // Bucket center on the accumulator grid, exact
                        // in f64, finished through the scalar path.
                        let rep_q = lo_q + idx * step + step / 2;
                        let y = (rep_q as f64 / f64::from(scale)) as f32;
                        let a = act.apply(pool_f, y);
                        match enc {
                            Some(book) => codes.push(nearest(book, a)),
                            None => vals.push(a),
                        }
                    }
                    QuantFinish::Lut {
                        lo_q: i32::try_from(lo_q).unwrap_or(i32::MIN),
                        shift,
                        codes,
                        vals,
                        encoded: enc.is_some(),
                    }
                }
            };
            ops.push(Some(QuantOp {
                nin: *inputs,
                nout: *outputs,
                kind,
                bias_q,
                finish,
            }));
        }
        QuantState { plan, ops }
    }
}

fn exp2(bits: u32) -> f32 {
    (1u64 << bits.min(62)) as f32
}

/// Round-to-nearest quantization onto `scale`, saturated to `i16`.
fn quant_i16(v: f64, scale: f32) -> i16 {
    let q = (v * f64::from(scale)).round();
    q.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
}

/// Round-to-nearest quantization onto `scale`, saturated to `i32`.
fn quant_i32(v: f64, scale: f32) -> i32 {
    let q = (v * f64::from(scale)).round();
    q.clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32
}
