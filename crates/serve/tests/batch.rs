//! Batched-kernel properties: for every op-program topology the
//! compiler can emit (dense, conv + pools, residual), `infer_batch` must
//! be bit-for-bit identical to per-sample `infer`, a reused
//! [`BatchRunner`] must be stateless across batch sizes and models, the
//! engine's straggler wait must exit early when a batch fills and flush
//! partial batches at the deadline, and a saved artifact must serve
//! identically after a round trip through a real file.

mod common;

use common::{cnn_model, mlp_model, residual_model};
use rapidnn_prop::{check, usize_in, vec_f32};
use rapidnn_serve::{BatchRunner, CompiledModel, Engine, EngineConfig};
use rapidnn_tensor::SeededRng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn compiled_topologies() -> Vec<CompiledModel> {
    let mut rng = SeededRng::new(2024);
    [
        mlp_model(&mut rng),
        cnn_model(&mut rng),
        residual_model(&mut rng),
    ]
    .iter()
    .map(|m| CompiledModel::from_reinterpreted(m).unwrap())
    .collect()
}

#[test]
fn infer_batch_matches_per_sample_for_every_topology() {
    let models = compiled_topologies();
    check(24, |rng| {
        for model in &models {
            let rows = usize_in(rng, 1, 9);
            let flat = vec_f32(rng, rows * model.input_features(), -3.0, 3.0);
            let batched = model.infer_batch(&flat).unwrap();
            assert_eq!(batched.len(), rows);
            for (i, row) in batched.iter().enumerate() {
                let sample = &flat[i * model.input_features()..(i + 1) * model.input_features()];
                assert_eq!(
                    row,
                    &model.infer(sample).unwrap(),
                    "batched row {i} diverged from per-sample inference"
                );
            }
        }
    });
}

#[test]
fn reused_runner_is_stateless_across_sizes_and_models() {
    // One runner serving interleaved models and growing/shrinking batch
    // sizes must behave exactly like a fresh runner per call: no state
    // may leak through the scratch arena between runs.
    let models = compiled_topologies();
    let mut runner = BatchRunner::new();
    let mut rng = SeededRng::new(7);
    for round in 0..6 {
        for model in &models {
            let rows = [5, 1, 8, 2, 3, 1][round];
            let flat = vec_f32(&mut rng, rows * model.input_features(), -2.0, 2.0);
            let mut out = Vec::new();
            let n = runner.run(model, &flat, &mut out).unwrap();
            assert_eq!(n, rows);
            assert_eq!(out.len(), rows * model.output_features());
            let expected: Vec<f32> = model
                .infer_batch(&flat)
                .unwrap()
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(out, expected, "reused runner diverged on round {round}");
        }
    }
}

#[test]
fn empty_and_misaligned_batches() {
    let models = compiled_topologies();
    let mut runner = BatchRunner::new();
    for model in &models {
        let mut out = vec![1.0f32; 3]; // Stale contents must be cleared.
        assert_eq!(runner.run(model, &[], &mut out).unwrap(), 0);
        assert!(out.is_empty());
        assert!(model.infer_batch(&[]).unwrap().is_empty());
        // One value short of a whole row is a typed error, not a panic.
        let short = vec![0.0f32; model.input_features() - 1];
        assert!(runner.run(model, &short, &mut out).is_err());
        assert!(model.infer_batch(&short).is_err());
    }
}

#[test]
fn straggler_wait_exits_early_when_batch_fills() {
    // With max_wait far beyond the test budget, a filled batch must be
    // the thing that releases the worker — if the straggler wait ran to
    // its deadline these tickets could not resolve in time.
    let mut rng = SeededRng::new(11);
    let model = CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap();
    let features = model.input_features();
    let engine = Engine::start(
        model,
        EngineConfig {
            workers: 1,
            max_batch_size: 2,
            max_wait: Duration::from_secs(600),
            ..EngineConfig::default()
        },
    );
    let start = Instant::now();
    let a = engine
        .submit(vec_f32(&mut rng, features, -1.0, 1.0))
        .unwrap();
    let b = engine
        .submit(vec_f32(&mut rng, features, -1.0, 1.0))
        .unwrap();
    assert!(a.wait().is_ok());
    assert!(b.wait().is_ok());
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "full batch did not exit the straggler wait early"
    );
    engine.shutdown();
}

#[test]
fn partial_batch_flushes_at_deadline() {
    // A lone request in a wide batch window must be answered once
    // max_wait elapses — the worker may not hold it waiting for
    // stragglers that never come.
    let mut rng = SeededRng::new(12);
    let model = CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap();
    let features = model.input_features();
    let engine = Engine::start(
        model,
        EngineConfig {
            workers: 1,
            max_batch_size: 64,
            max_wait: Duration::from_millis(50),
            ..EngineConfig::default()
        },
    );
    let ticket = engine
        .submit(vec_f32(&mut rng, features, -1.0, 1.0))
        .unwrap();
    assert!(matches!(
        ticket.wait_timeout(Duration::from_secs(30)),
        Some(Ok(_))
    ));
    engine.shutdown();
}

#[test]
fn save_load_serve_round_trip_through_disk() {
    // Full deployment path: compile → save to a real file → load → serve
    // through the engine; every response must match the original
    // in-memory model bit for bit.
    let mut rng = SeededRng::new(13);
    let compiled = CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap();
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("batch-round-trip.rnna");
    compiled.save(&path).unwrap();
    let restored = CompiledModel::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored, compiled);

    let features = restored.input_features();
    let engine = Engine::start(
        restored,
        EngineConfig {
            workers: 2,
            max_batch_size: 8,
            max_wait: Duration::from_micros(200),
            ..EngineConfig::default()
        },
    );
    let inputs: Vec<Vec<f32>> = (0..32)
        .map(|_| vec_f32(&mut rng, features, -2.0, 2.0))
        .collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|input| engine.submit(input.clone()).unwrap())
        .collect();
    for (input, ticket) in inputs.iter().zip(tickets) {
        assert_eq!(ticket.wait().unwrap(), compiled.infer(input).unwrap());
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 32);
    assert_eq!(stats.failed, 0);
}
