//! Shared model builders for the serve integration tests: one network
//! per op-program topology the compiler can emit (dense, conv + pools,
//! residual), reinterpreted over synthetic calibration data.

#![allow(dead_code)] // Each test binary uses a subset of the builders.

use rapidnn_core::{ReinterpretOptions, ReinterpretedNetwork};
use rapidnn_data::SyntheticSpec;
use rapidnn_nn::{
    Activation, ActivationLayer, AvgPool2d, Conv2d, Dense, MaxPool2d, Network, Residual,
};
use rapidnn_tensor::{Padding, SeededRng};

pub fn options() -> ReinterpretOptions {
    ReinterpretOptions {
        weight_clusters: 8,
        input_clusters: 8,
        ..ReinterpretOptions::default()
    }
}

/// Untrained dense network with a sigmoid (lookup-table) hidden layer.
pub fn mlp_model(rng: &mut SeededRng) -> ReinterpretedNetwork {
    let mut net = Network::new(6);
    net.push(Dense::new(6, 10, rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    net.push(Dense::new(10, 3, rng));
    let data = SyntheticSpec::new(6, 3, 2.0).generate(40, rng).unwrap();
    ReinterpretedNetwork::build(&mut net, data.inputs(), &options(), rng).unwrap()
}

/// Conv network exercising both pool kinds and the ReLU comparator.
pub fn cnn_model(rng: &mut SeededRng) -> ReinterpretedNetwork {
    let mut net = Network::new(2 * 8 * 8);
    net.push(Conv2d::new(2, 8, 8, 3, 3, 1, Padding::Same, rng).unwrap());
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(MaxPool2d::new(3, 8, 8, 2).unwrap());
    net.push(Conv2d::new(3, 4, 4, 2, 3, 1, Padding::Same, rng).unwrap());
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(AvgPool2d::new(2, 4, 4, 2).unwrap());
    net.push(Dense::new(2 * 2 * 2, 4, rng));
    let data = SyntheticSpec::new(128, 4, 2.0).generate(30, rng).unwrap();
    ReinterpretedNetwork::build(&mut net, data.inputs(), &options(), rng).unwrap()
}

/// Network with a residual skip connection.
pub fn residual_model(rng: &mut SeededRng) -> ReinterpretedNetwork {
    let mut net = Network::new(6);
    net.push(Dense::new(6, 5, rng));
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(Residual::new(vec![
        Box::new(Dense::new(5, 5, rng)),
        Box::new(ActivationLayer::new(Activation::Relu)),
    ]));
    net.push(Dense::new(5, 2, rng));
    let data = SyntheticSpec::new(6, 2, 2.0).generate(40, rng).unwrap();
    ReinterpretedNetwork::build(&mut net, data.inputs(), &options(), rng).unwrap()
}
