//! Engine concurrency smoke tests: exactness under parallel load,
//! backpressure, draining shutdown, and input validation.

use rapidnn_core::{ReinterpretOptions, ReinterpretedNetwork};
use rapidnn_data::SyntheticSpec;
use rapidnn_nn::{Activation, ActivationLayer, Dense, Network};
use rapidnn_prop::vec_f32;
use rapidnn_serve::{CompiledModel, Engine, EngineConfig, ServeError};
use rapidnn_tensor::SeededRng;
use std::sync::Arc;
use std::time::Duration;

const FEATURES: usize = 6;

fn compiled_model(rng: &mut SeededRng) -> CompiledModel {
    let mut net = Network::new(FEATURES);
    net.push(Dense::new(FEATURES, 12, rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    net.push(Dense::new(12, 3, rng));
    let data = SyntheticSpec::new(FEATURES, 3, 2.0)
        .generate(40, rng)
        .unwrap();
    let options = ReinterpretOptions {
        weight_clusters: 8,
        input_clusters: 8,
        ..ReinterpretOptions::default()
    };
    let model = ReinterpretedNetwork::build(&mut net, data.inputs(), &options, rng).unwrap();
    CompiledModel::from_reinterpreted(&model).unwrap()
}

#[test]
fn concurrent_load_is_exact_and_complete() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 40;

    let mut rng = SeededRng::new(1);
    let model = compiled_model(&mut rng);
    let reference = model.clone();
    let engine = Arc::new(Engine::start(
        model,
        EngineConfig {
            workers: 4,
            queue_capacity: 64,
            max_batch_size: 8,
            max_wait: Duration::from_micros(200),
            ..EngineConfig::default()
        },
    ));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut rng = SeededRng::new(1000 + t as u64);
                let mut results = Vec::with_capacity(PER_THREAD);
                for _ in 0..PER_THREAD {
                    let input = vec_f32(&mut rng, FEATURES, -2.0, 2.0);
                    // Blocking submit: backpressure, never lost requests.
                    let ticket = engine.submit(input.clone()).unwrap();
                    results.push((input, ticket.wait().unwrap()));
                }
                results
            })
        })
        .collect();

    let mut total = 0usize;
    for handle in handles {
        for (input, output) in handle.join().unwrap() {
            assert_eq!(
                output,
                reference.infer(&input).unwrap(),
                "concurrent result diverged from single-threaded inference"
            );
            total += 1;
        }
    }
    assert_eq!(total, THREADS * PER_THREAD);

    let engine = Arc::into_inner(engine).expect("all workers returned their handles");
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.completed, (THREADS * PER_THREAD) as u64);
    assert_eq!(stats.failed, 0);
    assert!(stats.batches >= 1);
    assert!(stats.mean_batch_size >= 1.0);
    assert!(stats.throughput_rps > 0.0);
    assert!(stats.p99_latency >= stats.p50_latency);
}

#[test]
fn try_submit_applies_backpressure() {
    let mut rng = SeededRng::new(2);
    let engine = Engine::start(
        compiled_model(&mut rng),
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch_size: 1,
            max_wait: Duration::ZERO,
            ..EngineConfig::default()
        },
    );

    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..2000 {
        let input = vec_f32(&mut rng, FEATURES, -2.0, 2.0);
        match engine.try_submit(input) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // A 1-deep queue in front of real inference cannot absorb a tight
    // submission loop: some requests must bounce, and every accepted one
    // must still be answered.
    assert!(rejected > 0, "no request was ever rejected");
    let accepted = tickets.len() as u64;
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.completed, accepted);
    assert_eq!(stats.rejected, rejected);
}

#[test]
fn shutdown_drains_accepted_requests() {
    let mut rng = SeededRng::new(3);
    let model = compiled_model(&mut rng);
    let engine = Engine::start(
        model,
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch_size: 16,
            max_wait: Duration::from_millis(1),
            ..EngineConfig::default()
        },
    );
    let tickets: Vec<_> = (0..100)
        .map(|_| {
            engine
                .submit(vec_f32(&mut rng, FEATURES, -2.0, 2.0))
                .unwrap()
        })
        .collect();
    // Shut down immediately; every accepted request must still resolve.
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 100);
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap().len(), 3);
    }
}

#[test]
fn drain_answers_every_accepted_request() {
    let mut rng = SeededRng::new(7);
    let engine = Engine::start(
        compiled_model(&mut rng),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch_size: 16,
            max_wait: Duration::from_millis(1),
            ..EngineConfig::default()
        },
    );
    let tickets: Vec<_> = (0..120)
        .map(|_| {
            engine
                .submit(vec_f32(&mut rng, FEATURES, -2.0, 2.0))
                .unwrap()
        })
        .collect();
    let report = engine.drain(Duration::from_secs(30));
    assert!(report.joined, "workers should drain well inside 30s");
    assert_eq!(report.stats.completed, 120);
    assert_eq!(report.stats.failed, 0);
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap().len(), 3);
    }
}

#[test]
fn drain_with_zero_deadline_never_blocks_and_still_answers() {
    let mut rng = SeededRng::new(8);
    let engine = Engine::start(
        compiled_model(&mut rng),
        EngineConfig {
            workers: 1,
            queue_capacity: 256,
            max_batch_size: 4,
            max_wait: Duration::ZERO,
            ..EngineConfig::default()
        },
    );
    let tickets: Vec<_> = (0..64)
        .map(|_| {
            engine
                .submit(vec_f32(&mut rng, FEATURES, -2.0, 2.0))
                .unwrap()
        })
        .collect();
    // A zero deadline may detach the worker mid-queue (`joined` is then
    // false); either way the detached worker keeps draining, so every
    // accepted ticket must still resolve successfully.
    let report = engine.drain(Duration::ZERO);
    for ticket in tickets {
        assert_eq!(ticket.wait().unwrap().len(), 3);
    }
    // Both outcomes are legal; the invariant is no panic, no hang, and
    // a coherent stats snapshot.
    assert!(report.stats.submitted == 64);
}

#[test]
fn drain_report_counts_in_flight_at_deadline() {
    let mut rng = SeededRng::new(10);
    let engine = Engine::start(
        compiled_model(&mut rng),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch_size: 4,
            max_wait: Duration::ZERO,
            ..EngineConfig::default()
        },
    );
    // One oversized pre-batched job pins the single worker for several
    // milliseconds...
    let rows = 16 * 1024;
    let big = engine
        .submit_batch(vec_f32(&mut rng, rows * FEATURES, -2.0, 2.0))
        .unwrap();
    // ...while a few singles queue up behind it.
    let singles: Vec<_> = (0..8)
        .map(|_| {
            engine
                .submit(vec_f32(&mut rng, FEATURES, -2.0, 2.0))
                .unwrap()
        })
        .collect();
    let report = engine.drain(Duration::ZERO);
    assert!(
        !report.joined,
        "a 16k-row job cannot finish inside a zero deadline"
    );
    assert!(report.in_flight_at_deadline > 0);
    assert_eq!(
        report.in_flight_at_deadline,
        report.stats.submitted - report.stats.completed - report.stats.failed,
        "in-flight must be the gap between accepted and answered work"
    );
    // The detached worker keeps draining, so every accepted ticket is
    // still redeemable after the deadline expired.
    assert_eq!(big.wait().unwrap().len(), rows * 3);
    for ticket in singles {
        assert_eq!(ticket.wait().unwrap().len(), 3);
    }
}

#[test]
fn drain_on_idle_engine_joins_immediately() {
    let mut rng = SeededRng::new(9);
    let engine = Engine::start(
        compiled_model(&mut rng),
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    );
    let report = engine.drain(Duration::from_secs(10));
    assert!(report.joined);
    assert_eq!(report.in_flight_at_deadline, 0);
    assert_eq!(report.stats.submitted, 0);
    assert_eq!(report.stats.p99_latency, Duration::ZERO);
}

#[test]
fn invalid_width_is_rejected_before_enqueue() {
    let mut rng = SeededRng::new(4);
    let engine = Engine::start(compiled_model(&mut rng), EngineConfig::default());
    assert!(matches!(
        engine.try_submit(vec![0.0; FEATURES + 1]),
        Err(ServeError::InvalidInput(_))
    ));
    assert!(matches!(
        engine.submit(vec![]),
        Err(ServeError::InvalidInput(_))
    ));
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, 0);
}

#[test]
fn ticket_wait_timeout_returns_none_then_result() {
    let mut rng = SeededRng::new(5);
    let engine = Engine::start(
        compiled_model(&mut rng),
        EngineConfig {
            workers: 1,
            // Workers hold partial batches briefly, giving the zero
            // timeout below a deterministic miss.
            max_batch_size: 4,
            max_wait: Duration::from_millis(50),
            ..EngineConfig::default()
        },
    );
    let ticket = engine
        .submit(vec_f32(&mut rng, FEATURES, -1.0, 1.0))
        .unwrap();
    // Either the response is already in (None is not guaranteed), but a
    // long second wait must produce it exactly once.
    let first = ticket.wait_timeout(Duration::ZERO);
    if first.is_none() {
        let second = ticket.wait_timeout(Duration::from_secs(10));
        assert!(matches!(second, Some(Ok(_))));
    }
    engine.shutdown();
}

#[test]
fn dropping_engine_without_shutdown_does_not_hang() {
    let mut rng = SeededRng::new(6);
    let engine = Engine::start(compiled_model(&mut rng), EngineConfig::default());
    let ticket = engine
        .submit(vec_f32(&mut rng, FEATURES, -1.0, 1.0))
        .unwrap();
    drop(engine);
    // The accepted request was drained before the workers exited.
    assert!(ticket.wait().is_ok());
}
