//! Sharded-serving equivalence gate: a pipelined engine must be an
//! *execution* change only. For every op-program topology the compiler
//! emits (dense, conv + pools, residual), across artifact format
//! round-trips (v1, v2) and kernel paths (f32, analyzer-licensed
//! int16), an engine sharded into any stage count must answer every
//! request bit-for-bit identically to per-sample `infer` — the same
//! oracle the unsharded engine is held to — through both the
//! single-request and pre-batched submission paths.

mod common;

use common::{cnn_model, mlp_model, residual_model};
use rapidnn_prop::{check, usize_in, vec_f32};
use rapidnn_serve::{CompiledModel, Engine, EngineConfig, Ticket};
use rapidnn_tensor::SeededRng;
use std::time::Duration;

/// Every (topology × format round-trip × kernel path) variant under
/// test, with a label for failure messages.
fn model_variants() -> Vec<(String, CompiledModel)> {
    let mut rng = SeededRng::new(4242);
    let topologies = [
        (
            "mlp",
            CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap(),
        ),
        (
            "cnn",
            CompiledModel::from_reinterpreted(&cnn_model(&mut rng)).unwrap(),
        ),
        (
            "residual",
            CompiledModel::from_reinterpreted(&residual_model(&mut rng)).unwrap(),
        ),
    ];
    let mut variants = Vec::new();
    for (name, compiled) in topologies {
        let v1 = CompiledModel::from_bytes(&compiled.to_bytes_v1()).unwrap();
        let v2 = CompiledModel::from_bytes(&compiled.to_bytes()).unwrap();
        let mut int16 = v2.clone();
        int16.quantize().unwrap();
        variants.push((format!("{name}/v1/f32"), v1));
        variants.push((format!("{name}/v2/f32"), v2));
        variants.push((format!("{name}/v2/int16"), int16));
    }
    variants
}

/// The gate itself: random request mixes (singles and pre-batched
/// blocks) through engines at stage counts 1–4 and several worker
/// counts all reproduce the per-sample oracle bit for bit. Stage
/// counts above a model's cut points clamp rather than fail, so every
/// configuration below serves.
#[test]
fn sharded_engine_matches_per_sample_inference_bit_for_bit() {
    let variants = model_variants();
    // (stages, workers): stages 0 = classic pool (worker count varies),
    // stages 2..=4 = pipeline (one thread per stage, workers ignored).
    let configs = [(0usize, 1usize), (0, 4), (2, 1), (3, 1), (4, 1)];
    check(4, |rng| {
        for (label, model) in &variants {
            let features = model.input_features();
            for &(stages, workers) in &configs {
                let engine = Engine::start(
                    model.clone(),
                    EngineConfig {
                        workers,
                        stages,
                        max_batch_size: 4,
                        max_wait: Duration::from_micros(200),
                        ..EngineConfig::default()
                    },
                );
                if stages >= 2 {
                    let stats = engine.pipeline_stats().expect("sharded engine has stages");
                    assert!(stats.stages.len() >= 2 && stats.stages.len() <= stages);
                    assert!(stats.stages.iter().all(|s| s.cost_units > 0));
                    assert_eq!(stats.stages[0].ops.start, 0);
                    assert_eq!(
                        stats.stages.last().unwrap().ops.end,
                        model.op_count(),
                        "{label}: stages must tile the program"
                    );
                }
                // A mix of single submissions and pre-batched blocks,
                // redeemed in order against the per-sample oracle.
                let mut expected: Vec<(Vec<f32>, usize)> = Vec::new();
                let mut tickets: Vec<Ticket> = Vec::new();
                for _ in 0..6 {
                    let rows = usize_in(rng, 1, 4);
                    let flat = vec_f32(rng, rows * features, -2.0, 2.0);
                    let ticket = if rows == 1 {
                        engine.submit(flat.clone()).unwrap()
                    } else {
                        engine.submit_batch(flat.clone()).unwrap()
                    };
                    expected.push((flat, rows));
                    tickets.push(ticket);
                }
                for ((flat, rows), ticket) in expected.iter().zip(tickets) {
                    let got = ticket.wait().unwrap();
                    let mut oracle = Vec::new();
                    for r in 0..*rows {
                        oracle.extend(
                            model
                                .infer(&flat[r * features..(r + 1) * features])
                                .unwrap(),
                        );
                    }
                    assert_eq!(
                        bits(&got),
                        bits(&oracle),
                        "{label} stages={stages} workers={workers}: outputs diverged"
                    );
                }
                let stats = engine.shutdown();
                assert_eq!(stats.failed, 0, "{label} stages={stages}");
                assert_eq!(stats.completed, 6);
            }
        }
    });
}

/// A single pre-batched request larger than `max_batch_size` still
/// runs (alone, in one kernel call) on both the classic pool and the
/// sharded pipeline, and the batch-size distribution records the true
/// row counts.
#[test]
fn oversized_batch_submission_runs_alone() {
    let mut rng = SeededRng::new(77);
    let model = CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap();
    let features = model.input_features();
    for stages in [0usize, 3] {
        let engine = Engine::start(
            model.clone(),
            EngineConfig {
                workers: 1,
                stages,
                max_batch_size: 2,
                max_wait: Duration::ZERO,
                ..EngineConfig::default()
            },
        );
        let rows = 9; // > max_batch_size
        let flat = vec_f32(&mut rng, rows * features, -2.0, 2.0);
        let got = engine.submit_batch(flat.clone()).unwrap().wait().unwrap();
        let mut oracle = Vec::new();
        for r in 0..rows {
            oracle.extend(
                model
                    .infer(&flat[r * features..(r + 1) * features])
                    .unwrap(),
            );
        }
        assert_eq!(bits(&got), bits(&oracle), "stages={stages}");
        let stats = engine.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.batches, 1);
        // 9 rows land in the [8, 16) bucket of the size distribution.
        assert_eq!(stats.batch_size_buckets[3], 1, "stages={stages}");
        assert_eq!(stats.mean_batch_size, 9.0);
    }
}

/// Invalid pre-batched bodies are typed errors before the queue.
#[test]
fn misaligned_batch_submission_is_rejected() {
    let mut rng = SeededRng::new(78);
    let model = CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap();
    let features = model.input_features();
    let engine = Engine::start(model, EngineConfig::default());
    assert!(engine.try_submit_batch(vec![]).is_err());
    assert!(engine.try_submit_batch(vec![0.0; features + 1]).is_err());
    assert!(engine.try_submit_batch(vec![0.0; features]).is_ok());
    engine.shutdown();
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}
