//! Format v2 compatibility gate.
//!
//! The bit-packed v2 artifact must be an *encoding* change only: a
//! model round-tripped through v1 bytes, v2 bytes, or not serialized
//! at all must produce bit-for-bit identical inference results. On
//! top of the equivalence gate, v2 must actually compress — at least
//! 2x smaller than v1 on a code-dominated model — and re-serializing
//! a decoded v2 model must reproduce the bytes exactly.

mod common;

use common::{cnn_model, mlp_model, options, residual_model};
use rapidnn_core::ReinterpretedNetwork;
use rapidnn_data::SyntheticSpec;
use rapidnn_nn::{Activation, ActivationLayer, Dense, Network};
use rapidnn_prop::{check, usize_in, vec_f32, SeededRng};
use rapidnn_serve::{CompiledModel, FORMAT_VERSION, MAGIC};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Weight codes dominate this artifact (64*48 + 48*8 = 3456 of them),
/// so the 3-bit packing shows up in the total file size rather than
/// drowning in shared float pools.
fn code_heavy_model(rng: &mut SeededRng) -> ReinterpretedNetwork {
    let mut net = Network::new(64);
    net.push(Dense::new(64, 48, rng));
    net.push(ActivationLayer::new(Activation::Sigmoid));
    net.push(Dense::new(48, 8, rng));
    let data = SyntheticSpec::new(64, 8, 2.0).generate(40, rng).unwrap();
    ReinterpretedNetwork::build(&mut net, data.inputs(), &options(), rng).unwrap()
}

/// The gate: across every op-program topology the compiler emits,
/// random inputs infer bit-for-bit identically through the in-memory
/// model, its v1 round-trip, and its v2 round-trip — single samples
/// and batches both.
#[test]
fn v1_and_v2_round_trips_infer_bit_identically() {
    check(6, |rng| {
        let network = match usize_in(rng, 0, 3) {
            0 => mlp_model(rng),
            1 => cnn_model(rng),
            _ => residual_model(rng),
        };
        let compiled = CompiledModel::from_reinterpreted(&network).unwrap();
        let v1_bytes = compiled.to_bytes_v1();
        let v2_bytes = compiled.to_bytes();
        assert_eq!(u32::from_le_bytes(v1_bytes[4..8].try_into().unwrap()), 1);
        assert_eq!(
            u32::from_le_bytes(v2_bytes[4..8].try_into().unwrap()),
            FORMAT_VERSION
        );
        let v1 = CompiledModel::from_bytes(&v1_bytes).unwrap();
        let v2 = CompiledModel::from_bytes(&v2_bytes).unwrap();

        let features = compiled.input_features();
        for _ in 0..4 {
            let input = vec_f32(rng, features, -2.0, 2.0);
            let base = compiled.infer(&input).unwrap();
            assert_eq!(bits(&v1.infer(&input).unwrap()), bits(&base));
            assert_eq!(bits(&v2.infer(&input).unwrap()), bits(&base));
        }

        let rows = usize_in(rng, 1, 5);
        let batch: Vec<f32> = (0..rows)
            .flat_map(|_| vec_f32(rng, features, -2.0, 2.0))
            .collect();
        let base = compiled.infer_batch(&batch).unwrap();
        let from_v1 = v1.infer_batch(&batch).unwrap();
        let from_v2 = v2.infer_batch(&batch).unwrap();
        assert_eq!(base.len(), from_v1.len());
        assert_eq!(base.len(), from_v2.len());
        for ((a, b), c) in base.iter().zip(&from_v1).zip(&from_v2) {
            assert_eq!(bits(a), bits(b));
            assert_eq!(bits(a), bits(c));
        }
    });
}

/// The compression gate from the issue: v2 at least halves the
/// artifact size when codes dominate (8 clusters -> 3-bit codes vs
/// v1's wide 16-bit lanes).
#[test]
fn v2_is_at_least_twice_smaller_on_code_dominated_models() {
    let mut rng = SeededRng::new(7);
    let model = CompiledModel::from_reinterpreted(&code_heavy_model(&mut rng)).unwrap();
    let v1 = model.to_bytes_v1().len();
    let v2 = model.to_bytes().len();
    assert!(
        v2 * 2 <= v1,
        "v2 artifact is {v2} bytes, v1 is {v1}: less than the gated 2x saving"
    );
    // And the packed model still infers identically after loading.
    let loaded = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
    let input = vec_f32(&mut rng, model.input_features(), -2.0, 2.0);
    assert_eq!(
        bits(&loaded.infer(&input).unwrap()),
        bits(&model.infer(&input).unwrap())
    );
}

/// Serialization is deterministic and stable across a round-trip: the
/// writer planning sections from a decoded v2 model reproduces the
/// original bytes exactly.
#[test]
fn v2_round_trip_is_byte_stable() {
    let mut rng = SeededRng::new(11);
    let model = CompiledModel::from_reinterpreted(&mlp_model(&mut rng)).unwrap();
    let bytes = model.to_bytes();
    assert_eq!(&bytes[..4], MAGIC);
    let reloaded = CompiledModel::from_bytes(&bytes).unwrap();
    assert_eq!(reloaded.to_bytes(), bytes);
    // v1 re-serialization from either side also agrees.
    assert_eq!(reloaded.to_bytes_v1(), model.to_bytes_v1());
}
