//! Artifact round-trip, equivalence and corruption properties.
//!
//! The load-time contract under test: any byte buffer — truncated,
//! bit-flipped, or adversarially structured with a valid checksum — either
//! decodes to a model whose `infer` matches the source network bit for
//! bit, or fails with a typed [`ArtifactError`]. It never panics.

mod common;

use common::{cnn_model, mlp_model, residual_model};
use rapidnn_core::ReinterpretedNetwork;
use rapidnn_prop::{check, usize_in, vec_f32};
use rapidnn_serve::{ArtifactError, CompiledModel, FORMAT_VERSION, MAGIC};
use rapidnn_tensor::SeededRng;

fn assert_bit_identical(
    model: &ReinterpretedNetwork,
    compiled: &CompiledModel,
    rng: &mut SeededRng,
) {
    for _ in 0..16 {
        let sample = vec_f32(rng, model.input_features(), -3.0, 3.0);
        let expected = model.infer_sample(&sample).unwrap();
        let actual = compiled.infer(&sample).unwrap();
        assert_eq!(actual, expected, "compiled inference diverged");
    }
}

#[test]
fn compiled_mlp_matches_source_bit_for_bit() {
    check(8, |rng| {
        let model = mlp_model(rng);
        let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
        assert_bit_identical(&model, &compiled, rng);
    });
}

#[test]
fn compiled_cnn_matches_source_bit_for_bit() {
    let mut rng = SeededRng::new(101);
    let model = cnn_model(&mut rng);
    let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
    assert_bit_identical(&model, &compiled, &mut rng);
}

#[test]
fn compiled_residual_matches_source_bit_for_bit() {
    let mut rng = SeededRng::new(102);
    let model = residual_model(&mut rng);
    let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
    assert_bit_identical(&model, &compiled, &mut rng);
}

#[test]
fn batch_inference_matches_per_sample() {
    let mut rng = SeededRng::new(103);
    let model = mlp_model(&mut rng);
    let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
    let flat = vec_f32(&mut rng, 5 * compiled.input_features(), -2.0, 2.0);
    let rows = compiled.infer_batch(&flat).unwrap();
    assert_eq!(rows.len(), 5);
    for (i, row) in rows.iter().enumerate() {
        let sample = &flat[i * compiled.input_features()..(i + 1) * compiled.input_features()];
        assert_eq!(row, &compiled.infer(sample).unwrap());
    }
    assert!(compiled.infer_batch(&flat[1..]).is_err());
}

#[test]
fn round_trip_preserves_every_topology() {
    let mut rng = SeededRng::new(104);
    for model in [
        mlp_model(&mut rng),
        cnn_model(&mut rng),
        residual_model(&mut rng),
    ] {
        let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
        let restored = CompiledModel::from_bytes(&compiled.to_bytes()).unwrap();
        assert_eq!(restored, compiled);
        assert_bit_identical(&model, &restored, &mut rng);
    }
}

#[test]
fn save_and_load_round_trip_through_disk() {
    let mut rng = SeededRng::new(105);
    let model = mlp_model(&mut rng);
    let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
    let path = std::env::temp_dir().join(format!("rapidnn-artifact-{}.rnna", std::process::id()));
    compiled.save(&path).unwrap();
    let restored = CompiledModel::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored, compiled);
}

#[test]
fn every_truncation_is_a_typed_error() {
    let mut rng = SeededRng::new(106);
    let bytes = CompiledModel::from_reinterpreted(&mlp_model(&mut rng))
        .unwrap()
        .to_bytes();
    // Every strict prefix must fail without panicking.
    for len in 0..bytes.len() {
        match CompiledModel::from_bytes(&bytes[..len]) {
            Err(
                ArtifactError::Truncated { .. }
                | ArtifactError::BadMagic
                | ArtifactError::ChecksumMismatch { .. }
                | ArtifactError::Malformed(_),
            ) => {}
            Err(other) => panic!("unexpected error at prefix {len}: {other}"),
            Ok(_) => panic!("prefix {len} of {} decoded successfully", bytes.len()),
        }
    }
}

#[test]
fn bit_flips_are_always_detected() {
    let mut rng = SeededRng::new(107);
    let model = mlp_model(&mut rng);
    let compiled = CompiledModel::from_reinterpreted(&model).unwrap();
    let bytes = compiled.to_bytes();
    check(rapidnn_prop::DEFAULT_CASES, |rng| {
        let mut corrupt = bytes.clone();
        let pos = usize_in(rng, 0, corrupt.len());
        let bit = usize_in(rng, 0, 8);
        corrupt[pos] ^= 1 << bit;
        // Any single-bit flip hits the magic, version, length, payload
        // (checksummed) or the checksum itself — all typed failures.
        assert!(CompiledModel::from_bytes(&corrupt).is_err());
    });
}

#[test]
fn adversarial_payloads_with_valid_checksums_never_panic() {
    // Random garbage framed as a well-formed artifact (correct magic,
    // version, length and checksum) must be rejected by structural
    // validation, not by a panic.
    check(128, |rng| {
        let payload_len = usize_in(rng, 0, 256);
        let payload: Vec<u8> = (0..payload_len)
            .map(|_| usize_in(rng, 0, 256) as u8)
            .collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv(&payload).to_le_bytes());
        assert!(CompiledModel::from_bytes(&bytes).is_err());
    });
}

#[test]
fn bad_magic_and_future_version_are_typed() {
    assert!(matches!(
        CompiledModel::from_bytes(b"LAYRxxxxxxxxxxxxxxxxxxxx"),
        Err(ArtifactError::BadMagic)
    ));
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    bytes.extend_from_slice(&fnv(&[]).to_le_bytes());
    assert!(matches!(
        CompiledModel::from_bytes(&bytes),
        Err(ArtifactError::UnsupportedVersion { found, supported })
            if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
    ));
}

/// Local FNV-1a 64 copy so tests can frame adversarial payloads.
fn fnv(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}
