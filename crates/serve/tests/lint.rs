//! Soundness of the static analyzer against artifact corruption.
//!
//! The load-time contract has exactly two legal outcomes for any byte
//! string: either the linter flags it with an `error` diagnostic, or it
//! loads and infers without panicking. The property test below throws
//! hundreds of random single-field corruptions at serialized artifacts
//! of every op-program topology and checks there is no third outcome —
//! and, in the other direction, that everything classic validation
//! rejects the analyzer also rejects (the analyzer subsumes `validate`).

mod common;

use rapidnn_prop::{any_u64, check, usize_in, SeededRng};
use rapidnn_serve::{lint_bytes, CompiledModel, Engine, EngineConfig, ServeError};

/// FNV-1a 64 over the payload, mirroring the artifact trailer, so a
/// corruption can be "repaired" to survive decoding and reach the
/// analyzer instead of the checksum gate.
fn repair_checksum(bytes: &mut [u8]) {
    let end = bytes.len() - 8;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes[16..end] {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    bytes[end..].copy_from_slice(&hash.to_le_bytes());
}

/// Applies one random single-field corruption. Three kinds: a byte or
/// an aligned u64 field inside the payload with the checksum repaired
/// (structural damage the analyzer must judge), or a raw byte anywhere
/// without repair (framing damage the decoder must catch).
fn mutate(rng: &mut SeededRng, bytes: &mut [u8]) {
    let payload = 16..bytes.len() - 8;
    match usize_in(rng, 0, 3) {
        0 => {
            let at = usize_in(rng, payload.start, payload.end);
            bytes[at] = any_u64(rng) as u8;
            repair_checksum(bytes);
        }
        1 if payload.len() >= 8 => {
            let at = usize_in(rng, payload.start, payload.end - 7);
            let v = any_u64(rng);
            // Small values hit the interesting range of counts, spans
            // and geometry fields; huge ones test the extent caps.
            let v = if v.is_multiple_of(2) { v % 4096 } else { v };
            bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
            repair_checksum(bytes);
        }
        _ => {
            let at = usize_in(rng, 0, bytes.len());
            bytes[at] ^= 1 << usize_in(rng, 0, 8);
        }
    }
}

#[test]
fn corrupted_artifacts_are_flagged_or_harmless() {
    let mut rng = SeededRng::new(2024);
    // Both wire formats of every topology: corruption of v2's packed
    // section directory must obey the same two-outcome contract as
    // v1's wide pools.
    let artifacts: Vec<Vec<u8>> = [
        common::mlp_model(&mut rng),
        common::cnn_model(&mut rng),
        common::residual_model(&mut rng),
    ]
    .iter()
    .flat_map(|net| {
        let model = CompiledModel::from_reinterpreted(net).expect("compile");
        [model.to_bytes(), model.to_bytes_v1()]
    })
    .collect();

    // 3 topologies x 2 formats x 200 seeds = 1200 corrupted mutants.
    check(200, |rng| {
        for clean in &artifacts {
            let mut bytes = clean.clone();
            mutate(rng, &mut bytes);

            let report = lint_bytes(&bytes);
            let loaded = CompiledModel::from_bytes(&bytes);

            if let Err(e) = &loaded {
                // Subsumption: whatever decode/validate rejects, the
                // analyzer must reject too.
                assert!(
                    report.has_errors(),
                    "validate rejected ({e}) but the lint report is error-free:\n{report}"
                );
            }
            if !report.has_errors() {
                // Analyzer-clean mutants must load and infer without
                // panicking: no third outcome.
                let model = loaded
                    .unwrap_or_else(|e| panic!("lint report clean but load failed: {e}\n{report}"));
                let sample = vec![0.25f32; model.input_features()];
                let run = std::panic::catch_unwind(|| model.infer(&sample).map(|_| ()));
                assert!(run.is_ok(), "analyzer-clean mutant panicked in infer");

                // The same two-outcome contract extends through the
                // optimizer: an analyzer-clean mutant optimizes (its
                // certificate re-proven inside `optimize`), and the
                // result loads and infers mutant-identically without
                // panicking — certificates over mutants never validate
                // incorrectly, and there is still no third outcome.
                let run = std::panic::catch_unwind(|| {
                    let (opt, _cert) = model.optimize()?;
                    let reloaded = CompiledModel::from_bytes_strict(&opt.to_bytes())?;
                    let expect: Vec<u32> =
                        model.infer(&sample)?.iter().map(|x| x.to_bits()).collect();
                    let got: Vec<u32> = reloaded
                        .infer(&sample)?
                        .iter()
                        .map(|x| x.to_bits())
                        .collect();
                    assert_eq!(expect, got, "optimized mutant diverged from its source");
                    Ok::<(), ServeError>(())
                });
                assert!(
                    run.expect("optimizing an analyzer-clean mutant panicked")
                        .is_ok(),
                    "analyzer-clean mutant failed to optimize + reload"
                );
            } else if let Ok(model) = loaded {
                // Analyzer-rejected but decodable mutants must be
                // refused by `optimize` with a typed report — never
                // silently rewritten, never a panic.
                let run = std::panic::catch_unwind(|| match model.optimize() {
                    Err(ServeError::Rejected(r)) => assert!(r.has_errors()),
                    Ok(_) => panic!("optimize accepted an analyzer-rejected mutant"),
                    Err(e) => panic!("optimize failed untypedly: {e}"),
                });
                assert!(run.is_ok(), "optimize panicked on a flagged mutant");
            }
        }
    });
}

#[test]
fn verified_inference_is_bit_identical() {
    let mut rng = SeededRng::new(7);
    for net in [
        common::mlp_model(&mut rng),
        common::cnn_model(&mut rng),
        common::residual_model(&mut rng),
    ] {
        let model = CompiledModel::from_reinterpreted(&net).expect("compile");
        let features = model.input_features();
        // Enough rows to engage the LANES-block kernels, not just the
        // serial tail, plus odd remainder rows.
        let rows = 19;
        let batch: Vec<f32> = (0..rows * features).map(|i| (i as f32).sin()).collect();
        let baseline = model.infer_batch(&batch).expect("unverified inference");

        let mut verified = model.clone();
        assert!(!verified.is_verified());
        let report = verified.verify().expect("verification");
        assert!(!report.has_errors());
        assert!(verified.is_verified());

        let fast = verified.infer_batch(&batch).expect("verified inference");
        assert_eq!(baseline.len(), fast.len());
        for (b, f) in baseline.iter().zip(&fast) {
            assert_eq!(b, f, "verified kernels diverged from clamped kernels");
        }

        // The flag is not serialized: a round-trip drops it.
        let reloaded = CompiledModel::from_bytes(&verified.to_bytes()).expect("round-trip");
        assert!(!reloaded.is_verified());
    }
}

#[test]
fn strict_load_accepts_real_artifacts_and_verifies_them() {
    let mut rng = SeededRng::new(13);
    let model = CompiledModel::from_reinterpreted(&common::mlp_model(&mut rng)).expect("compile");
    let strict = CompiledModel::from_bytes_strict(&model.to_bytes()).expect("strict load");
    assert!(strict.is_verified());
}

#[test]
fn start_verified_serves_and_rejects() {
    let mut rng = SeededRng::new(99);
    let model = CompiledModel::from_reinterpreted(&common::mlp_model(&mut rng)).expect("compile");
    let sample = vec![0.5f32; model.input_features()];
    let expected = model.infer(&sample).expect("direct inference");

    let engine = Engine::start_verified(model, EngineConfig::default()).expect("verified start");
    assert!(engine.model().is_verified());
    let ticket = engine.try_submit(sample).expect("submit");
    assert_eq!(ticket.wait().expect("response"), expected);
    engine.shutdown();

    // A corrupted artifact that decodes but fails analysis is refused
    // before any worker starts.
    let mut rng = SeededRng::new(100);
    let model = CompiledModel::from_reinterpreted(&common::mlp_model(&mut rng)).expect("compile");
    let mut bytes = model.to_bytes();
    // Lie about the output width (second payload u64): decodes fine,
    // analyzer errors with a shape mismatch.
    bytes[24..32].copy_from_slice(&9999u64.to_le_bytes());
    repair_checksum(&mut bytes);
    match CompiledModel::from_bytes_strict(&bytes) {
        Err(ServeError::Rejected(report)) => assert!(report.has_errors()),
        other => panic!("expected rejection, got {other:?}"),
    }
}
