//! Certified-optimizer property gate: `CompiledModel::optimize` must
//! be a *footprint* change only. For every op-program topology the
//! compiler emits (dense, conv + pools, residual), across artifact
//! format round-trips (v1, v2), kernel paths (f32, analyzer-licensed
//! int16), and engine stage counts, the optimized model answers every
//! request bit-for-bit identically to its unoptimized source — while a
//! model with injected dead rows provably shrinks and an invalid model
//! is refused with a typed report, never silently rewritten.

mod common;

use common::{cnn_model, mlp_model, residual_model};
use rapidnn_analyze::Pass;
use rapidnn_prop::{check, usize_in, vec_f32};
use rapidnn_serve::{CompiledModel, Engine, EngineConfig, ServeError};
use rapidnn_tensor::SeededRng;
use std::time::Duration;

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Every topology as (label, source model, optimized model) with the
/// certificate already translation-validated inside `optimize`.
fn optimized_pairs() -> Vec<(&'static str, CompiledModel, CompiledModel)> {
    let mut rng = SeededRng::new(20108);
    [
        ("mlp", mlp_model(&mut rng)),
        ("cnn", cnn_model(&mut rng)),
        ("residual", residual_model(&mut rng)),
    ]
    .into_iter()
    .map(|(name, net)| {
        let base = CompiledModel::from_reinterpreted(&net).unwrap();
        let (opt, _cert) = base.optimize().unwrap();
        (name, base, opt)
    })
    .collect()
}

/// The bit-identity gate: optimized artifacts reproduce their source
/// bit for bit across v1/v2 round-trips, f32/int16 kernel paths, and
/// per-sample vs batch entry points.
#[test]
fn optimized_models_infer_bit_identically() {
    let pairs = optimized_pairs();
    // (label suffix, v1 round-trip?, quantized?)
    let variants = [
        ("v1/f32", true, false),
        ("v2/f32", false, false),
        ("v2/int16", false, true),
    ];
    check(8, |rng| {
        for (name, base, opt) in &pairs {
            for (suffix, v1, quantized) in variants {
                let realize = |m: &CompiledModel| {
                    let bytes = if v1 { m.to_bytes_v1() } else { m.to_bytes() };
                    let mut m = CompiledModel::from_bytes_strict(&bytes).unwrap();
                    if quantized {
                        m.quantize().unwrap();
                    }
                    m
                };
                let (base, opt) = (realize(base), realize(opt));
                let sample = vec_f32(rng, base.input_features(), -2.0, 2.0);
                assert_eq!(
                    bits(&base.infer(&sample).unwrap()),
                    bits(&opt.infer(&sample).unwrap()),
                    "{name}/{suffix}: per-sample inference diverged"
                );
                let rows = usize_in(rng, 2, 4);
                let block = vec_f32(rng, rows * base.input_features(), -2.0, 2.0);
                assert_eq!(
                    base.infer_batch(&block).unwrap(),
                    opt.infer_batch(&block).unwrap(),
                    "{name}/{suffix}: batch inference diverged"
                );
            }
        }
    });
}

/// Optimized models still serve through every execution shape: the
/// classic worker pool and sharded pipelines answer with the *source*
/// model's per-sample bits.
#[test]
fn optimized_models_shard_bit_identically() {
    let pairs = optimized_pairs();
    check(3, |rng| {
        for (name, base, opt) in &pairs {
            let features = opt.input_features();
            for stages in [0usize, 2, 3] {
                let engine = Engine::start(
                    opt.clone(),
                    EngineConfig {
                        workers: 2,
                        stages,
                        max_batch_size: 4,
                        max_wait: Duration::from_micros(200),
                        ..EngineConfig::default()
                    },
                );
                let flat = vec_f32(rng, 3 * features, -2.0, 2.0);
                let got = engine.submit_batch(flat.clone()).unwrap().wait().unwrap();
                let mut oracle = Vec::new();
                for r in 0..3 {
                    oracle.extend(base.infer(&flat[r * features..(r + 1) * features]).unwrap());
                }
                assert_eq!(
                    bits(&got),
                    bits(&oracle),
                    "{name} stages={stages}: sharded optimized outputs diverged"
                );
                engine.shutdown();
            }
        }
    });
}

/// A model with injected dead rows provably shrinks: the optimizer
/// removes exactly the injected rows, the v2 artifact gets strictly
/// smaller (the packed code width narrows back down), and the shrunken
/// model still loads strict, quantizes, and infers identically.
#[test]
fn injected_dead_rows_provably_shrink_v2() {
    let mut rng = SeededRng::new(515);
    let net = mlp_model(&mut rng);
    let program = rapidnn_analyze::Program::from_reinterpreted(&net);
    // 8-row tables + 9 dead rows = 17 rows: v2 code width grows from 3
    // to 5 bits, so compaction must win it back.
    let dense_tables = 2;
    let padded = rapidnn_analyze::inject_dead_rows(&program, 9);
    let model = CompiledModel::from_program(&padded).unwrap();

    let (opt, cert) = model.optimize().unwrap();
    assert_eq!(cert.removed(Pass::RowCompaction), 9 * dense_tables);

    let before = model.to_bytes();
    let after = opt.to_bytes();
    assert!(
        after.len() < before.len(),
        "optimized v2 artifact must shrink ({} -> {} bytes)",
        before.len(),
        after.len()
    );

    // The shrunken artifact still loads strict and quantizes; the f32
    // path reproduces the unpadded source bit for bit, and the int16
    // path reproduces the *quantized* source (integer kernels are a
    // separate path, so they get their own oracle).
    let reloaded = CompiledModel::from_bytes_strict(&after).unwrap();
    let mut reloaded_q = reloaded.clone();
    reloaded_q.quantize().unwrap();
    let base = CompiledModel::from_reinterpreted(&net).unwrap();
    let mut base_q = base.clone();
    base_q.quantize().unwrap();
    for _ in 0..16 {
        let sample = vec_f32(&mut rng, base.input_features(), -2.0, 2.0);
        let expected = bits(&base.infer(&sample).unwrap());
        assert_eq!(expected, bits(&model.infer(&sample).unwrap()));
        assert_eq!(expected, bits(&opt.infer(&sample).unwrap()));
        assert_eq!(expected, bits(&reloaded.infer(&sample).unwrap()));
        assert_eq!(
            bits(&base_q.infer(&sample).unwrap()),
            bits(&reloaded_q.infer(&sample).unwrap()),
            "int16 path diverged after optimization"
        );
    }
}

/// An invalid model is refused with the typed report — optimize never
/// rewrites a program the analyzer rejects.
#[test]
fn invalid_model_is_rejected_not_rewritten() {
    let mut rng = SeededRng::new(99);
    let net = mlp_model(&mut rng);
    let mut program = rapidnn_analyze::Program::from_reinterpreted(&net);
    // Poison a reachable product-table entry: structure stays valid,
    // analysis fails.
    let offset = match &program.ops[0] {
        rapidnn_analyze::Op::Dense { table, .. } => table.offset,
        _ => unreachable!("mlp starts with a dense op"),
    };
    program.floats.to_mut()[offset] = f32::NAN;
    let model = CompiledModel::from_program(&program).unwrap();
    match model.optimize() {
        Err(ServeError::Rejected(report)) => assert!(report.has_errors(), "{report}"),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
}
