//! Property-based tests of the memristor substrate's arithmetic and
//! timing invariants.

use proptest::prelude::*;
use rapidnn_memristor::nor::{carry_save, full_adder, ripple_add, NorContext, FULL_ADDER_STEPS};
use rapidnn_memristor::{AdderTree, Crossbar, RIPPLE_CYCLES_PER_BIT, STAGE_CYCLES};

proptest! {
    /// Ripple addition through NOR-built full adders equals integer
    /// addition modulo the word width.
    #[test]
    fn ripple_add_is_modular_addition(a in any::<u32>(), b in any::<u32>(), width in 1u32..33) {
        let mask = if width == 32 { u32::MAX as u64 } else { (1u64 << width) - 1 };
        let (sum, steps) = ripple_add(a as u64 & mask, b as u64 & mask, width);
        prop_assert_eq!(sum, (a as u64 + b as u64) & mask);
        prop_assert_eq!(steps, u64::from(width) * FULL_ADDER_STEPS);
    }

    /// Carry-save preserves sums for any operand triple.
    #[test]
    fn carry_save_preserves_sum(a in 0u64..(1 << 20), b in 0u64..(1 << 20), c in 0u64..(1 << 20)) {
        let (s, carry) = carry_save(a, b, c, 40);
        prop_assert_eq!(s + carry, a + b + c);
    }

    /// The full adder costs exactly 12 NOR steps for every input pattern.
    #[test]
    fn full_adder_cost_is_input_independent(a: bool, b: bool, cin: bool) {
        let mut ctx = NorContext::new();
        let (sum, cout) = full_adder(&mut ctx, a, b, cin);
        let total = a as u8 + b as u8 + cin as u8;
        prop_assert_eq!(sum, total & 1 == 1);
        prop_assert_eq!(cout, total >= 2);
        prop_assert_eq!(ctx.steps(), FULL_ADDER_STEPS);
    }

    /// The adder tree equals the integer sum and its cycle model follows
    /// the paper's 13-cycle-stage + 13·N-ripple formula.
    #[test]
    fn adder_tree_sum_and_cycles(
        operands in proptest::collection::vec(0u64..(1 << 10), 2..80),
        width in 12u32..32,
    ) {
        let tree = AdderTree::new(width);
        let report = tree.add_all(&operands);
        let mask = (1u64 << width) - 1;
        prop_assert_eq!(report.sum, operands.iter().sum::<u64>() & mask);
        prop_assert_eq!(
            report.cycles,
            report.csa_stages * STAGE_CYCLES + u64::from(width) * RIPPLE_CYCLES_PER_BIT
        );
        prop_assert_eq!(tree.predicted_stages(operands.len()), report.csa_stages);
    }

    /// Crossbar NOR is exactly columnwise !(a|b) and each step costs one
    /// cycle.
    #[test]
    fn crossbar_nor_semantics(
        a_bits in proptest::collection::vec(any::<bool>(), 1..64),
        b_pattern in any::<u64>(),
    ) {
        let cols = a_bits.len();
        let b_bits: Vec<bool> = (0..cols).map(|i| (b_pattern >> (i % 64)) & 1 == 1).collect();
        let mut xb = Crossbar::new(3, cols);
        xb.write_row(0, &a_bits);
        xb.write_row(1, &b_bits);
        let before = xb.stats().nor_cycles;
        xb.nor_rows(0, 1, 2);
        let out = xb.read_row(2);
        for ((o, &a), &b) in out.iter().zip(&a_bits).zip(&b_bits) {
            prop_assert_eq!(*o, !(a | b));
        }
        prop_assert_eq!(xb.stats().nor_cycles, before + 1);
    }

    /// De Morgan holds when built from crossbar NOR/NOT rows:
    /// NOT(NOR(a,b)) == OR(a,b).
    #[test]
    fn crossbar_de_morgan(
        a_bits in proptest::collection::vec(any::<bool>(), 1..32),
        seed in any::<u64>(),
    ) {
        let cols = a_bits.len();
        let mut rng = rapidnn_tensor::SeededRng::new(seed);
        let b_bits: Vec<bool> = (0..cols).map(|_| rng.chance(0.5)).collect();
        let mut xb = Crossbar::new(4, cols);
        xb.write_row(0, &a_bits);
        xb.write_row(1, &b_bits);
        xb.nor_rows(0, 1, 2);
        xb.not_row(2, 3);
        let or = xb.read_row(3);
        for ((o, &a), &b) in or.iter().zip(&a_bits).zip(&b_bits) {
            prop_assert_eq!(*o, a | b);
        }
    }
}
