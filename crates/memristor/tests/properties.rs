//! Property-based tests of the memristor substrate's arithmetic and
//! timing invariants.

use rapidnn_memristor::nor::{carry_save, full_adder, ripple_add, NorContext, FULL_ADDER_STEPS};
use rapidnn_memristor::{AdderTree, Crossbar, RIPPLE_CYCLES_PER_BIT, STAGE_CYCLES};
use rapidnn_prop::{any_u64, check, usize_in, DEFAULT_CASES};

/// Ripple addition through NOR-built full adders equals integer
/// addition modulo the word width.
#[test]
fn ripple_add_is_modular_addition() {
    check(DEFAULT_CASES, |rng| {
        let a = (any_u64(rng) & u32::MAX as u64) as u32;
        let b = (any_u64(rng) & u32::MAX as u64) as u32;
        let width = usize_in(rng, 1, 33) as u32;
        let mask = if width == 32 {
            u32::MAX as u64
        } else {
            (1u64 << width) - 1
        };
        let (sum, steps) = ripple_add(a as u64 & mask, b as u64 & mask, width);
        assert_eq!(sum, (a as u64 + b as u64) & mask);
        assert_eq!(steps, u64::from(width) * FULL_ADDER_STEPS);
    });
}

/// Carry-save preserves sums for any operand triple.
#[test]
fn carry_save_preserves_sum() {
    check(DEFAULT_CASES, |rng| {
        let a = usize_in(rng, 0, 1 << 20) as u64;
        let b = usize_in(rng, 0, 1 << 20) as u64;
        let c = usize_in(rng, 0, 1 << 20) as u64;
        let (s, carry) = carry_save(a, b, c, 40);
        assert_eq!(s + carry, a + b + c);
    });
}

/// The full adder costs exactly 12 NOR steps for every input pattern.
#[test]
fn full_adder_cost_is_input_independent() {
    for a in [false, true] {
        for b in [false, true] {
            for cin in [false, true] {
                let mut ctx = NorContext::new();
                let (sum, cout) = full_adder(&mut ctx, a, b, cin);
                let total = a as u8 + b as u8 + cin as u8;
                assert_eq!(sum, total & 1 == 1);
                assert_eq!(cout, total >= 2);
                assert_eq!(ctx.steps(), FULL_ADDER_STEPS);
            }
        }
    }
}

/// The adder tree equals the integer sum and its cycle model follows
/// the paper's 13-cycle-stage + 13·N-ripple formula.
#[test]
fn adder_tree_sum_and_cycles() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 2, 80);
        let operands: Vec<u64> = (0..n).map(|_| usize_in(rng, 0, 1 << 10) as u64).collect();
        let width = usize_in(rng, 12, 32) as u32;
        let tree = AdderTree::new(width);
        let report = tree.add_all(&operands);
        let mask = (1u64 << width) - 1;
        assert_eq!(report.sum, operands.iter().sum::<u64>() & mask);
        assert_eq!(
            report.cycles,
            report.csa_stages * STAGE_CYCLES + u64::from(width) * RIPPLE_CYCLES_PER_BIT
        );
        assert_eq!(tree.predicted_stages(operands.len()), report.csa_stages);
    });
}

/// Crossbar NOR is exactly columnwise !(a|b) and each step costs one
/// cycle.
#[test]
fn crossbar_nor_semantics() {
    check(DEFAULT_CASES, |rng| {
        let cols = usize_in(rng, 1, 64);
        let a_bits: Vec<bool> = (0..cols).map(|_| rng.chance(0.5)).collect();
        let b_pattern = any_u64(rng);
        let b_bits: Vec<bool> = (0..cols)
            .map(|i| (b_pattern >> (i % 64)) & 1 == 1)
            .collect();
        let mut xb = Crossbar::new(3, cols);
        xb.write_row(0, &a_bits);
        xb.write_row(1, &b_bits);
        let before = xb.stats().nor_cycles;
        xb.nor_rows(0, 1, 2);
        let out = xb.read_row(2);
        for ((o, &a), &b) in out.iter().zip(&a_bits).zip(&b_bits) {
            assert_eq!(*o, !(a | b));
        }
        assert_eq!(xb.stats().nor_cycles, before + 1);
    });
}

/// De Morgan holds when built from crossbar NOR/NOT rows:
/// NOT(NOR(a,b)) == OR(a,b).
#[test]
fn crossbar_de_morgan() {
    check(DEFAULT_CASES, |rng| {
        let cols = usize_in(rng, 1, 32);
        let a_bits: Vec<bool> = (0..cols).map(|_| rng.chance(0.5)).collect();
        let b_bits: Vec<bool> = (0..cols).map(|_| rng.chance(0.5)).collect();
        let mut xb = Crossbar::new(4, cols);
        xb.write_row(0, &a_bits);
        xb.write_row(1, &b_bits);
        xb.nor_rows(0, 1, 2);
        xb.not_row(2, 3);
        let or = xb.read_row(3);
        for ((o, &a), &b) in or.iter().zip(&a_bits).zip(&b_bits) {
            assert_eq!(*o, a | b);
        }
    });
}
