//! Single-level memristor substrate: device model, bit-level crossbar,
//! MAGIC NOR in-memory logic, and NOR-built adders.
//!
//! RAPIDNN's weighted-accumulation block performs *all* arithmetic inside a
//! memristive crossbar by composing MAGIC-style NOR operations — the only
//! primitive a bipolar resistive memory needs (§4.1.2, refs [41–44]). This
//! crate rebuilds that stack from the device up:
//!
//! * [`Device`] — a VTEAM-flavoured threshold-switching single-level cell
//!   with seeded process variation (the paper verifies circuits under 10 %
//!   variation with 5000 Monte-Carlo runs);
//! * [`Crossbar`] — a bit-addressable memory whose rows can be combined
//!   with single-cycle NOR operations, with cycle/energy accounting;
//! * [`nor`] — NOR-only gate library (NOT/OR/AND/XOR/full adder) with
//!   verified gate counts; a full adder costs 12 NOR steps, so one
//!   crossbar addition stage costs 13 cycles (1 output-initialisation
//!   cycle + 12 NOR cycles), matching the paper's "each stage takes 13
//!   cycles";
//! * [`AdderTree`] — the carry-save reduction that adds `w·u` partial
//!   values in `O(log k)` 13-cycle stages plus a final `13·N`-cycle
//!   carry-propagate stage (§4.1.2).
//!
//! # Examples
//!
//! ```
//! use rapidnn_memristor::AdderTree;
//!
//! let tree = AdderTree::new(16);
//! let report = tree.add_all(&[3, 5, 7, 11, 13]);
//! assert_eq!(report.sum, 39);
//! assert!(report.csa_stages >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder;
mod crossbar;
mod device;
pub mod nor;

pub use adder::{AdderReport, AdderTree, RIPPLE_CYCLES_PER_BIT, STAGE_CYCLES};
pub use crossbar::{Crossbar, CrossbarStats};
pub use device::{Device, DeviceConfig, DeviceState};
