/// Cycle and energy accounting of a crossbar's in-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CrossbarStats {
    /// Cycles spent on NOR execution (1 per NOR step; a step applies to a
    /// whole row in parallel).
    pub nor_cycles: u64,
    /// Cycles spent writing rows.
    pub write_cycles: u64,
    /// Cycles spent reading rows.
    pub read_cycles: u64,
    /// Energy in femtojoules.
    pub energy_fj: f64,
}

impl CrossbarStats {
    /// Total cycles of all operation classes.
    pub fn total_cycles(&self) -> u64 {
        self.nor_cycles + self.write_cycles + self.read_cycles
    }
}

/// Energy of one NOR step per participating column, in femtojoules.
///
/// Derived from Table 1: a 1K×1K crossbar draws 3.7 mW at 1 GHz, i.e.
/// 3.7 pJ per fully-active cycle, ≈ 3.6 fJ per column.
pub(crate) const NOR_ENERGY_PER_COL_FJ: f64 = 3.6;
/// Energy of writing one cell, in femtojoules.
pub(crate) const WRITE_ENERGY_PER_CELL_FJ: f64 = 10.0;
/// Energy of reading one cell, in femtojoules.
pub(crate) const READ_ENERGY_PER_CELL_FJ: f64 = 1.0;

/// Bit-level crossbar memory supporting MAGIC-style row-parallel NOR.
///
/// Rows are bit-vectors; a NOR *step* combines two source rows into a
/// destination row, element-wise across every column simultaneously — the
/// in-memory SIMD that makes the 13-cycle addition stage independent of
/// operand width (§4.1.2).
///
/// The crossbar tracks cycles and energy so higher-level blocks can report
/// hardware cost without re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    bits: Vec<bool>,
    stats: CrossbarStats,
}

impl Crossbar {
    /// Creates a zeroed crossbar of `rows x cols` cells.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be positive");
        Crossbar {
            rows,
            cols,
            bits: vec![false; rows * cols],
            stats: CrossbarStats::default(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Accumulated cycle/energy statistics.
    pub fn stats(&self) -> CrossbarStats {
        self.stats
    }

    /// Resets the statistics counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CrossbarStats::default();
    }

    /// Writes a row of bits (costs one cycle).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range or `bits.len() != cols`.
    pub fn write_row(&mut self, row: usize, bits: &[bool]) {
        assert!(row < self.rows, "row {row} out of range");
        assert_eq!(bits.len(), self.cols, "row width mismatch");
        self.bits[row * self.cols..(row + 1) * self.cols].copy_from_slice(bits);
        self.stats.write_cycles += 1;
        self.stats.energy_fj += WRITE_ENERGY_PER_CELL_FJ * self.cols as f64;
    }

    /// Reads a row of bits (costs one cycle).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of range.
    pub fn read_row(&mut self, row: usize) -> Vec<bool> {
        assert!(row < self.rows, "row {row} out of range");
        self.stats.read_cycles += 1;
        self.stats.energy_fj += READ_ENERGY_PER_CELL_FJ * self.cols as f64;
        self.bits[row * self.cols..(row + 1) * self.cols].to_vec()
    }

    /// Reads a single cell without cycle cost (debug/verification aid).
    pub fn peek(&self, row: usize, col: usize) -> bool {
        self.bits[row * self.cols + col]
    }

    /// Executes one MAGIC NOR step: `dst[c] = !(a[c] | b[c])` for every
    /// column `c`, in a single cycle.
    ///
    /// # Panics
    ///
    /// Panics when any row index is out of range or `dst` aliases a source
    /// (MAGIC requires a separate pre-SET output row).
    pub fn nor_rows(&mut self, a: usize, b: usize, dst: usize) {
        assert!(a < self.rows && b < self.rows && dst < self.rows);
        assert!(
            dst != a && dst != b,
            "MAGIC NOR output must be a distinct row"
        );
        for c in 0..self.cols {
            let va = self.bits[a * self.cols + c];
            let vb = self.bits[b * self.cols + c];
            self.bits[dst * self.cols + c] = !(va | vb);
        }
        self.stats.nor_cycles += 1;
        self.stats.energy_fj += NOR_ENERGY_PER_COL_FJ * self.cols as f64;
    }

    /// Executes a NOT as `NOR(a, a)` into `dst` (one cycle).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::nor_rows`].
    pub fn not_row(&mut self, a: usize, dst: usize) {
        assert!(a < self.rows && dst < self.rows);
        assert!(dst != a, "MAGIC NOT output must be a distinct row");
        for c in 0..self.cols {
            let va = self.bits[a * self.cols + c];
            self.bits[dst * self.cols + c] = !va;
        }
        self.stats.nor_cycles += 1;
        self.stats.energy_fj += NOR_ENERGY_PER_COL_FJ * self.cols as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(pattern: &[u8]) -> Vec<bool> {
        pattern.iter().map(|&b| b != 0).collect()
    }

    #[test]
    fn write_read_round_trip() {
        let mut xb = Crossbar::new(4, 8);
        let row = bits(&[1, 0, 1, 1, 0, 0, 1, 0]);
        xb.write_row(2, &row);
        assert_eq!(xb.read_row(2), row);
        assert_eq!(xb.stats().write_cycles, 1);
        assert_eq!(xb.stats().read_cycles, 1);
    }

    #[test]
    fn nor_is_columnwise() {
        let mut xb = Crossbar::new(4, 4);
        xb.write_row(0, &bits(&[0, 0, 1, 1]));
        xb.write_row(1, &bits(&[0, 1, 0, 1]));
        xb.nor_rows(0, 1, 2);
        assert_eq!(xb.read_row(2), bits(&[1, 0, 0, 0]));
        assert_eq!(xb.stats().nor_cycles, 1);
    }

    #[test]
    fn not_is_nor_with_self() {
        let mut xb = Crossbar::new(3, 4);
        xb.write_row(0, &bits(&[1, 0, 1, 0]));
        xb.not_row(0, 1);
        assert_eq!(xb.read_row(1), bits(&[0, 1, 0, 1]));
    }

    #[test]
    #[should_panic(expected = "distinct row")]
    fn nor_rejects_aliased_output() {
        let mut xb = Crossbar::new(3, 2);
        xb.nor_rows(0, 1, 0);
    }

    #[test]
    fn energy_scales_with_columns() {
        let mut small = Crossbar::new(3, 8);
        let mut large = Crossbar::new(3, 64);
        small.write_row(0, &[false; 8]);
        large.write_row(0, &[false; 64]);
        small.nor_rows(0, 1, 2);
        large.nor_rows(0, 1, 2);
        assert!(large.stats().energy_fj > small.stats().energy_fj);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut xb = Crossbar::new(3, 2);
        xb.write_row(0, &bits(&[1, 1]));
        xb.nor_rows(0, 1, 2);
        assert!(xb.stats().total_cycles() > 0);
        xb.reset_stats();
        assert_eq!(xb.stats(), CrossbarStats::default());
        // Contents survive.
        assert!(xb.peek(0, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_rejected() {
        let _ = Crossbar::new(0, 4);
    }
}
