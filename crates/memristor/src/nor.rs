//! NOR-only gate library with serial-step accounting.
//!
//! MAGIC gives a memristive crossbar exactly one logic primitive: NOR.
//! Everything else — NOT, OR, AND, XOR, full adders — is composed from it
//! (§4.1.2, refs [41–43]). This module builds that composition and *counts
//! serial NOR steps*, which is what determines crossbar latency: steps
//! apply to whole rows in parallel, so an N-bit carry-save addition stage
//! costs the same number of steps as a 1-bit one.
//!
//! The verified costs ground the paper's timing model:
//! a full adder takes [`FULL_ADDER_STEPS`] = 12 serial NOR steps, so a
//! 13-cycle stage = 1 output-initialisation cycle + 12 NOR cycles.

/// Serial NOR steps of the full adder built by [`full_adder`].
pub const FULL_ADDER_STEPS: u64 = 12;

/// Execution context counting serial NOR steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NorContext {
    steps: u64,
}

impl NorContext {
    /// Creates a fresh context.
    pub fn new() -> Self {
        NorContext::default()
    }

    /// Serial NOR steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The primitive: logical NOR, one step.
    pub fn nor(&mut self, a: bool, b: bool) -> bool {
        self.steps += 1;
        !(a | b)
    }

    /// NOT via `NOR(a, a)` — 1 step.
    pub fn not(&mut self, a: bool) -> bool {
        self.nor(a, a)
    }

    /// OR via `NOT(NOR(a, b))` — 2 steps.
    pub fn or(&mut self, a: bool, b: bool) -> bool {
        let n = self.nor(a, b);
        self.not(n)
    }

    /// AND via `NOR(NOT a, NOT b)` — 3 steps.
    pub fn and(&mut self, a: bool, b: bool) -> bool {
        let na = self.not(a);
        let nb = self.not(b);
        self.nor(na, nb)
    }

    /// XOR via `NOR(NOR(a, b), AND(a, b))` — 5 steps.
    pub fn xor(&mut self, a: bool, b: bool) -> bool {
        let n1 = self.nor(a, b);
        let n2 = self.and(a, b);
        self.nor(n1, n2)
    }
}

/// One-bit full adder composed purely of NOR steps.
///
/// Returns `(sum, carry_out)` and consumes exactly [`FULL_ADDER_STEPS`]
/// steps: first XOR (5), second XOR sharing its AND with the carry (5),
/// carry OR (2).
pub fn full_adder(ctx: &mut NorContext, a: bool, b: bool, cin: bool) -> (bool, bool) {
    // x1 = a XOR b, keeping AND(a, b) for the carry.
    let n1 = ctx.nor(a, b);
    let na = ctx.not(a);
    let nb = ctx.not(b);
    let and_ab = ctx.nor(na, nb);
    let x1 = ctx.nor(n1, and_ab);
    // sum = x1 XOR cin, keeping AND(x1, cin).
    let n2 = ctx.nor(x1, cin);
    let nx1 = ctx.not(x1);
    let ncin = ctx.not(cin);
    let and_x1c = ctx.nor(nx1, ncin);
    let sum = ctx.nor(n2, and_x1c);
    // cout = AND(a, b) OR AND(x1, cin).
    let ncarry = ctx.nor(and_ab, and_x1c);
    let cout = ctx.not(ncarry);
    (sum, cout)
}

/// Adds two `width`-bit numbers by rippling [`full_adder`] through the bit
/// positions; returns `(sum, steps)` where the sum wraps modulo
/// `2^width`.
pub fn ripple_add(a: u64, b: u64, width: u32) -> (u64, u64) {
    let mut ctx = NorContext::new();
    let mut carry = false;
    let mut sum = 0u64;
    for i in 0..width {
        let (s, c) = full_adder(&mut ctx, (a >> i) & 1 == 1, (b >> i) & 1 == 1, carry);
        if s {
            sum |= 1 << i;
        }
        carry = c;
    }
    (sum, ctx.steps())
}

/// Carry-save step: reduces three `width`-bit numbers to a sum word and a
/// carry word (shifted left by one). The crossbar performs all bit
/// positions of this step in parallel, so its latency is one full-adder
/// depth regardless of `width`.
pub fn carry_save(a: u64, b: u64, c: u64, width: u32) -> (u64, u64) {
    let mut ctx = NorContext::new();
    let mut sum = 0u64;
    let mut carry = 0u64;
    for i in 0..width {
        let (s, co) = full_adder(
            &mut ctx,
            (a >> i) & 1 == 1,
            (b >> i) & 1 == 1,
            (c >> i) & 1 == 1,
        );
        if s {
            sum |= 1 << i;
        }
        if co && i + 1 < width {
            carry |= 1 << (i + 1);
        }
    }
    (sum, carry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_gates_match_boolean_algebra() {
        let mut ctx = NorContext::new();
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(ctx.nor(a, b), !(a | b));
                assert_eq!(ctx.or(a, b), a | b);
                assert_eq!(ctx.and(a, b), a & b);
                assert_eq!(ctx.xor(a, b), a ^ b);
            }
            assert_eq!(ctx.not(a), !a);
        }
    }

    #[test]
    fn gate_costs_are_stable() {
        let mut ctx = NorContext::new();
        ctx.not(true);
        assert_eq!(ctx.steps(), 1);
        let mut ctx = NorContext::new();
        ctx.or(true, false);
        assert_eq!(ctx.steps(), 2);
        let mut ctx = NorContext::new();
        ctx.and(true, false);
        assert_eq!(ctx.steps(), 3);
        let mut ctx = NorContext::new();
        ctx.xor(true, false);
        assert_eq!(ctx.steps(), 5);
    }

    #[test]
    fn full_adder_truth_table_and_cost() {
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let mut ctx = NorContext::new();
                    let (sum, cout) = full_adder(&mut ctx, a, b, cin);
                    let total = a as u8 + b as u8 + cin as u8;
                    assert_eq!(sum, total & 1 == 1, "sum({a},{b},{cin})");
                    assert_eq!(cout, total >= 2, "cout({a},{b},{cin})");
                    assert_eq!(ctx.steps(), FULL_ADDER_STEPS);
                }
            }
        }
    }

    #[test]
    fn full_adder_fits_the_papers_13_cycle_stage() {
        // 1 initialisation cycle + FULL_ADDER_STEPS NOR cycles = 13.
        assert_eq!(1 + FULL_ADDER_STEPS, 13);
    }

    #[test]
    fn ripple_add_matches_integer_addition() {
        for &(a, b) in &[(0u64, 0u64), (1, 1), (123, 456), (u16::MAX as u64, 1)] {
            let (sum, steps) = ripple_add(a, b, 32);
            assert_eq!(sum, (a + b) & 0xFFFF_FFFF);
            assert_eq!(steps, 32 * FULL_ADDER_STEPS);
        }
    }

    #[test]
    fn ripple_add_wraps_at_width() {
        let (sum, _) = ripple_add(0xFF, 1, 8);
        assert_eq!(sum, 0);
    }

    #[test]
    fn carry_save_preserves_the_sum() {
        for &(a, b, c) in &[(5u64, 9, 13), (0, 0, 0), (255, 255, 255), (1000, 1, 23)] {
            let (s, carry) = carry_save(a, b, c, 32);
            assert_eq!(s + carry, a + b + c, "csa({a},{b},{c})");
        }
    }
}
