use crate::nor;

/// Cycles per carry-save stage: one output-row initialisation cycle plus
/// [`nor::FULL_ADDER_STEPS`] NOR cycles ("Each stage takes 13 cycles to
/// complete the addition operation", §4.1.2).
pub const STAGE_CYCLES: u64 = 1 + nor::FULL_ADDER_STEPS;

/// Cycles per bit of the final carry-propagate stage ("the last stage
/// requires 13·N cycles to perform addition while propagating carry").
pub const RIPPLE_CYCLES_PER_BIT: u64 = STAGE_CYCLES;

/// Result of an in-memory multi-operand addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderReport {
    /// The arithmetic sum (wrapping at the tree's bit width).
    pub sum: u64,
    /// Number of carry-save reduction stages executed.
    pub csa_stages: u64,
    /// Total crossbar cycles: `csa_stages · 13 + 13 · width` for the final
    /// carry-propagate addition.
    pub cycles: u64,
}

/// In-memory carry-save adder tree (§4.1.2).
///
/// Adds many operands by repeatedly applying width-parallel carry-save
/// stages (3 numbers → 2, one full-adder depth each) and finishing with a
/// single carry-propagating ripple addition. Latency model:
///
/// * each CSA stage: [`STAGE_CYCLES`] = 13 cycles, independent of width
///   (all bit positions execute in parallel inside the crossbar);
/// * final stage: `13 · width` cycles (carry must ripple).
///
/// # Examples
///
/// ```
/// use rapidnn_memristor::{AdderTree, STAGE_CYCLES};
///
/// let tree = AdderTree::new(8);
/// let r = tree.add_all(&[1, 2, 3]);
/// assert_eq!(r.sum, 6);
/// assert_eq!(r.csa_stages, 1);
/// assert_eq!(r.cycles, STAGE_CYCLES + 13 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderTree {
    width: u32,
}

impl AdderTree {
    /// Creates an adder tree over `width`-bit words.
    ///
    /// # Panics
    ///
    /// Panics when `width` is 0 or exceeds 63 (the carry word needs one
    /// spare bit in the u64 model).
    pub fn new(width: u32) -> Self {
        assert!((1..=63).contains(&width), "width must be in 1..=63");
        AdderTree { width }
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Adds all operands, returning sum and hardware cost.
    ///
    /// Empty input sums to zero at zero cost; a single operand needs no
    /// addition.
    pub fn add_all(&self, operands: &[u64]) -> AdderReport {
        let mask = (1u64 << self.width) - 1;
        match operands.len() {
            0 => {
                return AdderReport {
                    sum: 0,
                    csa_stages: 0,
                    cycles: 0,
                }
            }
            1 => {
                return AdderReport {
                    sum: operands[0] & mask,
                    csa_stages: 0,
                    cycles: 0,
                }
            }
            _ => {}
        }

        let mut layer: Vec<u64> = operands.iter().map(|&v| v & mask).collect();
        let mut csa_stages = 0u64;
        while layer.len() > 2 {
            let mut next = Vec::with_capacity(layer.len() * 2 / 3 + 2);
            for chunk in layer.chunks(3) {
                match chunk {
                    [a, b, c] => {
                        let (s, carry) = nor::carry_save(*a, *b, *c, self.width);
                        next.push(s & mask);
                        next.push(carry & mask);
                    }
                    rest => next.extend_from_slice(rest),
                }
            }
            layer = next;
            csa_stages += 1;
        }

        let (sum, _) = if layer.len() == 2 {
            nor::ripple_add(layer[0], layer[1], self.width)
        } else {
            (layer[0], 0)
        };
        AdderReport {
            sum: sum & mask,
            csa_stages,
            cycles: csa_stages * STAGE_CYCLES + RIPPLE_CYCLES_PER_BIT * self.width as u64,
        }
    }

    /// Predicted stage count for `n` operands without executing
    /// (`≈ log_{3/2}(n)`, the paper's `log` bound).
    pub fn predicted_stages(&self, n: usize) -> u64 {
        if n <= 2 {
            return 0;
        }
        let mut count = n as u64;
        let mut stages = 0;
        while count > 2 {
            count = count - count / 3; // 3 -> 2 reduction
            stages += 1;
        }
        stages
    }

    /// Predicted total cycles for adding `n` operands.
    pub fn predicted_cycles(&self, n: usize) -> u64 {
        if n <= 1 {
            return 0;
        }
        self.predicted_stages(n) * STAGE_CYCLES + RIPPLE_CYCLES_PER_BIT * self.width as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidnn_tensor::SeededRng;

    #[test]
    fn sums_match_integer_arithmetic() {
        let tree = AdderTree::new(32);
        let mut rng = SeededRng::new(3);
        for _ in 0..20 {
            let n = 1 + rng.index(40);
            let operands: Vec<u64> = (0..n).map(|_| rng.index(1 << 20) as u64).collect();
            let expected: u64 = operands.iter().sum();
            assert_eq!(tree.add_all(&operands).sum, expected & 0xFFFF_FFFF);
        }
    }

    #[test]
    fn empty_and_single_are_free() {
        let tree = AdderTree::new(16);
        assert_eq!(
            tree.add_all(&[]),
            AdderReport {
                sum: 0,
                csa_stages: 0,
                cycles: 0
            }
        );
        let r = tree.add_all(&[42]);
        assert_eq!(r.sum, 42);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn stage_count_grows_logarithmically() {
        let tree = AdderTree::new(16);
        let stages_for = |n: usize| tree.add_all(&vec![1u64; n]).csa_stages;
        // 3 -> 1 stage; doubling operand count adds O(1) stages.
        assert_eq!(stages_for(3), 1);
        let s64 = stages_for(64);
        let s128 = stages_for(128);
        assert!(s128 - s64 <= 3, "{s64} -> {s128}");
        assert!(s64 >= 6); // ~= log_1.5(64/2) ≈ 8.5
    }

    #[test]
    fn predicted_matches_executed_stages() {
        let tree = AdderTree::new(16);
        for n in [2usize, 3, 5, 9, 17, 64, 100, 333] {
            let executed = tree.add_all(&vec![1u64; n]).csa_stages;
            assert_eq!(tree.predicted_stages(n), executed, "n={n}");
        }
    }

    #[test]
    fn cycle_model_matches_paper_formula() {
        let tree = AdderTree::new(16);
        let r = tree.add_all(&[7u64; 12]);
        assert_eq!(r.cycles, r.csa_stages * 13 + 13 * 16);
        assert_eq!(tree.predicted_cycles(12), r.cycles);
    }

    #[test]
    fn wide_sums_wrap_at_width() {
        let tree = AdderTree::new(8);
        let r = tree.add_all(&[200, 100]);
        assert_eq!(r.sum, (200 + 100) % 256);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_zero_width() {
        let _ = AdderTree::new(0);
    }
}
