use rapidnn_tensor::SeededRng;

/// Resistive state of a single-level memristor cell.
///
/// RAPIDNN deliberately uses *single-level* cells ("commonly used
/// single-level memristor devices, e.g., Intel 3D Xpoint") rather than the
/// multi-level cells of analog PIM designs, because two-state devices are
/// reliable enough for commercialisation (§1, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceState {
    /// Low-resistance state, logic `1` (`R_ON`).
    On,
    /// High-resistance state, logic `0` (`R_OFF`).
    Off,
}

impl DeviceState {
    /// Logic value of the state.
    pub fn as_bit(self) -> bool {
        matches!(self, DeviceState::On)
    }

    /// State for a logic value.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            DeviceState::On
        } else {
            DeviceState::Off
        }
    }
}

/// Nominal parameters of the memristor device (VTEAM-style threshold
/// switching, after Kvatinsky et al. [45/54]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Low (ON) resistance in ohms.
    pub r_on: f64,
    /// High (OFF) resistance in ohms; the paper selects a device with a
    /// large OFF/ON ratio.
    pub r_off: f64,
    /// SET threshold voltage in volts (positive polarity switches ON).
    pub v_set: f64,
    /// RESET threshold voltage in volts (negative polarity switches OFF).
    pub v_reset: f64,
    /// Relative process variation (1 sigma) applied to thresholds; the
    /// paper validates at 10 %.
    pub variation: f64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            r_on: 10e3,
            r_off: 10e6,
            v_set: 1.0,
            v_reset: -1.0,
            variation: 0.10,
        }
    }
}

/// Behavioural model of one bipolar threshold-switching memristor.
///
/// The model captures exactly what the MAGIC-NOR and CAM circuits rely on:
/// the device holds one of two resistance states and flips when the applied
/// voltage crosses its (variation-perturbed) threshold.
///
/// # Examples
///
/// ```
/// use rapidnn_memristor::{Device, DeviceConfig, DeviceState};
/// use rapidnn_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(1);
/// let mut cell = Device::sample(&DeviceConfig::default(), &mut rng);
/// cell.apply_voltage(1.5);
/// assert_eq!(cell.state(), DeviceState::On);
/// cell.apply_voltage(-1.5);
/// assert_eq!(cell.state(), DeviceState::Off);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    state: DeviceState,
    v_set: f64,
    v_reset: f64,
    r_on: f64,
    r_off: f64,
}

impl Device {
    /// Creates a device with *nominal* thresholds (no variation).
    pub fn nominal(config: &DeviceConfig) -> Self {
        Device {
            state: DeviceState::Off,
            v_set: config.v_set,
            v_reset: config.v_reset,
            r_on: config.r_on,
            r_off: config.r_off,
        }
    }

    /// Samples a device instance with Gaussian threshold variation — one
    /// draw of the paper's Monte-Carlo analysis.
    pub fn sample(config: &DeviceConfig, rng: &mut SeededRng) -> Self {
        let mut jitter = |nominal: f64| nominal * (1.0 + config.variation * rng.normal() as f64);
        Device {
            state: DeviceState::Off,
            v_set: jitter(config.v_set).max(0.05),
            v_reset: jitter(config.v_reset).min(-0.05),
            r_on: config.r_on,
            r_off: config.r_off,
        }
    }

    /// Current resistive state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// Current resistance in ohms.
    pub fn resistance(&self) -> f64 {
        match self.state {
            DeviceState::On => self.r_on,
            DeviceState::Off => self.r_off,
        }
    }

    /// Effective SET threshold after variation.
    pub fn v_set(&self) -> f64 {
        self.v_set
    }

    /// Effective RESET threshold after variation.
    pub fn v_reset(&self) -> f64 {
        self.v_reset
    }

    /// Applies a voltage pulse; the device switches when the pulse crosses
    /// its threshold ("the output device switches … whenever the voltage
    /// across the device exceeds a threshold", §4.1.2).
    pub fn apply_voltage(&mut self, volts: f64) {
        if volts >= self.v_set {
            self.state = DeviceState::On;
        } else if volts <= self.v_reset {
            self.state = DeviceState::Off;
        }
    }

    /// Forces a state (used for memory writes).
    pub fn write(&mut self, state: DeviceState) {
        self.state = state;
    }

    /// Executes a two-input MAGIC NOR with this device as the output cell:
    /// the output is pre-SET to ON, then the input devices' conductances
    /// divide the execution voltage; any ON input drives the output
    /// voltage above `v_reset`'s magnitude and RESETs it.
    pub fn magic_nor(&mut self, a: DeviceState, b: DeviceState) {
        self.state = DeviceState::On; // initialisation cycle
        let any_input_on = a.as_bit() || b.as_bit();
        // Voltage-divider outcome: an ON input produces a large negative
        // drop across the (pre-SET) output, resetting it.
        let effective_drop = if any_input_on {
            self.v_reset * 1.5
        } else {
            self.v_reset * 0.4
        };
        self.apply_voltage(effective_drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_map_to_bits() {
        assert!(DeviceState::On.as_bit());
        assert!(!DeviceState::Off.as_bit());
        assert_eq!(DeviceState::from_bit(true), DeviceState::On);
        assert_eq!(DeviceState::from_bit(false), DeviceState::Off);
    }

    #[test]
    fn switching_respects_thresholds() {
        let mut d = Device::nominal(&DeviceConfig::default());
        assert_eq!(d.state(), DeviceState::Off);
        d.apply_voltage(0.5); // below threshold: no switch
        assert_eq!(d.state(), DeviceState::Off);
        d.apply_voltage(1.0);
        assert_eq!(d.state(), DeviceState::On);
        d.apply_voltage(-0.5); // below reset magnitude
        assert_eq!(d.state(), DeviceState::On);
        d.apply_voltage(-1.2);
        assert_eq!(d.state(), DeviceState::Off);
    }

    #[test]
    fn resistance_tracks_state() {
        let cfg = DeviceConfig::default();
        let mut d = Device::nominal(&cfg);
        assert_eq!(d.resistance(), cfg.r_off);
        d.write(DeviceState::On);
        assert_eq!(d.resistance(), cfg.r_on);
        // Large OFF/ON ratio, as the paper requires.
        assert!(cfg.r_off / cfg.r_on >= 100.0);
    }

    #[test]
    fn magic_nor_truth_table() {
        let mut out = Device::nominal(&DeviceConfig::default());
        for (a, b, expected) in [
            (false, false, true),
            (false, true, false),
            (true, false, false),
            (true, true, false),
        ] {
            out.magic_nor(DeviceState::from_bit(a), DeviceState::from_bit(b));
            assert_eq!(out.state().as_bit(), expected, "NOR({a},{b})");
        }
    }

    #[test]
    fn monte_carlo_nor_survives_ten_percent_variation() {
        // Mirrors the paper's 5000-run Monte-Carlo robustness check: with
        // 10 % threshold variation, MAGIC NOR must stay correct.
        let cfg = DeviceConfig::default();
        let mut rng = SeededRng::new(42);
        for _ in 0..5000 {
            let mut out = Device::sample(&cfg, &mut rng);
            for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
                out.magic_nor(DeviceState::from_bit(a), DeviceState::from_bit(b));
                assert_eq!(out.state().as_bit(), !(a || b));
            }
        }
    }

    #[test]
    fn sampled_thresholds_differ_but_keep_polarity() {
        let cfg = DeviceConfig::default();
        let mut rng = SeededRng::new(7);
        let a = Device::sample(&cfg, &mut rng);
        let b = Device::sample(&cfg, &mut rng);
        assert_ne!(a.v_set(), b.v_set());
        assert!(a.v_set() > 0.0 && b.v_set() > 0.0);
        assert!(a.v_reset() < 0.0 && b.v_reset() < 0.0);
    }
}
