//! Property-based tests for the neural-network substrate.

use rapidnn_nn::{loss, Activation, ActivationLayer, Dense, Layer, Mode, Network};
use rapidnn_prop::{check, usize_in, vec_f32, DEFAULT_CASES};
use rapidnn_tensor::{Shape, Tensor};

/// Softmax outputs are a probability distribution for any finite
/// logits.
#[test]
fn softmax_is_a_distribution() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 16);
        let logits = vec_f32(rng, n, -50.0, 50.0);
        let t = Tensor::from_vec(Shape::matrix(1, n), logits).unwrap();
        let p = loss::softmax(&t).unwrap();
        let sum: f32 = p.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    });
}

/// Cross-entropy is non-negative and zero only for perfect confidence.
#[test]
fn cross_entropy_nonnegative() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 2, 8);
        let logits = vec_f32(rng, n, -10.0, 10.0);
        let label = usize_in(rng, 0, n);
        let t = Tensor::from_vec(Shape::matrix(1, n), logits).unwrap();
        let (loss_value, grad) = loss::cross_entropy_with_logits(&t, &[label]).unwrap();
        assert!(loss_value >= 0.0);
        // Gradient rows sum to ~0 (probabilities minus a one-hot).
        let gsum: f32 = grad.as_slice().iter().sum();
        assert!(gsum.abs() < 1e-4);
    });
}

/// Activations are monotone non-decreasing (all of ours are).
#[test]
fn activations_are_monotone() {
    check(DEFAULT_CASES, |rng| {
        let a = rng.uniform(-10.0, 10.0);
        let b = rng.uniform(-10.0, 10.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Softsign,
            Activation::Identity,
        ] {
            assert!(act.apply(lo) <= act.apply(hi) + 1e-6, "{act:?}");
        }
    });
}

/// Saturating activations stay within their ranges.
#[test]
fn activation_ranges() {
    check(DEFAULT_CASES, |rng| {
        let x = rng.uniform(-1000.0, 1000.0);
        assert!(Activation::Sigmoid.apply(x) >= 0.0);
        assert!(Activation::Sigmoid.apply(x) <= 1.0);
        assert!(Activation::Tanh.apply(x).abs() <= 1.0);
        assert!(Activation::Softsign.apply(x).abs() < 1.0);
        assert!(Activation::Relu.apply(x) >= 0.0);
    });
}

/// A dense layer is affine: f(ax) - f(0) = a (f(x) - f(0)).
#[test]
fn dense_layer_is_affine() {
    check(DEFAULT_CASES, |rng| {
        let scale = rng.uniform(-3.0, 3.0);
        let mut layer = Dense::new(5, 3, rng);
        let x = rng.uniform_tensor(Shape::matrix(1, 5), -1.0, 1.0);
        let zero = Tensor::zeros(Shape::matrix(1, 5));
        let f0 = layer.forward(&zero, Mode::Eval).unwrap();
        let fx = layer.forward(&x, Mode::Eval).unwrap();
        let fsx = layer.forward(&x.scale(scale), Mode::Eval).unwrap();
        for i in 0..3 {
            let lhs = fsx.as_slice()[i] - f0.as_slice()[i];
            let rhs = scale * (fx.as_slice()[i] - f0.as_slice()[i]);
            assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
        }
    });
}

/// Cloned networks produce identical outputs — the invariant the
/// composer's configuration sweeps rely on.
#[test]
fn cloned_network_is_functionally_identical() {
    check(DEFAULT_CASES, |rng| {
        let mut net = Network::new(6);
        net.push(Dense::new(6, 8, rng));
        net.push(ActivationLayer::new(Activation::Tanh));
        net.push(Dense::new(8, 3, rng));
        let mut clone = net.clone();
        let x = rng.uniform_tensor(Shape::matrix(3, 6), -1.0, 1.0);
        assert_eq!(net.forward(&x).unwrap(), clone.forward(&x).unwrap());
    });
}

/// Error rate is always a fraction and zero when predictions match.
#[test]
fn error_rate_bounds() {
    check(DEFAULT_CASES, |rng| {
        let n = usize_in(rng, 1, 16);
        let labels: Vec<usize> = (0..n).map(|_| usize_in(rng, 0, 4)).collect();
        // Construct logits predicting exactly the labels.
        let mut data = vec![0.0f32; n * 4];
        for (i, &l) in labels.iter().enumerate() {
            data[i * 4 + l] = 5.0;
        }
        let logits = Tensor::from_vec(Shape::matrix(n, 4), data).unwrap();
        assert_eq!(loss::error_rate(&logits, &labels).unwrap(), 0.0);
        // Shifting every label by 1 makes them all wrong.
        let wrong: Vec<usize> = labels.iter().map(|&l| (l + 1) % 4).collect();
        assert_eq!(loss::error_rate(&logits, &wrong).unwrap(), 1.0);
    });
}
