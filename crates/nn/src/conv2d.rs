use crate::layer::{Layer, LayerKind, Mode, ParamSet};
use crate::{NnError, Result};
use rapidnn_tensor::{im2col, Conv2dGeometry, Initializer, Padding, SeededRng, Shape, Tensor};

/// 2-D convolution layer implemented as im2col + GEMM.
///
/// The weight tensor is stored as an `out_channels x patch_len` matrix
/// (`patch_len = in_channels · kh · kw`), i.e. one row per output channel —
/// the granularity at which the RAPIDNN composer builds per-channel weight
/// codebooks.
///
/// Inputs and outputs are `batch x features` matrices; features are the
/// flattened `C·H·W` volume described by the layer's geometry.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geometry: Conv2dGeometry,
    out_channels: usize,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_cols: Vec<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns an error when the geometry is impossible.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        in_height: usize,
        in_width: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: Padding,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        let geometry = Conv2dGeometry::new(
            in_channels,
            in_height,
            in_width,
            kernel,
            kernel,
            stride,
            padding,
        )?;
        let patch_len = geometry.patch_len();
        let weights = rng.init_tensor(
            Shape::matrix(out_channels, patch_len),
            Initializer::HeNormal,
            patch_len,
            out_channels,
        );
        Ok(Conv2d {
            geometry,
            out_channels,
            weights,
            bias: Tensor::zeros(Shape::vector(out_channels)),
            grad_weights: Tensor::zeros(Shape::matrix(out_channels, patch_len)),
            grad_bias: Tensor::zeros(Shape::vector(out_channels)),
            cached_cols: Vec::new(),
        })
    }

    /// The resolved window geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geometry
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The `out_channels x patch_len` weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The per-channel bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the weight matrix (used by the composer's clustering step).
    ///
    /// # Errors
    ///
    /// Returns an error when the shape differs from the current weights.
    pub fn set_weights(&mut self, weights: Tensor) -> Result<()> {
        if weights.shape() != self.weights.shape() {
            return Err(NnError::InvalidNetwork(format!(
                "replacement weights {} mismatch conv weights {}",
                weights.shape(),
                self.weights.shape()
            )));
        }
        self.weights = weights;
        Ok(())
    }

    /// Flattened output feature count (`out_channels · out_h · out_w`).
    pub fn out_features(&self) -> usize {
        self.out_channels * self.geometry.out_pixels()
    }

    /// Flattened input feature count (`in_channels · in_h · in_w`).
    pub fn in_features(&self) -> usize {
        self.geometry.input_shape().volume()
    }

    /// Scatters a patch-matrix gradient back to image layout (col2im).
    fn col2im(&self, dcols: &Tensor) -> Tensor {
        let g = &self.geometry;
        let (c, h, w) = (g.in_channels, g.in_height, g.in_width);
        let mut img = vec![0.0f32; c * h * w];
        let out_pixels = g.out_pixels();
        let mut patch_row = 0;
        for ch in 0..c {
            for kh in 0..g.kernel_h {
                for kw in 0..g.kernel_w {
                    for oy in 0..g.out_height {
                        let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                        for ox in 0..g.out_width {
                            let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                let p = oy * g.out_width + ox;
                                img[ch * h * w + iy as usize * w + ix as usize] +=
                                    dcols.as_slice()[patch_row * out_pixels + p];
                            }
                        }
                    }
                    patch_row += 1;
                }
            }
        }
        Tensor::from_vec(Shape::vector(c * h * w), img).expect("volume matches")
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let in_features = self.in_features();
        if input.shape().rank() != 2 || input.shape().dims()[1] != in_features {
            return Err(NnError::FeatureMismatch {
                layer: "conv2d",
                expected: in_features,
                actual: input.shape().dim(1).unwrap_or(0),
            });
        }
        let batch = input.shape().dims()[0];
        let out_features = self.out_features();
        let mut out = vec![0.0f32; batch * out_features];
        if mode == Mode::Train {
            self.cached_cols.clear();
        }
        for b in 0..batch {
            let sample = Tensor::from_vec(
                self.geometry.input_shape(),
                input.as_slice()[b * in_features..(b + 1) * in_features].to_vec(),
            )?;
            let cols = im2col(&sample, &self.geometry)?;
            let y = self.weights.matmul(&cols)?;
            let pixels = self.geometry.out_pixels();
            for oc in 0..self.out_channels {
                let bias = self.bias.as_slice()[oc];
                for p in 0..pixels {
                    out[b * out_features + oc * pixels + p] = y.as_slice()[oc * pixels + p] + bias;
                }
            }
            if mode == Mode::Train {
                self.cached_cols.push(cols);
            }
        }
        Ok(Tensor::from_vec(Shape::matrix(batch, out_features), out)?)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        if self.cached_cols.is_empty() {
            return Err(NnError::MissingForwardCache("conv2d"));
        }
        let batch = grad.shape().dims()[0];
        if batch != self.cached_cols.len() {
            return Err(NnError::InvalidLabels(format!(
                "gradient batch {batch} does not match cached batch {}",
                self.cached_cols.len()
            )));
        }
        let pixels = self.geometry.out_pixels();
        let out_features = self.out_features();
        let in_features = self.in_features();
        let patch_len = self.geometry.patch_len();

        let mut dw = Tensor::zeros(Shape::matrix(self.out_channels, patch_len));
        let mut db = vec![0.0f32; self.out_channels];
        let mut dx = vec![0.0f32; batch * in_features];

        for b in 0..batch {
            let dy = Tensor::from_vec(
                Shape::matrix(self.out_channels, pixels),
                grad.as_slice()[b * out_features..(b + 1) * out_features].to_vec(),
            )?;
            let cols = &self.cached_cols[b];
            // dW += dY · colsᵀ
            let colst = cols.transpose()?;
            let contrib = dy.matmul(&colst)?;
            dw.add_scaled(&contrib, 1.0)?;
            // db += row sums of dY
            for (oc, acc) in db.iter_mut().enumerate() {
                *acc += dy.as_slice()[oc * pixels..(oc + 1) * pixels]
                    .iter()
                    .sum::<f32>();
            }
            // dcols = Wᵀ · dY, then scatter back to image layout.
            let wt = self.weights.transpose()?;
            let dcols = wt.matmul(&dy)?;
            let img = self.col2im(&dcols);
            dx[b * in_features..(b + 1) * in_features].copy_from_slice(img.as_slice());
        }

        self.grad_weights = dw;
        self.grad_bias = Tensor::from_vec(Shape::vector(self.out_channels), db)?;
        Ok(Tensor::from_vec(Shape::matrix(batch, in_features), dx)?)
    }

    fn params(&mut self) -> Vec<ParamSet<'_>> {
        vec![
            ParamSet {
                value: &mut self.weights,
                grad: &mut self.grad_weights,
            },
            ParamSet {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv2d {
            geometry: self.geometry,
            out_channels: self.out_channels,
        }
    }

    fn output_features(&self, _input_features: usize) -> usize {
        self.out_features()
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_2x2_identityish(rng: &mut SeededRng) -> Conv2d {
        let mut layer = Conv2d::new(1, 3, 3, 1, 2, 1, Padding::Valid, rng).unwrap();
        // Kernel [[1, 0], [0, 0]] picks the top-left of each window.
        layer
            .set_weights(Tensor::from_vec(Shape::matrix(1, 4), vec![1.0, 0.0, 0.0, 0.0]).unwrap())
            .unwrap();
        layer
    }

    #[test]
    fn forward_selects_window_values() {
        let mut rng = SeededRng::new(0);
        let mut layer = layer_2x2_identityish(&mut rng);
        let x = Tensor::from_vec(
            Shape::matrix(1, 9),
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        )
        .unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[1., 2., 4., 5.]);
    }

    #[test]
    fn forward_applies_bias_per_channel() {
        let mut rng = SeededRng::new(0);
        let mut layer = Conv2d::new(1, 2, 2, 2, 2, 1, Padding::Valid, &mut rng).unwrap();
        layer
            .set_weights(Tensor::zeros(Shape::matrix(2, 4)))
            .unwrap();
        layer.bias = Tensor::from_vec(Shape::vector(2), vec![1.0, -1.0]).unwrap();
        let x = Tensor::ones(Shape::matrix(1, 4));
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = SeededRng::new(0);
        let mut layer = layer_2x2_identityish(&mut rng);
        let x = Tensor::ones(Shape::matrix(1, 8));
        assert!(layer.forward(&x, Mode::Eval).is_err());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(5);
        let mut layer = Conv2d::new(2, 4, 4, 3, 3, 1, Padding::Valid, &mut rng).unwrap();
        let x = rng.uniform_tensor(Shape::matrix(2, 32), -1.0, 1.0);

        let y = layer.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(y.shape().clone());
        let dx = layer.backward(&ones).unwrap();

        let eps = 1e-2;
        // dW check on two entries.
        for &flat in &[0usize, 17] {
            let mut bumped = layer.clone();
            let mut w = bumped.weights().clone();
            w.as_mut_slice()[flat] += eps;
            bumped.set_weights(w).unwrap();
            let y_plus = bumped.forward(&x, Mode::Eval).unwrap().sum();
            let numeric = (y_plus - y.sum()) / eps;
            let analytic = layer.grad_weights.as_slice()[flat];
            assert!(
                (numeric - analytic).abs() < 0.3,
                "dW[{flat}]: {numeric} vs {analytic}"
            );
        }
        // dX check.
        let mut x2 = x.clone();
        x2.as_mut_slice()[10] += eps;
        let y_plus = layer.forward(&x2, Mode::Eval).unwrap().sum();
        let numeric = (y_plus - y.sum()) / eps;
        assert!((numeric - dx.as_slice()[10]).abs() < 0.3);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = SeededRng::new(0);
        let mut layer = layer_2x2_identityish(&mut rng);
        assert!(layer.backward(&Tensor::ones(Shape::matrix(1, 4))).is_err());
    }

    #[test]
    fn out_features_match_geometry() {
        let mut rng = SeededRng::new(0);
        let layer = Conv2d::new(3, 32, 32, 16, 3, 1, Padding::Same, &mut rng).unwrap();
        assert_eq!(layer.out_features(), 16 * 32 * 32);
        assert_eq!(layer.in_features(), 3 * 32 * 32);
        assert_eq!(layer.output_features(3 * 32 * 32), 16 * 32 * 32);
    }
}
