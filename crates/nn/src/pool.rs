use crate::layer::{Layer, LayerKind, Mode, ParamSet};
use crate::{NnError, Result};
use rapidnn_tensor::{Conv2dGeometry, Padding, Shape, Tensor};

/// Which reduction a pooling layer applies over each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window (the accelerator implements this by a
    /// single-cycle NDCAM search over encoded values).
    Max,
    /// Mean over the window (the accelerator implements this with its
    /// in-memory adder and offline weight normalisation).
    Average,
}

/// Shared implementation behind [`MaxPool2d`] and [`AvgPool2d`].
#[derive(Debug, Clone)]
struct Pool2d {
    kind: PoolKind,
    geometry: Conv2dGeometry,
    /// Flat argmax index per (batch, channel, output pixel), training only.
    cached_argmax: Vec<usize>,
    cached_batch: usize,
}

/// 2-D max pooling over non-overlapping (or strided) windows.
#[derive(Debug, Clone)]
pub struct MaxPool2d(Pool2d);

/// 2-D average pooling over non-overlapping (or strided) windows.
#[derive(Debug, Clone)]
pub struct AvgPool2d(Pool2d);

impl MaxPool2d {
    /// Creates a max-pooling layer with a square `window`, stride equal to
    /// the window (the paper's `PL:2x2` convention).
    ///
    /// # Errors
    ///
    /// Returns an error when the window does not fit the input.
    pub fn new(channels: usize, height: usize, width: usize, window: usize) -> Result<Self> {
        Ok(MaxPool2d(Pool2d::new(
            PoolKind::Max,
            channels,
            height,
            width,
            window,
        )?))
    }

    /// The resolved window geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.0.geometry
    }
}

impl AvgPool2d {
    /// Creates an average-pooling layer with a square `window`, stride equal
    /// to the window.
    ///
    /// # Errors
    ///
    /// Returns an error when the window does not fit the input.
    pub fn new(channels: usize, height: usize, width: usize, window: usize) -> Result<Self> {
        Ok(AvgPool2d(Pool2d::new(
            PoolKind::Average,
            channels,
            height,
            width,
            window,
        )?))
    }

    /// The resolved window geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.0.geometry
    }
}

impl Pool2d {
    fn new(
        kind: PoolKind,
        channels: usize,
        height: usize,
        width: usize,
        window: usize,
    ) -> Result<Self> {
        let geometry = Conv2dGeometry::new(
            channels,
            height,
            width,
            window,
            window,
            window,
            Padding::Valid,
        )?;
        Ok(Pool2d {
            kind,
            geometry,
            cached_argmax: Vec::new(),
            cached_batch: 0,
        })
    }

    fn in_features(&self) -> usize {
        self.geometry.input_shape().volume()
    }

    fn out_features(&self) -> usize {
        self.geometry.in_channels * self.geometry.out_pixels()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let in_features = self.in_features();
        if input.shape().rank() != 2 || input.shape().dims()[1] != in_features {
            return Err(NnError::FeatureMismatch {
                layer: "pool2d",
                expected: in_features,
                actual: input.shape().dim(1).unwrap_or(0),
            });
        }
        let g = &self.geometry;
        let batch = input.shape().dims()[0];
        let (c, h, w) = (g.in_channels, g.in_height, g.in_width);
        let out_features = self.out_features();
        let mut out = vec![0.0f32; batch * out_features];
        let window_len = (g.kernel_h * g.kernel_w) as f32;
        if mode == Mode::Train {
            self.cached_argmax = vec![0; batch * out_features];
            self.cached_batch = batch;
        }
        for b in 0..batch {
            let sample = &input.as_slice()[b * in_features..(b + 1) * in_features];
            for ch in 0..c {
                for oy in 0..g.out_height {
                    for ox in 0..g.out_width {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        let mut acc = 0.0f32;
                        for kh in 0..g.kernel_h {
                            for kw in 0..g.kernel_w {
                                let iy = oy * g.stride + kh;
                                let ix = ox * g.stride + kw;
                                let idx = ch * h * w + iy * w + ix;
                                let v = sample[idx];
                                acc += v;
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        let o = ch * g.out_pixels() + oy * g.out_width + ox;
                        out[b * out_features + o] = match self.kind {
                            PoolKind::Max => best,
                            PoolKind::Average => acc / window_len,
                        };
                        if mode == Mode::Train {
                            self.cached_argmax[b * out_features + o] = best_idx;
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(Shape::matrix(batch, out_features), out)?)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        if self.cached_batch == 0 {
            return Err(NnError::MissingForwardCache("pool2d"));
        }
        let batch = grad.shape().dims()[0];
        let in_features = self.in_features();
        let out_features = self.out_features();
        let g = &self.geometry;
        let mut dx = vec![0.0f32; batch * in_features];
        let window_len = (g.kernel_h * g.kernel_w) as f32;
        for b in 0..batch {
            for o in 0..out_features {
                let gv = grad.as_slice()[b * out_features + o];
                match self.kind {
                    PoolKind::Max => {
                        let idx = self.cached_argmax[b * out_features + o];
                        dx[b * in_features + idx] += gv;
                    }
                    PoolKind::Average => {
                        // Distribute uniformly over the window.
                        let ch = o / g.out_pixels();
                        let p = o % g.out_pixels();
                        let oy = p / g.out_width;
                        let ox = p % g.out_width;
                        for kh in 0..g.kernel_h {
                            for kw in 0..g.kernel_w {
                                let iy = oy * g.stride + kh;
                                let ix = ox * g.stride + kw;
                                let idx = ch * g.in_height * g.in_width + iy * g.in_width + ix;
                                dx[b * in_features + idx] += gv / window_len;
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(Shape::matrix(batch, in_features), dx)?)
    }
}

macro_rules! impl_pool_layer {
    ($ty:ident, $is_max:expr) => {
        impl Layer for $ty {
            fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
                self.0.forward(input, mode)
            }

            fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
                self.0.backward(grad)
            }

            fn params(&mut self) -> Vec<ParamSet<'_>> {
                Vec::new()
            }

            fn kind(&self) -> LayerKind {
                LayerKind::Pool2d {
                    geometry: self.0.geometry,
                    is_max: $is_max,
                }
            }

            fn output_features(&self, _input_features: usize) -> usize {
                self.0.out_features()
            }

            fn clone_layer(&self) -> Box<dyn Layer> {
                Box::new(self.clone())
            }
        }
    };
}

impl_pool_layer!(MaxPool2d, true);
impl_pool_layer!(AvgPool2d, false);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_picks_maxima() {
        let mut pool = MaxPool2d::new(1, 4, 4, 2).unwrap();
        let x = Tensor::from_vec(
            Shape::matrix(1, 16),
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn avgpool_forward_averages() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2).unwrap();
        let x = Tensor::from_vec(Shape::matrix(1, 4), vec![1., 2., 3., 6.]).unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[3.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(1, 2, 2, 2).unwrap();
        let x = Tensor::from_vec(Shape::matrix(1, 4), vec![1., 9., 3., 4.]).unwrap();
        pool.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(Shape::matrix(1, 1), vec![5.0]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn avgpool_backward_distributes_uniformly() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2).unwrap();
        let x = Tensor::ones(Shape::matrix(1, 4));
        pool.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(Shape::matrix(1, 1), vec![4.0]).unwrap();
        let dx = pool.backward(&g).unwrap();
        assert_eq!(dx.as_slice(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn channels_pool_independently() {
        let mut pool = MaxPool2d::new(2, 2, 2, 2).unwrap();
        let x = Tensor::from_vec(
            Shape::matrix(1, 8),
            vec![1., 2., 3., 4., 10., 20., 30., 40.],
        )
        .unwrap();
        let y = pool.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[4., 40.]);
    }

    #[test]
    fn rejects_wrong_width_and_missing_cache() {
        let mut pool = MaxPool2d::new(1, 4, 4, 2).unwrap();
        assert!(pool
            .forward(&Tensor::ones(Shape::matrix(1, 15)), Mode::Eval)
            .is_err());
        assert!(pool.backward(&Tensor::ones(Shape::matrix(1, 4))).is_err());
    }

    #[test]
    fn kind_describes_pooling() {
        let pool = MaxPool2d::new(1, 4, 4, 2).unwrap();
        assert!(matches!(
            pool.kind(),
            LayerKind::Pool2d { is_max: true, .. }
        ));
        let pool = AvgPool2d::new(1, 4, 4, 2).unwrap();
        assert!(matches!(
            pool.kind(),
            LayerKind::Pool2d { is_max: false, .. }
        ));
        assert_eq!(pool.output_features(16), 4);
    }
}
