use crate::layer::{Layer, LayerKind, Mode};
use crate::{loss, NnError, Result};
use rapidnn_tensor::Tensor;

/// A sequential stack of layers with a softmax-cross-entropy head.
///
/// `Network` owns its layers as trait objects so heterogeneous topologies
/// (the paper's MLPs and CNNs) share one training/inference path.
#[derive(Debug, Clone)]
pub struct Network {
    input_features: usize,
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// Creates an empty network accepting `input_features`-wide rows.
    pub fn new(input_features: usize) -> Self {
        Network {
            input_features,
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Input feature width.
    pub fn input_features(&self) -> usize {
        self.input_features
    }

    /// Output feature width (class count), derived by folding each layer's
    /// `output_features` over the input width.
    pub fn output_features(&self) -> usize {
        self.layers
            .iter()
            .fold(self.input_features, |acc, l| l.output_features(acc))
    }

    /// Immutable access to the layer stack.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layer stack (used by the composer to swap
    /// clustered weights in).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Structural description of every layer.
    pub fn kinds(&self) -> Vec<LayerKind> {
        self.layers.iter().map(|l| l.kind()).collect()
    }

    /// Inference forward pass (no caching, dropout disabled).
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors; fails on an empty network.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward_mode(input, Mode::Eval)
    }

    /// Forward pass with explicit [`Mode`].
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors; fails on an empty network.
    pub fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidNetwork("network has no layers".into()));
        }
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, mode)?;
        }
        Ok(current)
    }

    /// Forward pass that also returns the *input to every weighted layer*
    /// and the output of every activation — the observations the composer
    /// clusters (§3.1 "Inputs").
    ///
    /// Returns `(logits, per_layer_inputs)` where `per_layer_inputs[i]` is
    /// the tensor that entered layer `i`.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_observed(&mut self, input: &Tensor) -> Result<(Tensor, Vec<Tensor>)> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidNetwork("network has no layers".into()));
        }
        let mut current = input.clone();
        let mut observed = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            observed.push(current.clone());
            current = layer.forward(&current, Mode::Eval)?;
        }
        Ok((current, observed))
    }

    /// Runs one training step on a batch: forward, loss, backward.
    ///
    /// Returns the batch loss. Parameter gradients are left in the layers
    /// for an optimizer to consume.
    ///
    /// # Errors
    ///
    /// Propagates layer and label errors.
    pub fn train_batch(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32> {
        let logits = self.forward_mode(input, Mode::Train)?;
        let (loss_value, mut grad) = loss::cross_entropy_with_logits(&logits, labels)?;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(loss_value)
    }

    /// Predicted class per row.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(input)?;
        let classes = logits.shape().dims()[1];
        Ok((0..logits.shape().dims()[0])
            .map(|b| {
                let row = &logits.as_slice()[b * classes..(b + 1) * classes];
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect())
    }

    /// Error rate of the network on `(input, labels)`.
    ///
    /// # Errors
    ///
    /// Propagates layer and label errors.
    pub fn evaluate(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32> {
        let logits = self.forward(input)?;
        loss::error_rate(&logits, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, ActivationLayer, Dense};
    use rapidnn_tensor::{SeededRng, Shape};

    fn mlp(rng: &mut SeededRng) -> Network {
        let mut net = Network::new(4);
        net.push(Dense::new(4, 16, rng));
        net.push(ActivationLayer::new(Activation::Relu));
        net.push(Dense::new(16, 3, rng));
        net
    }

    #[test]
    fn empty_network_is_rejected() {
        let mut net = Network::new(4);
        assert!(net.forward(&Tensor::ones(Shape::matrix(1, 4))).is_err());
        assert!(net.is_empty());
    }

    #[test]
    fn output_features_fold_through_layers() {
        let mut rng = SeededRng::new(0);
        let net = mlp(&mut rng);
        assert_eq!(net.output_features(), 3);
        assert_eq!(net.input_features(), 4);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn forward_observed_returns_layer_inputs() {
        let mut rng = SeededRng::new(0);
        let mut net = mlp(&mut rng);
        let x = Tensor::ones(Shape::matrix(2, 4));
        let (logits, observed) = net.forward_observed(&x).unwrap();
        assert_eq!(observed.len(), 3);
        assert_eq!(observed[0], x);
        assert_eq!(observed[1].shape().dims(), &[2, 16]);
        assert_eq!(logits.shape().dims(), &[2, 3]);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = SeededRng::new(7);
        let mut net = mlp(&mut rng);
        // Three clusters at unit corners.
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            labels.push(class);
            for f in 0..4 {
                let center = if f == class { 2.0 } else { -2.0 };
                xs.push(center + 0.1 * rng.normal());
            }
        }
        let x = Tensor::from_vec(Shape::matrix(30, 4), xs).unwrap();

        let first_loss = net.train_batch(&x, &labels).unwrap();
        let mut sgd = crate::Sgd::new(0.1, 0.9);
        let mut last_loss = first_loss;
        for _ in 0..50 {
            last_loss = net.train_batch(&x, &labels).unwrap();
            sgd.step(&mut net);
        }
        assert!(
            last_loss < first_loss * 0.5,
            "loss did not drop: {first_loss} -> {last_loss}"
        );
        assert_eq!(net.evaluate(&x, &labels).unwrap(), 0.0);
    }

    #[test]
    fn predict_matches_argmax() {
        let mut rng = SeededRng::new(3);
        let mut net = mlp(&mut rng);
        let x = Tensor::ones(Shape::matrix(5, 4));
        let preds = net.predict(&x).unwrap();
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn kinds_describe_the_stack() {
        let mut rng = SeededRng::new(3);
        let net = mlp(&mut rng);
        let kinds = net.kinds();
        assert!(kinds[0].is_weighted());
        assert!(!kinds[1].is_weighted());
        assert!(kinds[2].is_weighted());
    }
}
