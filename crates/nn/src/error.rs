use rapidnn_tensor::TensorError;
use std::error::Error;
use std::fmt;

/// Error type for neural-network construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received input whose feature width differs from what it was
    /// built for.
    FeatureMismatch {
        /// Name of the offending layer.
        layer: &'static str,
        /// Feature width the layer expects.
        expected: usize,
        /// Feature width it received.
        actual: usize,
    },
    /// `backward` was called before `forward` populated the cache.
    MissingForwardCache(&'static str),
    /// Labels and inputs disagree in batch size, or a label is out of range.
    InvalidLabels(String),
    /// The network has no layers or an otherwise unusable configuration.
    InvalidNetwork(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::FeatureMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "layer {layer} expects {expected} input features, received {actual}"
            ),
            NnError::MissingForwardCache(layer) => {
                write!(f, "backward called on {layer} before forward")
            }
            NnError::InvalidLabels(msg) => write!(f, "invalid labels: {msg}"),
            NnError::InvalidNetwork(msg) => write!(f, "invalid network: {msg}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = NnError::FeatureMismatch {
            layer: "dense",
            expected: 4,
            actual: 7,
        };
        assert!(e.to_string().contains("dense"));
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn tensor_errors_convert_and_chain() {
        let te = TensorError::Empty("input");
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
        assert!(Error::source(&ne).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
