use crate::layer::{Layer, LayerKind, Mode, ParamSet};
use crate::{NnError, Result};
use rapidnn_tensor::{Initializer, SeededRng, Shape, Tensor};

/// Fully connected layer computing `Y = X·Wᵀ + b`.
///
/// Weights are stored as an `outputs x inputs` matrix so a row holds all
/// incoming weights of one neuron — the layout the RAPIDNN composer
/// clusters and the RNA controller maps onto one RNA block per neuron.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    inputs: usize,
    outputs: usize,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(inputs: usize, outputs: usize, rng: &mut SeededRng) -> Self {
        let weights = rng.init_tensor(
            Shape::matrix(outputs, inputs),
            Initializer::HeNormal,
            inputs,
            outputs,
        );
        Dense {
            weights,
            bias: Tensor::zeros(Shape::vector(outputs)),
            grad_weights: Tensor::zeros(Shape::matrix(outputs, inputs)),
            grad_bias: Tensor::zeros(Shape::vector(outputs)),
            cached_input: None,
            inputs,
            outputs,
        }
    }

    /// Creates a dense layer from explicit weights (`outputs x inputs`) and
    /// bias (`outputs`).
    ///
    /// # Errors
    ///
    /// Returns an error when the shapes are inconsistent.
    pub fn from_parts(weights: Tensor, bias: Tensor) -> Result<Self> {
        if weights.shape().rank() != 2 {
            return Err(NnError::InvalidNetwork(format!(
                "dense weights must be rank 2, got {}",
                weights.shape()
            )));
        }
        let (outputs, inputs) = (weights.shape().dims()[0], weights.shape().dims()[1]);
        if bias.shape().dims() != [outputs] {
            return Err(NnError::InvalidNetwork(format!(
                "dense bias shape {} does not match {outputs} outputs",
                bias.shape()
            )));
        }
        Ok(Dense {
            grad_weights: Tensor::zeros(Shape::matrix(outputs, inputs)),
            grad_bias: Tensor::zeros(Shape::vector(outputs)),
            cached_input: None,
            inputs,
            outputs,
            weights,
            bias,
        })
    }

    /// Input feature count.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output neuron count.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The `outputs x inputs` weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Replaces the weight matrix (used by the composer's clustering step).
    ///
    /// # Errors
    ///
    /// Returns an error when the shape differs from the current weights.
    pub fn set_weights(&mut self, weights: Tensor) -> Result<()> {
        if weights.shape() != self.weights.shape() {
            return Err(NnError::InvalidNetwork(format!(
                "replacement weights {} mismatch layer weights {}",
                weights.shape(),
                self.weights.shape()
            )));
        }
        self.weights = weights;
        Ok(())
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.shape().rank() != 2 || input.shape().dims()[1] != self.inputs {
            return Err(NnError::FeatureMismatch {
                layer: "dense",
                expected: self.inputs,
                actual: input.shape().dim(1).unwrap_or(0),
            });
        }
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        let wt = self.weights.transpose()?;
        let mut out = input.matmul(&wt)?;
        let batch = out.shape().dims()[0];
        let data = out.as_mut_slice();
        for b in 0..batch {
            for o in 0..self.outputs {
                data[b * self.outputs + o] += self.bias.as_slice()[o];
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::MissingForwardCache("dense"))?;
        // dW = gradᵀ · input   (outputs x inputs)
        let grad_t = grad.transpose()?;
        self.grad_weights = grad_t.matmul(input)?;
        // db = column sums of grad.
        let batch = grad.shape().dims()[0];
        let mut db = vec![0.0f32; self.outputs];
        for b in 0..batch {
            let row = &grad.as_slice()[b * self.outputs..(b + 1) * self.outputs];
            for (acc, &g) in db.iter_mut().zip(row) {
                *acc += g;
            }
        }
        self.grad_bias = Tensor::from_vec(Shape::vector(self.outputs), db)?;
        // dX = grad · W   (batch x inputs)
        Ok(grad.matmul(&self.weights)?)
    }

    fn params(&mut self) -> Vec<ParamSet<'_>> {
        vec![
            ParamSet {
                value: &mut self.weights,
                grad: &mut self.grad_weights,
            },
            ParamSet {
                value: &mut self.bias,
                grad: &mut self.grad_bias,
            },
        ]
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dense {
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }

    fn output_features(&self, _input_features: usize) -> usize {
        self.outputs
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_layer() -> Dense {
        // W = [[1, 2], [3, 4], [5, 6]], b = [0.5, -0.5, 0].
        Dense::from_parts(
            Tensor::from_vec(Shape::matrix(3, 2), vec![1., 2., 3., 4., 5., 6.]).unwrap(),
            Tensor::from_vec(Shape::vector(3), vec![0.5, -0.5, 0.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut layer = tiny_layer();
        let x = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[3.5, 6.5, 11.0]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut layer = tiny_layer();
        let x = Tensor::from_vec(Shape::matrix(1, 3), vec![1.0; 3]).unwrap();
        assert!(matches!(
            layer.forward(&x, Mode::Eval),
            Err(NnError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(17);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = rng.uniform_tensor(Shape::matrix(4, 3), -1.0, 1.0);

        // Loss = sum of outputs; dL/dY = ones.
        let y = layer.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(y.shape().clone());
        let dx = layer.backward(&ones).unwrap();

        let eps = 1e-3;
        // Check dW numerically for a few entries.
        for &(o, i) in &[(0usize, 0usize), (1, 2)] {
            let mut bumped = layer.clone();
            let mut w = bumped.weights().clone();
            let flat = o * 3 + i;
            w.as_mut_slice()[flat] += eps;
            bumped.set_weights(w).unwrap();
            let y_plus = bumped.forward(&x, Mode::Eval).unwrap().sum();
            let numeric = (y_plus - y.sum()) / eps;
            let analytic = layer.grad_weights.as_slice()[flat];
            assert!(
                (numeric - analytic).abs() < 1e-1,
                "dW[{o},{i}]: {numeric} vs {analytic}"
            );
        }
        // Check dX numerically for one entry.
        let mut x2 = x.clone();
        x2.as_mut_slice()[5] += eps;
        let y_plus = layer.forward(&x2, Mode::Eval).unwrap().sum();
        let numeric = (y_plus - y.sum()) / eps;
        assert!((numeric - dx.as_slice()[5]).abs() < 1e-1);
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut layer = tiny_layer();
        let x = Tensor::from_vec(Shape::matrix(2, 2), vec![1., 0., 0., 1.]).unwrap();
        layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(Shape::matrix(2, 3));
        layer.backward(&g).unwrap();
        assert_eq!(layer.grad_bias.as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn from_parts_validates_shapes() {
        let w = Tensor::zeros(Shape::matrix(2, 2));
        let b = Tensor::zeros(Shape::vector(3));
        assert!(Dense::from_parts(w, b).is_err());
        let v = Tensor::zeros(Shape::vector(4));
        assert!(Dense::from_parts(v, Tensor::zeros(Shape::vector(1))).is_err());
    }

    #[test]
    fn params_exposes_weights_and_bias() {
        let mut layer = tiny_layer();
        assert_eq!(layer.params().len(), 2);
    }

    #[test]
    fn kind_reports_fan() {
        let layer = tiny_layer();
        assert_eq!(
            layer.kind(),
            LayerKind::Dense {
                inputs: 2,
                outputs: 3
            }
        );
        assert_eq!(layer.output_features(2), 3);
    }
}
