//! Softmax cross-entropy loss for classification heads.
//!
//! The paper's output layers apply softmax; combining softmax with
//! cross-entropy yields the numerically stable gradient `probs - onehot`.

use crate::{NnError, Result};
use rapidnn_tensor::{Shape, Tensor};

/// Row-wise softmax of a `batch x classes` logit matrix.
///
/// Uses the max-subtraction trick for numerical stability.
///
/// # Errors
///
/// Returns an error when `logits` is not rank 2.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(NnError::InvalidNetwork(format!(
            "softmax expects a batch x classes matrix, got {}",
            logits.shape()
        )));
    }
    let (batch, classes) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    let mut out = vec![0.0f32; batch * classes];
    for b in 0..batch {
        let row = &logits.as_slice()[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for (o, &v) in out[b * classes..(b + 1) * classes].iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            denom += e;
        }
        for o in &mut out[b * classes..(b + 1) * classes] {
            *o /= denom;
        }
    }
    Ok(Tensor::from_vec(Shape::matrix(batch, classes), out)?)
}

/// Mean cross-entropy loss and its gradient with respect to the logits.
///
/// Returns `(loss, d_logits)` where `d_logits = (softmax - onehot) / batch`.
///
/// # Errors
///
/// Returns [`NnError::InvalidLabels`] when `labels` and `logits` disagree in
/// batch size or a label exceeds the class count.
pub fn cross_entropy_with_logits(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let probs = softmax(logits)?;
    let (batch, classes) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    if labels.len() != batch {
        return Err(NnError::InvalidLabels(format!(
            "{} labels for batch of {batch}",
            labels.len()
        )));
    }
    let mut loss = 0.0f32;
    let mut grad = probs.clone().into_vec();
    for (b, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::InvalidLabels(format!(
                "label {label} out of range for {classes} classes"
            )));
        }
        let p = probs.as_slice()[b * classes + label].max(1e-12);
        loss -= p.ln();
        grad[b * classes + label] -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    for g in &mut grad {
        *g *= scale;
    }
    Ok((
        loss * scale,
        Tensor::from_vec(Shape::matrix(batch, classes), grad)?,
    ))
}

/// Fraction of rows whose argmax differs from the label — the paper's
/// error-rate metric ("ratio of misclassified data to the total testing
/// dataset").
///
/// # Errors
///
/// Returns [`NnError::InvalidLabels`] when the batch sizes disagree.
pub fn error_rate(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let (batch, classes) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    if labels.len() != batch {
        return Err(NnError::InvalidLabels(format!(
            "{} labels for batch of {batch}",
            labels.len()
        )));
    }
    if batch == 0 {
        return Ok(0.0);
    }
    let mut wrong = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[b * classes..(b + 1) * classes];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        if best != label {
            wrong += 1;
        }
    }
    Ok(wrong as f32 / batch as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits =
            Tensor::from_vec(Shape::matrix(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax(&logits).unwrap();
        for b in 0..2 {
            let row_sum: f32 = p.as_slice()[b * 3..(b + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(Shape::matrix(1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::matrix(1, 3), vec![1001.0, 1002.0, 1003.0]).unwrap();
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Tensor::from_vec(Shape::matrix(1, 2), vec![10.0, -10.0]).unwrap();
        let (loss, _) = cross_entropy_with_logits(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
        let (loss_wrong, _) = cross_entropy_with_logits(&logits, &[1]).unwrap();
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn gradient_is_probs_minus_onehot_over_batch() {
        let logits = Tensor::from_vec(Shape::matrix(1, 2), vec![0.0, 0.0]).unwrap();
        let (_, grad) = cross_entropy_with_logits(&logits, &[0]).unwrap();
        assert!((grad.as_slice()[0] - (-0.5)).abs() < 1e-5);
        assert!((grad.as_slice()[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits =
            Tensor::from_vec(Shape::matrix(2, 3), vec![0.3, -0.2, 0.9, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let (loss, grad) = cross_entropy_with_logits(&logits, &labels).unwrap();
        let eps = 1e-3;
        for flat in 0..6 {
            let mut bumped = logits.clone();
            bumped.as_mut_slice()[flat] += eps;
            let (loss2, _) = cross_entropy_with_logits(&bumped, &labels).unwrap();
            let numeric = (loss2 - loss) / eps;
            assert!(
                (numeric - grad.as_slice()[flat]).abs() < 1e-2,
                "entry {flat}"
            );
        }
    }

    #[test]
    fn error_rate_counts_misclassifications() {
        let logits =
            Tensor::from_vec(Shape::matrix(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(error_rate(&logits, &[0, 1, 1]).unwrap(), 1.0 / 3.0);
        assert_eq!(error_rate(&logits, &[0, 1, 0]).unwrap(), 0.0);
    }

    #[test]
    fn label_validation() {
        let logits = Tensor::zeros(Shape::matrix(2, 2));
        assert!(cross_entropy_with_logits(&logits, &[0]).is_err());
        assert!(cross_entropy_with_logits(&logits, &[0, 5]).is_err());
        assert!(error_rate(&logits, &[0]).is_err());
    }
}
