use crate::layer::{Layer, LayerKind, Mode, ParamSet};
use crate::{NnError, Result};
use rapidnn_tensor::{SeededRng, Tensor};

/// Inverted-dropout layer.
///
/// During training each element is zeroed with probability `rate` and
/// survivors are scaled by `1 / (1 - rate)` so activations keep their
/// expected magnitude; during inference the layer is the identity. The
/// paper applies dropout with rate 0.5 to fully connected layers.
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    rng: SeededRng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with the given drop `rate` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, rng: &mut SeededRng) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout {
            rate,
            rng: rng.fork(),
            cached_mask: None,
        }
    }

    /// Drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => Ok(input.clone()),
            Mode::Train => {
                let keep = 1.0 - self.rate;
                let scale = 1.0 / keep;
                let mut mask = Tensor::zeros(input.shape().clone());
                for m in mask.as_mut_slice() {
                    *m = if self.rng.chance(keep) { scale } else { 0.0 };
                }
                let out = input.mul(&mask)?;
                self.cached_mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or(NnError::MissingForwardCache("dropout"))?;
        Ok(grad.mul(mask)?)
    }

    fn params(&mut self) -> Vec<ParamSet<'_>> {
        Vec::new()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Dropout(self.rate)
    }

    fn output_features(&self, input_features: usize) -> usize {
        input_features
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidnn_tensor::Shape;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = SeededRng::new(0);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(layer.forward(&x, Mode::Eval).unwrap(), x);
    }

    #[test]
    fn train_mode_zeroes_and_rescales() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(Shape::matrix(1, 1000));
        let y = layer.forward(&x, Mode::Train).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let survivors = y
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-6)
            .count();
        assert_eq!(zeros + survivors, 1000);
        assert!((400..600).contains(&zeros), "{zeros} zeros");
        // Expected magnitude preserved within tolerance.
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(Shape::matrix(1, 64));
        let y = layer.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(Shape::matrix(1, 64));
        let dx = layer.backward(&g).unwrap();
        // Gradient must be zero exactly where the output was zeroed.
        for (o, d) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*o == 0.0, *d == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_one() {
        let mut rng = SeededRng::new(0);
        let _ = Dropout::new(1.0, &mut rng);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = SeededRng::new(0);
        let mut layer = Dropout::new(0.5, &mut rng);
        assert!(layer.backward(&Tensor::from_slice(&[1.0])).is_err());
    }
}
