use crate::layer::{Layer, LayerKind, Mode, ParamSet};
use crate::{NnError, Result};
use rapidnn_tensor::Tensor;

/// Residual block: `y = x + branch(x)`.
///
/// The branch is an arbitrary stack of layers whose output width must equal
/// its input width. The RAPIDNN controller supports residual layers by
/// keeping skipped-connection values in the RNA input FIFOs (§4.3); this
/// layer provides the training-side counterpart.
#[derive(Debug)]
pub struct Residual {
    branch: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// Creates a residual block around `branch`.
    pub fn new(branch: Vec<Box<dyn Layer>>) -> Self {
        Residual { branch }
    }

    /// Number of layers in the branch.
    pub fn branch_len(&self) -> usize {
        self.branch.len()
    }

    /// Immutable access to the branch layers.
    pub fn branch(&self) -> &[Box<dyn Layer>] {
        &self.branch
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut current = input.clone();
        for layer in &mut self.branch {
            current = layer.forward(&current, mode)?;
        }
        if current.shape() != input.shape() {
            return Err(NnError::InvalidNetwork(format!(
                "residual branch output {} differs from input {}",
                current.shape(),
                input.shape()
            )));
        }
        Ok(current.add(input)?)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let mut branch_grad = grad.clone();
        for layer in self.branch.iter_mut().rev() {
            branch_grad = layer.backward(&branch_grad)?;
        }
        // d/dx (x + f(x)) = 1 + f'(x): skip path adds the incoming gradient.
        Ok(branch_grad.add(grad)?)
    }

    fn params(&mut self) -> Vec<ParamSet<'_>> {
        self.branch
            .iter_mut()
            .flat_map(|layer| layer.params())
            .collect()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Residual
    }

    fn output_features(&self, input_features: usize) -> usize {
        input_features
    }

    fn branch_mut(&mut self) -> Option<&mut Vec<Box<dyn Layer>>> {
        Some(&mut self.branch)
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(Residual {
            branch: self.branch.iter().map(|l| l.clone_layer()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, ActivationLayer, Dense};
    use rapidnn_tensor::{SeededRng, Shape};

    fn block(rng: &mut SeededRng) -> Residual {
        Residual::new(vec![
            Box::new(Dense::new(4, 4, rng)),
            Box::new(ActivationLayer::new(Activation::Relu)),
        ])
    }

    #[test]
    fn forward_adds_skip_connection() {
        let rng = SeededRng::new(9);
        let mut res = Residual::new(vec![Box::new(ActivationLayer::new(Activation::Relu))]);
        let x = Tensor::from_vec(Shape::matrix(1, 3), vec![-1.0, 0.5, 2.0]).unwrap();
        let y = res.forward(&x, Mode::Eval).unwrap();
        // relu(x) + x
        assert_eq!(y.as_slice(), &[-1.0, 1.0, 4.0]);
        let _ = rng;
    }

    #[test]
    fn mismatched_branch_width_is_rejected() {
        let mut rng = SeededRng::new(9);
        let mut res = Residual::new(vec![Box::new(Dense::new(4, 3, &mut rng))]);
        let x = Tensor::ones(Shape::matrix(1, 4));
        assert!(res.forward(&x, Mode::Eval).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(42);
        let mut res = block(&mut rng);
        let x = rng.uniform_tensor(Shape::matrix(2, 4), -1.0, 1.0);
        let y = res.forward(&x, Mode::Train).unwrap();
        let ones = Tensor::ones(y.shape().clone());
        let dx = res.backward(&ones).unwrap();

        let eps = 1e-3;
        for flat in [0usize, 5] {
            let mut x2 = x.clone();
            x2.as_mut_slice()[flat] += eps;
            let y2 = res.forward(&x2, Mode::Eval).unwrap();
            let numeric = (y2.sum() - y.sum()) / eps;
            assert!(
                (numeric - dx.as_slice()[flat]).abs() < 0.05,
                "entry {flat}: {numeric} vs {}",
                dx.as_slice()[flat]
            );
        }
    }

    #[test]
    fn params_aggregate_branch_layers() {
        let mut rng = SeededRng::new(1);
        let mut res = block(&mut rng);
        assert_eq!(res.params().len(), 2); // dense weights + bias
        assert_eq!(res.branch_len(), 2);
        assert_eq!(res.kind(), LayerKind::Residual);
    }
}
