use crate::network::Network;

/// Adam optimizer (Kingma & Ba) — an adaptive alternative to [`Sgd`].
///
/// The paper trains with SGD+momentum on the real datasets; on the small
/// synthetic substitutes the 100-class CNNs occasionally stall on the
/// uniform-logit plateau under plain SGD, so the trainer can switch to
/// Adam for those models (a substitution documented in DESIGN.md §5 —
/// only the float baseline's training is affected, not the composer).
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step: u64,
    first: Vec<Vec<f32>>,
    second: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the usual `(0.9, 0.999)` betas.
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not positive.
    pub fn new(learning_rate: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            first: Vec::new(),
            second: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Rescales the learning rate.
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        self.learning_rate = learning_rate;
    }

    /// Applies one Adam update using the gradients stored in the layers.
    pub fn step(&mut self, network: &mut Network) {
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        let mut param_index = 0;
        for layer in network.layers_mut() {
            for param in layer.params() {
                if param_index >= self.first.len() {
                    self.first.push(vec![0.0; param.value.len()]);
                    self.second.push(vec![0.0; param.value.len()]);
                }
                if self.first[param_index].len() != param.value.len() {
                    self.first[param_index] = vec![0.0; param.value.len()];
                    self.second[param_index] = vec![0.0; param.value.len()];
                }
                let m = &mut self.first[param_index];
                let v = &mut self.second[param_index];
                let values = param.value.as_mut_slice();
                let grads = param.grad.as_slice();
                for (((w, &g), mi), vi) in values
                    .iter_mut()
                    .zip(grads)
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                    *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                    let m_hat = *mi / bias1;
                    let v_hat = *vi / bias2;
                    *w -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
                }
                param_index += 1;
            }
        }
    }
}

/// Stochastic gradient descent with classical momentum.
///
/// The paper trains every model "using stochastic gradient descent with
/// momentum" (§5.2); this is that optimizer. Velocities are keyed by the
/// parameter's position in the network's layer/parameter traversal order,
/// which is stable for a fixed topology.
///
/// # Examples
///
/// ```
/// use rapidnn_nn::{Dense, Network, Sgd};
/// use rapidnn_tensor::{SeededRng, Shape, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Network::new(2);
/// net.push(Dense::new(2, 2, &mut rng));
/// let x = Tensor::from_vec(Shape::matrix(4, 2), vec![0.5; 8])?;
/// net.train_batch(&x, &[0, 1, 0, 1])?;
/// let mut sgd = Sgd::new(0.05, 0.9);
/// sgd.step(&mut net);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    clip_norm: f32,
    velocities: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and momentum
    /// coefficient (0 disables momentum).
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is not positive or momentum is outside
    /// `[0, 1)`.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            learning_rate,
            momentum,
            clip_norm: 5.0,
            velocities: Vec::new(),
        }
    }

    /// Sets the per-parameter gradient-norm clip (0 disables clipping).
    /// Clipping keeps mini-batch SGD stable on the small synthetic
    /// datasets where occasional batches produce outsized gradients.
    pub fn set_clip_norm(&mut self, clip_norm: f32) {
        self.clip_norm = clip_norm.max(0.0);
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Rescales the learning rate (for simple decay schedules).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        self.learning_rate = learning_rate;
    }

    /// Applies one update step using the gradients currently stored in the
    /// network's layers: `v ← μ·v − η·g`, `w ← w + v`.
    pub fn step(&mut self, network: &mut Network) {
        let mut param_index = 0;
        for layer in network.layers_mut() {
            for param in layer.params() {
                if param_index >= self.velocities.len() {
                    self.velocities.push(vec![0.0; param.value.len()]);
                }
                let velocity = &mut self.velocities[param_index];
                if velocity.len() != param.value.len() {
                    // Topology changed under us; restart this slot.
                    *velocity = vec![0.0; param.value.len()];
                }
                let values = param.value.as_mut_slice();
                let grads = param.grad.as_slice();
                // Gradient-norm clipping for stability.
                let mut scale = 1.0f32;
                if self.clip_norm > 0.0 {
                    let norm = grads.iter().map(|g| g * g).sum::<f32>().sqrt();
                    if norm > self.clip_norm {
                        scale = self.clip_norm / norm;
                    }
                }
                for ((w, &g), v) in values.iter_mut().zip(grads).zip(velocity.iter_mut()) {
                    *v = self.momentum * *v - self.learning_rate * g * scale;
                    *w += *v;
                }
                param_index += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Mode};
    use rapidnn_tensor::{SeededRng, Shape, Tensor};

    #[test]
    fn step_moves_weights_against_gradient() {
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(2);
        net.push(Dense::new(2, 1, &mut rng));
        let x = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]).unwrap();

        // Capture initial weight.
        let w_before = match net.layers_mut()[0].params().first() {
            Some(p) => p.value.as_slice().to_vec(),
            None => unreachable!(),
        };

        // Manually set a positive gradient on the weights.
        {
            let mut layer_params = net.layers_mut()[0].params();
            let p = &mut layer_params[0];
            for g in p.grad.as_mut_slice() {
                *g = 1.0;
            }
        }
        let mut sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut net);
        let w_after = match net.layers_mut()[0].params().first() {
            Some(p) => p.value.as_slice().to_vec(),
            None => unreachable!(),
        };
        for (before, after) in w_before.iter().zip(&w_after) {
            assert!((after - (before - 0.1)).abs() < 1e-6);
        }
        let _ = net.layers_mut()[0].forward(&x, Mode::Eval).unwrap();
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut rng = SeededRng::new(0);
        let mut net = Network::new(1);
        net.push(Dense::new(1, 1, &mut rng));

        let set_grad = |net: &mut Network| {
            let mut params = net.layers_mut()[0].params();
            for g in params[0].grad.as_mut_slice() {
                *g = 1.0;
            }
            for g in params[1].grad.as_mut_slice() {
                *g = 0.0;
            }
        };

        let read_w = |net: &mut Network| net.layers_mut()[0].params()[0].value.as_slice()[0];

        let mut sgd = Sgd::new(0.1, 0.9);
        let w0 = read_w(&mut net);
        set_grad(&mut net);
        sgd.step(&mut net);
        let w1 = read_w(&mut net);
        set_grad(&mut net);
        sgd.step(&mut net);
        let w2 = read_w(&mut net);

        let step1 = w0 - w1; // 0.1
        let step2 = w1 - w2; // 0.9*0.1 + 0.1 = 0.19
        assert!((step1 - 0.1).abs() < 1e-6);
        assert!((step2 - 0.19).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_learning_rate() {
        let _ = Sgd::new(0.0, 0.9);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn rejects_momentum_of_one() {
        let _ = Sgd::new(0.1, 1.0);
    }
}
