use crate::activation::Activation;
use crate::Result;
use rapidnn_tensor::{Conv2dGeometry, Tensor};

/// Whether a forward pass should behave as training (cache activations,
/// apply dropout) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: layers cache inputs for `backward` and dropout is active.
    Train,
    /// Inference: no caching, dropout is the identity.
    Eval,
}

/// A mutable view over one parameter tensor and its gradient, handed to the
/// optimizer after `backward`.
#[derive(Debug)]
pub struct ParamSet<'a> {
    /// The trainable values.
    pub value: &'a mut Tensor,
    /// Gradient accumulated by the most recent `backward`.
    pub grad: &'a mut Tensor,
}

/// Structural description of a layer, used by the composer and the
/// accelerator controller to map layers onto hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum LayerKind {
    /// Fully connected layer with `(inputs, outputs)` fan.
    Dense {
        /// Input feature count.
        inputs: usize,
        /// Output neuron count.
        outputs: usize,
    },
    /// 2-D convolution with its resolved geometry and output channels.
    Conv2d {
        /// Window sweep geometry.
        geometry: Conv2dGeometry,
        /// Number of output channels.
        out_channels: usize,
    },
    /// 2-D pooling layer (max or average).
    Pool2d {
        /// Window sweep geometry (channels pooled independently).
        geometry: Conv2dGeometry,
        /// `true` for max pooling, `false` for average pooling.
        is_max: bool,
    },
    /// Element-wise activation.
    Activation(Activation),
    /// Dropout with the given rate (training only).
    Dropout(f32),
    /// Residual block summing a branch with its input.
    Residual,
}

/// A differentiable network layer.
///
/// Layers consume and produce `batch x features` matrices. `backward`
/// receives the loss gradient with respect to the layer output and returns
/// the gradient with respect to its input, accumulating parameter gradients
/// internally for the optimizer to consume via [`Layer::params`].
///
/// Layers are `Send` so the composer can cluster and quantize
/// independent layers on the workspace thread pool.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns an error when `input` has the wrong feature width.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Back-propagates `grad` (d-loss/d-output), returning d-loss/d-input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForwardCache`] when called before a
    /// training-mode `forward`.
    fn backward(&mut self, grad: &Tensor) -> Result<Tensor>;

    /// Mutable access to every `(parameter, gradient)` pair of the layer.
    /// Parameter-free layers return an empty vector.
    fn params(&mut self) -> Vec<ParamSet<'_>>;

    /// Structural description of the layer.
    fn kind(&self) -> LayerKind;

    /// Output feature width given an input feature width.
    fn output_features(&self, input_features: usize) -> usize;

    /// For composite layers (residual blocks), mutable access to the inner
    /// layer stack; `None` for plain layers. The RAPIDNN composer uses this
    /// to recurse into branches when clustering weights.
    fn branch_mut(&mut self) -> Option<&mut Vec<Box<dyn Layer>>> {
        None
    }

    /// Clones the layer behind the trait object (enables `Network: Clone`
    /// for configuration sweeps that re-compose one trained model).
    fn clone_layer(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_layer()
    }
}

impl LayerKind {
    /// `true` for layers the RAPIDNN composer reinterprets (layers with
    /// weights feeding multiply-accumulate datapaths).
    pub fn is_weighted(&self) -> bool {
        matches!(self, LayerKind::Dense { .. } | LayerKind::Conv2d { .. })
    }

    /// Short lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            LayerKind::Dense { .. } => "dense",
            LayerKind::Conv2d { .. } => "conv2d",
            LayerKind::Pool2d { is_max: true, .. } => "maxpool2d",
            LayerKind::Pool2d { is_max: false, .. } => "avgpool2d",
            LayerKind::Activation(_) => "activation",
            LayerKind::Dropout(_) => "dropout",
            LayerKind::Residual => "residual",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_classification() {
        let dense = LayerKind::Dense {
            inputs: 2,
            outputs: 3,
        };
        assert!(dense.is_weighted());
        assert!(!LayerKind::Activation(Activation::Relu).is_weighted());
        assert!(!LayerKind::Dropout(0.5).is_weighted());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            LayerKind::Dense {
                inputs: 1,
                outputs: 1
            }
            .label(),
            "dense"
        );
        assert_eq!(LayerKind::Residual.label(), "residual");
    }
}
