use crate::network::Network;
use crate::optimizer::{Adam, Sgd};
use crate::Result;
use rapidnn_tensor::{SeededRng, Shape, Tensor};

/// Hyper-parameters for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Learning rate for SGD.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Per-parameter gradient-norm clip (0 disables). Large enough to act
    /// only as a blow-up guard, not as a step-size controller.
    pub clip_norm: f32,
    /// Use Adam instead of SGD+momentum (see [`crate::Adam`]).
    pub adam: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            learning_rate: 0.02,
            momentum: 0.9,
            batch_size: 32,
            lr_decay: 0.9,
            clip_norm: 25.0,
            adam: false,
        }
    }
}

/// Per-epoch training metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub mean_loss: f32,
    /// Training-set error rate measured after the epoch.
    pub train_error: f32,
}

/// Mini-batch SGD training loop with per-epoch shuffling.
///
/// # Examples
///
/// ```
/// use rapidnn_nn::{Dense, Network, Trainer, TrainerConfig};
/// use rapidnn_tensor::{SeededRng, Shape, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut net = Network::new(2);
/// net.push(Dense::new(2, 2, &mut rng));
/// let x = Tensor::from_vec(Shape::matrix(4, 2), vec![1., 1., -1., -1., 1., 1., -1., -1.])?;
/// let labels = vec![0, 1, 0, 1];
/// let mut trainer = Trainer::new(TrainerConfig::default(), &mut rng);
/// let reports = trainer.fit(&mut net, &x, &labels, 3)?;
/// assert_eq!(reports.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
enum Optim {
    Sgd(Sgd),
    Adam(Adam),
}

impl Optim {
    fn step(&mut self, network: &mut Network) {
        match self {
            Optim::Sgd(o) => o.step(network),
            Optim::Adam(o) => o.step(network),
        }
    }

    fn learning_rate(&self) -> f32 {
        match self {
            Optim::Sgd(o) => o.learning_rate(),
            Optim::Adam(o) => o.learning_rate(),
        }
    }

    fn set_learning_rate(&mut self, lr: f32) {
        match self {
            Optim::Sgd(o) => o.set_learning_rate(lr),
            Optim::Adam(o) => o.set_learning_rate(lr),
        }
    }
}

/// Mini-batch training loop with per-epoch shuffling; see the crate docs
/// for an end-to-end example. The optimizer is SGD+momentum by default or
/// Adam when [`TrainerConfig::adam`] is set.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    optimizer: Optim,
    rng: SeededRng,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainerConfig, rng: &mut SeededRng) -> Self {
        let optimizer = if config.adam {
            Optim::Adam(Adam::new(config.learning_rate))
        } else {
            let mut sgd = Sgd::new(config.learning_rate, config.momentum);
            sgd.set_clip_norm(config.clip_norm);
            Optim::Sgd(sgd)
        };
        Trainer {
            optimizer,
            config,
            rng: rng.fork(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `network` for `epochs` passes over `(inputs, labels)`.
    ///
    /// Returns one [`EpochReport`] per epoch.
    ///
    /// # Errors
    ///
    /// Propagates layer and label errors.
    pub fn fit(
        &mut self,
        network: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
        epochs: usize,
    ) -> Result<Vec<EpochReport>> {
        let mut reports = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let mean_loss = self.run_epoch(network, inputs, labels)?;
            let train_error = network.evaluate(inputs, labels)?;
            reports.push(EpochReport {
                epoch,
                mean_loss,
                train_error,
            });
            let lr = self.optimizer.learning_rate() * self.config.lr_decay;
            self.optimizer.set_learning_rate(lr.max(1e-5));
        }
        Ok(reports)
    }

    /// Runs a single epoch, returning the mean batch loss.
    ///
    /// # Errors
    ///
    /// Propagates layer and label errors.
    pub fn run_epoch(
        &mut self,
        network: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
    ) -> Result<f32> {
        let n = labels.len();
        let features = inputs.shape().dims()[1];
        let mut order: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut order);

        let mut total_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(self.config.batch_size.max(1)) {
            let mut xs = Vec::with_capacity(chunk.len() * features);
            let mut ys = Vec::with_capacity(chunk.len());
            for &i in chunk {
                xs.extend_from_slice(&inputs.as_slice()[i * features..(i + 1) * features]);
                ys.push(labels[i]);
            }
            let batch = Tensor::from_vec(Shape::matrix(chunk.len(), features), xs)?;
            total_loss += network.train_batch(&batch, &ys)?;
            self.optimizer.step(network);
            batches += 1;
        }
        Ok(if batches == 0 {
            0.0
        } else {
            total_loss / batches as f32
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, ActivationLayer, Dense};

    fn two_moons(rng: &mut SeededRng, n: usize) -> (Tensor, Vec<usize>) {
        let mut xs = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            labels.push(class);
            let angle = rng.uniform(0.0, std::f32::consts::PI);
            let (cx, cy, sign) = if class == 0 {
                (0.0, 0.0, 1.0)
            } else {
                (1.0, 0.3, -1.0)
            };
            xs.push(cx + angle.cos() + 0.05 * rng.normal());
            xs.push(cy + sign * angle.sin() + 0.05 * rng.normal());
        }
        (Tensor::from_vec(Shape::matrix(n, 2), xs).unwrap(), labels)
    }

    #[test]
    fn fit_learns_two_moons() {
        let mut rng = SeededRng::new(13);
        let (x, labels) = two_moons(&mut rng, 200);
        let mut net = Network::new(2);
        net.push(Dense::new(2, 32, &mut rng));
        net.push(ActivationLayer::new(Activation::Relu));
        net.push(Dense::new(32, 2, &mut rng));

        let mut trainer = Trainer::new(
            TrainerConfig {
                learning_rate: 0.1,
                ..TrainerConfig::default()
            },
            &mut rng,
        );
        let reports = trainer.fit(&mut net, &x, &labels, 30).unwrap();
        let last = reports.last().unwrap();
        assert!(
            last.train_error < 0.05,
            "error too high: {}",
            last.train_error
        );
        // Loss must broadly decrease.
        assert!(last.mean_loss < reports[0].mean_loss);
    }

    #[test]
    fn epoch_reports_are_sequential() {
        let mut rng = SeededRng::new(1);
        let (x, labels) = two_moons(&mut rng, 16);
        let mut net = Network::new(2);
        net.push(Dense::new(2, 2, &mut rng));
        let mut trainer = Trainer::new(TrainerConfig::default(), &mut rng);
        let reports = trainer.fit(&mut net, &x, &labels, 4).unwrap();
        let epochs: Vec<usize> = reports.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_dataset_yields_zero_loss() {
        let mut rng = SeededRng::new(1);
        let mut net = Network::new(2);
        net.push(Dense::new(2, 2, &mut rng));
        let x = Tensor::zeros(Shape::matrix(0, 2));
        let mut trainer = Trainer::new(TrainerConfig::default(), &mut rng);
        let loss = trainer.run_epoch(&mut net, &x, &[]).unwrap();
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let mut rng = SeededRng::new(seed);
            let (x, labels) = two_moons(&mut rng, 64);
            let mut net = Network::new(2);
            net.push(Dense::new(2, 8, &mut rng));
            net.push(ActivationLayer::new(Activation::Relu));
            net.push(Dense::new(8, 2, &mut rng));
            let mut trainer = Trainer::new(TrainerConfig::default(), &mut rng);
            trainer
                .fit(&mut net, &x, &labels, 5)
                .unwrap()
                .last()
                .unwrap()
                .mean_loss
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }
}
