use crate::layer::{Layer, LayerKind, Mode, ParamSet};
use crate::{NnError, Result};
use rapidnn_tensor::Tensor;

/// Scalar nonlinearity applied element-wise by [`ActivationLayer`].
///
/// The RAPIDNN composer approximates each of these with a nearest-distance
/// lookup table; the exact closed forms below are the references those
/// tables are checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softsign, `x / (1 + |x|)`.
    Softsign,
    /// Identity (used by the encoding-only virtual input layer).
    Identity,
}

impl Activation {
    /// Evaluates the activation at `x`.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Softsign => x / (1.0 + x.abs()),
            Activation::Identity => x,
        }
    }

    /// Derivative of the activation expressed in terms of the *input* `x`.
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Softsign => {
                let d = 1.0 + x.abs();
                1.0 / (d * d)
            }
            Activation::Identity => 1.0,
        }
    }

    /// `true` when the function saturates for large `|x|`, which lets the
    /// composer clamp the lookup-table domain (points `A`/`B` in Figure 2c).
    pub fn saturates(self) -> bool {
        matches!(
            self,
            Activation::Sigmoid | Activation::Tanh | Activation::Softsign
        )
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softsign => "softsign",
            Activation::Identity => "identity",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A layer applying an [`Activation`] element-wise.
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    activation: Activation,
    cached_input: Option<Tensor>,
}

impl ActivationLayer {
    /// Creates an activation layer.
    pub fn new(activation: Activation) -> Self {
        ActivationLayer {
            activation,
            cached_input: None,
        }
    }

    /// The wrapped activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.cached_input = Some(input.clone());
        }
        Ok(input.map(|v| self.activation.apply(v)))
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::MissingForwardCache("activation"))?;
        Ok(grad.zip(input, |g, x| g * self.activation.derivative(x))?)
    }

    fn params(&mut self) -> Vec<ParamSet<'_>> {
        Vec::new()
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation(self.activation)
    }

    fn output_features(&self, input_features: usize) -> usize {
        input_features
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidnn_tensor::Shape;

    #[test]
    fn closed_forms_match_known_points() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
        assert!((Activation::Softsign.apply(1.0) - 0.5).abs() < 1e-6);
        assert_eq!(Activation::Identity.apply(7.5), 7.5);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3;
        for act in [
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Softsign,
            Activation::Identity,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_is_step() {
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn saturation_classification() {
        assert!(Activation::Sigmoid.saturates());
        assert!(Activation::Tanh.saturates());
        assert!(Activation::Softsign.saturates());
        assert!(!Activation::Relu.saturates());
        assert!(!Activation::Identity.saturates());
    }

    #[test]
    fn layer_forward_backward_round_trip() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Tensor::from_vec(Shape::matrix(1, 4), vec![-1.0, 2.0, -3.0, 4.0]).unwrap();
        let y = layer.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::from_vec(Shape::matrix(1, 4), vec![1.0; 4]).unwrap();
        let gx = layer.backward(&g).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let g = Tensor::from_slice(&[1.0]);
        assert!(matches!(
            layer.backward(&g),
            Err(NnError::MissingForwardCache(_))
        ));
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut layer = ActivationLayer::new(Activation::Relu);
        let x = Tensor::from_slice(&[1.0]);
        layer.forward(&x, Mode::Eval).unwrap();
        assert!(layer.backward(&x).is_err());
    }
}
