//! Builders for the paper's Table 2 benchmark topologies.
//!
//! Each builder returns an untrained [`Network`] matching the layer plan in
//! Table 2 plus a [`Benchmark`] descriptor used throughout the experiment
//! harness. The three MLPs (MNIST, ISOLET, HAR) are reproduced exactly; the
//! CIFAR CNN follows Table 2's
//! `CV32·3x3, PL2x2, CV64·3x3, CV64·3x3, FC512, FC10(100)` plan. The
//! ImageNet-class networks (AlexNet/VGG/GoogLeNet/ResNet families) are
//! represented two ways:
//!
//! * trainable *scaled* networks (reduced spatial resolution) used for the
//!   accuracy studies, and
//! * exact op-count descriptors in `rapidnn-baselines::workload` used for
//!   the performance model —
//!
//! a substitution documented in `DESIGN.md` §5.

use crate::activation::{Activation, ActivationLayer};
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::network::Network;
use crate::pool::MaxPool2d;
use crate::residual::Residual;
use crate::Result;
use rapidnn_tensor::{Padding, SeededRng};

/// The six benchmark applications of the paper's evaluation (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Benchmark {
    /// Handwriting classification, MLP 784-512-512-10.
    Mnist,
    /// Voice recognition, MLP 617-512-512-26.
    Isolet,
    /// Activity recognition, MLP 561-512-512-19.
    Har,
    /// Object recognition, CNN on 32x32x3, 10 classes.
    Cifar10,
    /// Object recognition, CNN on 32x32x3, 100 classes.
    Cifar100,
    /// Image classification at ImageNet scale (scaled substitute network).
    ImageNet,
}

impl Benchmark {
    /// All six benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Mnist,
        Benchmark::Isolet,
        Benchmark::Har,
        Benchmark::Cifar10,
        Benchmark::Cifar100,
        Benchmark::ImageNet,
    ];

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mnist => "MNIST",
            Benchmark::Isolet => "ISOLET",
            Benchmark::Har => "HAR",
            Benchmark::Cifar10 => "CIFAR-10",
            Benchmark::Cifar100 => "CIFAR-100",
            Benchmark::ImageNet => "ImageNet",
        }
    }

    /// Input feature width of the trainable network.
    pub fn input_features(self) -> usize {
        match self {
            Benchmark::Mnist => 784,
            Benchmark::Isolet => 617,
            Benchmark::Har => 561,
            Benchmark::Cifar10 | Benchmark::Cifar100 => 3 * 32 * 32,
            // Scaled substitute: 3x32x32 input standing in for 3x224x224.
            Benchmark::ImageNet => 3 * 32 * 32,
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        match self {
            Benchmark::Mnist => 10,
            Benchmark::Isolet => 26,
            Benchmark::Har => 19,
            Benchmark::Cifar10 => 10,
            Benchmark::Cifar100 => 100,
            // Scaled substitute uses 100 classes for tractability.
            Benchmark::ImageNet => 100,
        }
    }

    /// Baseline error rate reported in Table 2 (fractional). For ImageNet
    /// this is VGG-16's 28.5 % top-1 error, the network Figure 10 uses.
    pub fn paper_error(self) -> f32 {
        match self {
            Benchmark::Mnist => 0.015,
            Benchmark::Isolet => 0.036,
            Benchmark::Har => 0.017,
            Benchmark::Cifar10 => 0.144,
            Benchmark::Cifar100 => 0.423,
            Benchmark::ImageNet => 0.285,
        }
    }

    /// `true` for "Type 2" applications (convolution + pooling models);
    /// `false` for the fully connected "Type 1" MLPs (§5.4.1).
    pub fn is_type2(self) -> bool {
        matches!(
            self,
            Benchmark::Cifar10 | Benchmark::Cifar100 | Benchmark::ImageNet
        )
    }

    /// Builds the untrained network for this benchmark.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (impossible geometry).
    pub fn build(self, rng: &mut SeededRng) -> Result<Network> {
        match self {
            Benchmark::Mnist => mlp(784, &[512, 512], 10, rng),
            Benchmark::Isolet => mlp(617, &[512, 512], 26, rng),
            Benchmark::Har => mlp(561, &[512, 512], 19, rng),
            Benchmark::Cifar10 => cifar_cnn(10, rng),
            Benchmark::Cifar100 => cifar_cnn(100, rng),
            Benchmark::ImageNet => imagenet_scaled(100, rng),
        }
    }

    /// Builds a *reduced* variant of the network (hidden widths and channel
    /// counts divided by `factor`) for fast tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn build_reduced(self, factor: usize, rng: &mut SeededRng) -> Result<Network> {
        let f = factor.max(1);
        match self {
            Benchmark::Mnist => mlp(784, &[512 / f, 512 / f], 10, rng),
            Benchmark::Isolet => mlp(617, &[512 / f, 512 / f], 26, rng),
            Benchmark::Har => mlp(561, &[512 / f, 512 / f], 19, rng),
            Benchmark::Cifar10 => cifar_cnn_scaled(10, f, rng),
            Benchmark::Cifar100 => cifar_cnn_scaled(100, f, rng),
            Benchmark::ImageNet => imagenet_scaled_with(100, f, rng),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a ReLU MLP with dropout 0.5 on hidden layers, per §5.2.
///
/// # Errors
///
/// Never fails today; returns `Result` for uniformity with CNN builders.
pub fn mlp(
    inputs: usize,
    hidden: &[usize],
    classes: usize,
    rng: &mut SeededRng,
) -> Result<Network> {
    let mut net = Network::new(inputs);
    let mut width = inputs;
    for &h in hidden {
        net.push(Dense::new(width, h, rng));
        net.push(ActivationLayer::new(Activation::Relu));
        net.push(Dropout::new(0.5, rng));
        width = h;
    }
    net.push(Dense::new(width, classes, rng));
    Ok(net)
}

/// Table 2 CIFAR CNN:
/// `CV 32·3x3 → PL 2x2 → CV 64·3x3 → CV 64·3x3 → FC 512 → FC classes`.
///
/// # Errors
///
/// Propagates geometry errors.
pub fn cifar_cnn(classes: usize, rng: &mut SeededRng) -> Result<Network> {
    cifar_cnn_scaled(classes, 1, rng)
}

/// CIFAR CNN with channel counts divided by `factor` (≥1).
///
/// # Errors
///
/// Propagates geometry errors.
pub fn cifar_cnn_scaled(classes: usize, factor: usize, rng: &mut SeededRng) -> Result<Network> {
    let f = factor.max(1);
    let c1 = (32 / f).max(2);
    let c2 = (64 / f).max(2);
    let fc = (512 / f).max(8);

    let mut net = Network::new(3 * 32 * 32);
    // CV 32x3x3 on 3x32x32, same padding keeps 32x32.
    let conv1 = Conv2d::new(3, 32, 32, c1, 3, 1, Padding::Same, rng)?;
    net.push(conv1);
    net.push(ActivationLayer::new(Activation::Relu));
    // PL 2x2 -> 16x16.
    net.push(MaxPool2d::new(c1, 32, 32, 2)?);
    // CV 64x3x3 twice on 16x16.
    net.push(Conv2d::new(c1, 16, 16, c2, 3, 1, Padding::Same, rng)?);
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(Conv2d::new(c2, 16, 16, c2, 3, 1, Padding::Same, rng)?);
    net.push(ActivationLayer::new(Activation::Relu));
    // Second pool keeps the dense head tractable.
    net.push(MaxPool2d::new(c2, 16, 16, 2)?);
    // FC 512 -> FC classes with dropout.
    net.push(Dense::new(c2 * 8 * 8, fc, rng));
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(Dropout::new(0.5, rng));
    net.push(Dense::new(fc, classes, rng));
    Ok(net)
}

/// Scaled ImageNet-class substitute: a VGG-flavoured CNN on a 3x32x32 grid
/// with one residual block, standing in for the AlexNet/VGG/GoogLeNet/
/// ResNet family in the accuracy studies (DESIGN.md §5).
///
/// # Errors
///
/// Propagates geometry errors.
pub fn imagenet_scaled(classes: usize, rng: &mut SeededRng) -> Result<Network> {
    imagenet_scaled_with(classes, 1, rng)
}

/// [`imagenet_scaled`] with channel counts and dense widths divided by
/// `factor` (class count untouched), for fast tests and reduced sweeps.
///
/// # Errors
///
/// Propagates geometry errors.
pub fn imagenet_scaled_with(classes: usize, factor: usize, rng: &mut SeededRng) -> Result<Network> {
    let f = factor.max(1);
    let c1 = (16 / f).max(2);
    let c2 = (32 / f).max(4);
    let fc = (256 / f).max(16);
    let mut net = Network::new(3 * 32 * 32);
    net.push(Conv2d::new(3, 32, 32, c1, 3, 1, Padding::Same, rng)?);
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(MaxPool2d::new(c1, 32, 32, 2)?);
    net.push(Conv2d::new(c1, 16, 16, c2, 3, 1, Padding::Same, rng)?);
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(MaxPool2d::new(c2, 16, 16, 2)?);
    // Residual block at c2 x 8 x 8, mirroring ResNet-style skip connections
    // the RAPIDNN controller supports via input FIFOs.
    net.push(Residual::new(vec![
        Box::new(Conv2d::new(c2, 8, 8, c2, 3, 1, Padding::Same, rng)?),
        Box::new(ActivationLayer::new(Activation::Relu)),
    ]));
    net.push(MaxPool2d::new(c2, 8, 8, 2)?);
    net.push(Dense::new(c2 * 4 * 4, fc, rng));
    net.push(ActivationLayer::new(Activation::Relu));
    net.push(Dropout::new(0.5, rng));
    net.push(Dense::new(fc, classes, rng));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapidnn_tensor::{Shape, Tensor};

    #[test]
    fn table2_mlp_shapes() {
        let mut rng = SeededRng::new(0);
        for (bench, classes) in [
            (Benchmark::Mnist, 10),
            (Benchmark::Isolet, 26),
            (Benchmark::Har, 19),
        ] {
            let net = bench.build(&mut rng).unwrap();
            assert_eq!(net.output_features(), classes, "{bench}");
            assert_eq!(net.input_features(), bench.input_features());
        }
    }

    #[test]
    fn cifar_cnn_forward_shape() {
        let mut rng = SeededRng::new(0);
        // Reduced network to keep the test fast.
        let mut net = cifar_cnn_scaled(10, 8, &mut rng).unwrap();
        let x = Tensor::zeros(Shape::matrix(2, 3 * 32 * 32));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn imagenet_scaled_forward_shape() {
        let mut rng = SeededRng::new(0);
        let mut net = imagenet_scaled(100, &mut rng).unwrap();
        let x = Tensor::zeros(Shape::matrix(1, 3 * 32 * 32));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 100]);
    }

    #[test]
    fn benchmark_metadata_is_consistent() {
        for bench in Benchmark::ALL {
            assert!(!bench.name().is_empty());
            assert!(bench.classes() >= 10);
            assert!(bench.paper_error() > 0.0 && bench.paper_error() < 0.5);
        }
        assert!(!Benchmark::Mnist.is_type2());
        assert!(Benchmark::Cifar10.is_type2());
        assert!(Benchmark::ImageNet.is_type2());
    }

    #[test]
    fn reduced_networks_shrink() {
        let mut rng = SeededRng::new(0);
        let full = Benchmark::Mnist.build(&mut rng).unwrap();
        let small = Benchmark::Mnist.build_reduced(8, &mut rng).unwrap();
        // Count dense parameters.
        let count = |net: &Network| -> usize {
            net.kinds()
                .iter()
                .map(|k| match k {
                    crate::LayerKind::Dense { inputs, outputs } => inputs * outputs,
                    _ => 0,
                })
                .sum()
        };
        assert!(count(&small) < count(&full) / 4);
    }

    #[test]
    fn mlp_topology_matches_plan() {
        let mut rng = SeededRng::new(0);
        let net = mlp(100, &[50, 25], 5, &mut rng).unwrap();
        let kinds = net.kinds();
        let dense_fans: Vec<(usize, usize)> = kinds
            .iter()
            .filter_map(|k| match k {
                crate::LayerKind::Dense { inputs, outputs } => Some((*inputs, *outputs)),
                _ => None,
            })
            .collect();
        assert_eq!(dense_fans, vec![(100, 50), (50, 25), (25, 5)]);
    }
}
