//! From-scratch neural-network library used as the RAPIDNN training
//! substrate.
//!
//! The paper trains its six benchmark models with TensorFlow/Keras; this
//! crate replaces that stack with a small, deterministic implementation of
//! exactly the pieces the paper's Table 2 topologies need:
//!
//! * layers — [`Dense`], [`Conv2d`], [`MaxPool2d`], [`AvgPool2d`],
//!   [`Dropout`], [`ActivationLayer`], [`Residual`];
//! * activations — ReLU, sigmoid, tanh and softsign ([`Activation`]);
//! * softmax cross-entropy loss ([`loss`]);
//! * stochastic gradient descent with momentum ([`Sgd`]);
//! * a batched trainer with error-rate evaluation ([`Trainer`]);
//! * builders for the Table 2 topologies ([`topology`]).
//!
//! All inter-layer tensors are rank-2 `batch x features` matrices; image
//! layers carry their own [`Conv2dGeometry`] and reinterpret the feature
//! axis as `C·H·W`.
//!
//! # Examples
//!
//! ```
//! use rapidnn_nn::{Activation, Network, Dense, ActivationLayer};
//! use rapidnn_tensor::{SeededRng, Shape, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = Network::new(4);
//! net.push(Dense::new(4, 8, &mut rng));
//! net.push(ActivationLayer::new(Activation::Relu));
//! net.push(Dense::new(8, 3, &mut rng));
//!
//! let x = Tensor::from_vec(Shape::matrix(2, 4), vec![0.1; 8])?;
//! let logits = net.forward(&x)?;
//! assert_eq!(logits.shape().dims(), &[2, 3]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv2d;
mod dense;
mod dropout;
mod error;
mod layer;
pub mod loss;
mod network;
mod optimizer;
mod pool;
mod residual;
pub mod topology;
mod trainer;

pub use activation::{Activation, ActivationLayer};
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use layer::{Layer, LayerKind, Mode, ParamSet};
pub use network::Network;
pub use optimizer::{Adam, Sgd};
pub use pool::{AvgPool2d, MaxPool2d, PoolKind};
pub use residual::Residual;
pub use trainer::{EpochReport, Trainer, TrainerConfig};

// Re-exported so downstream crates can name convolution geometry without a
// direct tensor-crate dependency.
pub use rapidnn_tensor::{Conv2dGeometry, Padding};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;
