//! Multi-model registry: named engines, admission control, verified
//! hot-swap.
//!
//! A [`Registry`] owns many named [`Engine`]s concurrently. Each model
//! entry adds what the raw engine does not have:
//!
//! * **Admission control** — a per-model in-flight budget. A request
//!   past the budget is *shed* (recorded via
//!   [`Metrics::record_shed`](rapidnn_serve::Metrics::record_shed) and
//!   surfaced as [`GatewayError::Shed`], which the HTTP layer maps to
//!   429 + `Retry-After`), so overload is visible rejection instead of
//!   unbounded queueing latency.
//! * **Verified hot-swap** — [`Registry::put_artifact`] accepts raw
//!   artifact bytes for an existing model and replaces the serving
//!   engine *safely*: the bytes must pass
//!   [`CompiledModel::from_bytes_strict`] (decode + `rapidnn-analyze`
//!   static verification), the new engine is warmed with synthetic
//!   inferences, and only then does traffic cut over atomically; the
//!   old engine drains with a deadline. Verification or warmup failure
//!   rolls back: the old engine never stops serving.
//!
//! The swap sequence never drops accepted work. In-flight requests hold
//! an `Arc` to the engine slot they submitted to; the swap waits for
//! those references to drop (the old engine is still serving them)
//! before draining, and a request that races the cutover and hits
//! `ShuttingDown` retries against the fresh slot.

use crate::error::GatewayError;
use rapidnn_analyze::Pass;
use rapidnn_serve::{CompiledModel, Engine, EngineConfig, PipelineStats, ServeError, ServerStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};
use std::time::{Duration, Instant};

/// Tuning for a [`Registry`] and the engines it builds.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Engine configuration applied to every registered model.
    pub engine: EngineConfig,
    /// Per-model in-flight budget; request `max_inflight + 1` is shed.
    pub max_inflight: usize,
    /// Synthetic inferences run through a fresh engine before it takes
    /// traffic (covers lazy per-worker scratch growth and catches
    /// models that verify but cannot serve).
    pub warmup_samples: usize,
    /// How long a swap waits for the displaced engine to finish its
    /// in-flight work before detaching it.
    pub drain_deadline: Duration,
    /// `Retry-After` hint attached to shed responses.
    pub retry_after: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            engine: EngineConfig::default(),
            max_inflight: 256,
            warmup_samples: 8,
            drain_deadline: Duration::from_secs(5),
            retry_after: Duration::from_secs(1),
        }
    }
}

/// One model's serving state behind the registry.
struct ModelEntry {
    name: String,
    /// Current engine. Requests clone the `Arc` under the read lock and
    /// submit outside it; a swap replaces the `Arc` under the write
    /// lock, so cutover is atomic with respect to new submissions.
    slot: RwLock<Arc<Engine>>,
    /// Requests currently inside this model (queued or executing).
    inflight: AtomicU64,
    /// Completed swaps; `0` until the first successful `put` over an
    /// existing model.
    generation: AtomicU64,
    /// Serializes swaps per model; a contended lock is a 409, not a
    /// queue of competing artifact uploads.
    swapping: Mutex<()>,
    /// Engine configuration this model's engines are built with: the
    /// registry default, possibly with a per-model stage override from
    /// `PUT`'s `x-stages`. Sticky across swaps until overridden again.
    engine_config: Mutex<EngineConfig>,
    /// What the certified optimizer did to the *currently serving*
    /// generation's artifact (`PUT`'s `x-optimize` opt-in); `None` when
    /// this generation was served as uploaded.
    optimized: Mutex<Option<OptimizeStats>>,
}

/// What [`CompiledModel::optimize`] removed from an uploaded artifact,
/// surfaced in swap responses and per-model stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Serialized size of the uploaded artifact.
    pub bytes_before: usize,
    /// Serialized size of the optimized artifact actually served.
    pub bytes_after: usize,
    /// Dead codebook entries eliminated.
    pub dead_entries_removed: usize,
    /// Unreferenced product-table rows compacted away.
    pub rows_removed: usize,
    /// Dead product-table columns / decode-book entries dropped.
    pub columns_removed: usize,
    /// Dead activation-LUT rows pruned.
    pub lut_rows_removed: usize,
}

/// Decrements the per-model in-flight gauge on every exit path.
struct InflightGuard<'a>(&'a AtomicU64);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Point-in-time per-model view: engine stats plus registry-level
/// metadata (swap generation, shape).
#[derive(Debug, Clone)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Completed hot-swaps (0 = the initially registered artifact).
    pub generation: u64,
    /// Input feature width.
    pub input_features: usize,
    /// Output feature width.
    pub output_features: usize,
    /// Requests currently in flight (admission gauge).
    pub inflight: u64,
    /// Pipeline stages the current engine runs (`1` = unsharded).
    pub stages: usize,
    /// Per-stage op ranges, cost estimates, and queue occupancy when
    /// the engine serves a sharded pipeline; `None` unsharded.
    pub pipeline: Option<PipelineStats>,
    /// Kernel path the current generation serves on: `"f32"` (no
    /// integer lowering), `"int16"` (every table op licensed) or
    /// `"mixed"`.
    pub kernel_path: &'static str,
    /// Certified-optimizer outcome for this generation's artifact, when
    /// the upload opted in via `x-optimize`.
    pub optimized: Option<OptimizeStats>,
    /// Table ops the analyzer licensed for integer execution (0 on the
    /// f32 path).
    pub licensed_ops: usize,
    /// Engine counters for the *current* generation (reset on swap —
    /// `generation` says how many resets happened).
    pub server: ServerStats,
}

/// What a successful [`Registry::put_artifact`] did.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// `true` when the name was new and this registered rather than
    /// swapped.
    pub created: bool,
    /// Generation now serving.
    pub generation: u64,
    /// Warmup inferences run through the new engine before cutover.
    pub warmed: usize,
    /// Pipeline stages the now-serving engine actually runs (`1` =
    /// unsharded; may be less than requested when the model has fewer
    /// legal cut points).
    pub stages: usize,
    /// `true` when the displaced engine finished all in-flight work and
    /// joined inside the drain deadline (`true` vacuously on create).
    /// `false` means it was detached mid-drain and finishes in the
    /// background — accepted requests are still answered.
    pub drained: bool,
    /// Certified-optimizer outcome, when the upload opted in.
    pub optimized: Option<OptimizeStats>,
    /// Final stats of the displaced engine, when it drained in time.
    pub old_stats: Option<ServerStats>,
}

/// A named fleet of serving engines with admission control and verified
/// hot-swap. See the module docs for the state machine.
pub struct Registry {
    config: RegistryConfig,
    models: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        Registry {
            config,
            models: RwLock::new(HashMap::new()),
        }
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read_models().keys().cloned().collect();
        names.sort();
        names
    }

    /// Registers a new model under `name` from an in-memory compiled
    /// model (the in-process path; the HTTP path is
    /// [`put_artifact`](Self::put_artifact)).
    ///
    /// The model is statically verified first unless it already is.
    ///
    /// # Errors
    ///
    /// [`GatewayError::InvalidName`], [`GatewayError::AlreadyExists`],
    /// or [`GatewayError::Rejected`] when the analyzer finds errors.
    pub fn register(&self, name: &str, mut model: CompiledModel) -> Result<(), GatewayError> {
        validate_name(name)?;
        if !model.is_verified() {
            model
                .verify()
                .map_err(|e| GatewayError::from_serve(name, e))?;
        }
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            slot: RwLock::new(Arc::new(Engine::start(model, self.config.engine.clone()))),
            inflight: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            swapping: Mutex::new(()),
            engine_config: Mutex::new(self.config.engine.clone()),
            optimized: Mutex::new(None),
        });
        let mut models = self.write_models();
        if models.contains_key(name) {
            // The freshly started engine never took traffic; drop joins it.
            return Err(GatewayError::AlreadyExists(name.to_string()));
        }
        models.insert(name.to_string(), entry);
        Ok(())
    }

    /// Registers (name unknown) or hot-swaps (name known) a model from
    /// raw artifact bytes — the `PUT /models/{name}` path.
    ///
    /// Swap sequence: strict decode + static verification → fresh
    /// engine → synthetic warmup → atomic cutover → drain the old
    /// engine with a deadline. Any failure before cutover is a full
    /// rollback: the previous engine keeps serving untouched.
    ///
    /// With `quantize` set (the HTTP layer's `x-kernels: int16`
    /// opt-in), the verified model is additionally lowered onto the
    /// analyzer-licensed integer kernels before warmup, so the swap
    /// only completes if the quantized model actually serves.
    ///
    /// `stages` is the HTTP layer's `x-stages` opt-in: `Some(n)` builds
    /// the new engine as an `n`-stage sharded pipeline (clamped to the
    /// model's legal cut points; `0`/`1` turn sharding off) and the
    /// setting sticks for later swaps of the same model; `None` keeps
    /// the model's current configuration.
    ///
    /// With `optimize` set (the HTTP layer's `x-optimize` opt-in), the
    /// verified model is run through the certified optimizer
    /// ([`CompiledModel::optimize`]) before any quantization: dead
    /// codebook entries, table rows/columns and LUT rows are removed
    /// under a translation-validated certificate, and the before/after
    /// byte sizes plus per-pass removal counts are reported in the
    /// [`SwapReport`] and the model's stats. A rewrite whose certificate
    /// fails validation is a rejection, not a silent fallback.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Rejected`] for bytes the verifier refuses,
    /// [`GatewayError::WidthMismatch`] when the replacement changes the
    /// model's I/O contract, [`GatewayError::WarmupFailed`] when the
    /// verified model cannot actually serve, and
    /// [`GatewayError::SwapInProgress`] when another swap of the same
    /// model is mid-flight.
    pub fn put_artifact(
        &self,
        name: &str,
        bytes: &[u8],
        quantize: bool,
        stages: Option<usize>,
        optimize: bool,
    ) -> Result<SwapReport, GatewayError> {
        validate_name(name)?;
        // Verification first — both paths need it, and a rejected
        // artifact must not disturb anything.
        let mut model = match CompiledModel::from_bytes_strict(bytes) {
            Ok(model) => model,
            Err(e) => return Err(GatewayError::from_artifact_failure(bytes, e)),
        };
        // Optimize before quantize: the integer lowering plan is built
        // for (and licensed against) the compacted tables it will serve.
        let optimized = if optimize {
            let (opt, cert) = model
                .optimize()
                .map_err(|e| GatewayError::from_serve(name, e))?;
            let stats = OptimizeStats {
                bytes_before: bytes.len(),
                bytes_after: opt.to_bytes().len(),
                dead_entries_removed: cert.removed(Pass::DeadEntryElimination),
                rows_removed: cert.removed(Pass::RowCompaction),
                columns_removed: cert.removed(Pass::ColumnCompaction),
                lut_rows_removed: cert.removed(Pass::LutPruning),
            };
            model = opt;
            Some(stats)
        } else {
            None
        };
        if quantize {
            model
                .quantize()
                .map_err(|e| GatewayError::from_serve(name, e))?;
        }
        let existing = self.read_models().get(name).cloned();
        match existing {
            None => {
                let mut engine_config = self.config.engine.clone();
                if let Some(stages) = stages {
                    engine_config.stages = stages;
                }
                let (warmed, served_stages) = {
                    let engine = Engine::start(model, engine_config.clone());
                    self.warm(&engine)?;
                    let served_stages = engine.stage_count();
                    let entry = Arc::new(ModelEntry {
                        name: name.to_string(),
                        slot: RwLock::new(Arc::new(engine)),
                        inflight: AtomicU64::new(0),
                        generation: AtomicU64::new(0),
                        swapping: Mutex::new(()),
                        engine_config: Mutex::new(engine_config),
                        optimized: Mutex::new(optimized),
                    });
                    let mut models = self.write_models();
                    if models.contains_key(name) {
                        return Err(GatewayError::SwapInProgress(name.to_string()));
                    }
                    models.insert(name.to_string(), entry);
                    (self.config.warmup_samples, served_stages)
                };
                Ok(SwapReport {
                    created: true,
                    generation: 0,
                    warmed,
                    stages: served_stages,
                    drained: true,
                    optimized,
                    old_stats: None,
                })
            }
            Some(entry) => self.swap_entry(&entry, model, stages, optimized),
        }
    }

    /// The verified-hot-swap core: new engine, warmup, cutover, drain.
    fn swap_entry(
        &self,
        entry: &ModelEntry,
        model: CompiledModel,
        stages: Option<usize>,
        optimized: Option<OptimizeStats>,
    ) -> Result<SwapReport, GatewayError> {
        let _swap = match entry.swapping.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                return Err(GatewayError::SwapInProgress(entry.name.clone()))
            }
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        };
        // The replacement must honour the model's wire contract.
        let (cur_in, cur_out) = {
            let slot = read_slot(&entry.slot);
            (
                slot.model().input_features(),
                slot.model().output_features(),
            )
        };
        if (model.input_features(), model.output_features()) != (cur_in, cur_out) {
            return Err(GatewayError::WidthMismatch {
                name: entry.name.clone(),
                expected: (cur_in, cur_out),
                got: (model.input_features(), model.output_features()),
            });
        }
        // Build and warm the successor before touching traffic; any
        // failure here is a rollback by construction — including a
        // requested stage-count change, which must not stick either.
        let engine_config = {
            let held = entry
                .engine_config
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut config = held.clone();
            if let Some(stages) = stages {
                config.stages = stages;
            }
            config
        };
        let engine = Engine::start(model, engine_config.clone());
        if let Err(e) = self.warm(&engine) {
            engine.drain(Duration::from_secs(1));
            return Err(e);
        }
        let served_stages = engine.stage_count();
        // Atomic cutover: every submission after this write lock drops
        // lands on the new engine.
        let old = {
            let mut slot = write_slot(&entry.slot);
            std::mem::replace(&mut *slot, Arc::new(engine))
        };
        *entry
            .engine_config
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = engine_config;
        *entry
            .optimized
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = optimized;
        let generation = entry.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let (old_stats, drained) = drain_displaced(old, self.config.drain_deadline);
        Ok(SwapReport {
            created: false,
            generation,
            warmed: self.config.warmup_samples,
            stages: served_stages,
            drained,
            optimized,
            old_stats,
        })
    }

    /// Runs synthetic inferences through a fresh engine. Exercises the
    /// full submit → batch → kernel → reply path per worker-visible
    /// code, growing scratch arenas before real traffic arrives.
    fn warm(&self, engine: &Engine) -> Result<(), GatewayError> {
        let features = engine.model().input_features();
        for i in 0..self.config.warmup_samples {
            let input: Vec<f32> = (0..features)
                .map(|f| ((i * 31 + f * 7) % 17) as f32 / 16.0 - 0.5)
                .collect();
            let outcome = engine
                .try_submit(input)
                .and_then(rapidnn_serve::Ticket::wait);
            if let Err(e) = outcome {
                return Err(GatewayError::WarmupFailed(e.to_string()));
            }
        }
        Ok(())
    }

    /// Serves one request against `name`, applying admission control.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownModel`], [`GatewayError::Shed`] when the
    /// in-flight budget or the engine queue is exhausted,
    /// [`GatewayError::InvalidInput`] for a width mismatch, or the
    /// underlying serve failure.
    pub fn infer(&self, name: &str, input: Vec<f32>) -> Result<Vec<f32>, GatewayError> {
        let entry = self.entry(name)?;
        // Admission: one budget covering queue + execution time. The
        // guard releases the slot on every path below.
        let admitted = entry.inflight.fetch_add(1, Ordering::AcqRel);
        let _guard = InflightGuard(&entry.inflight);
        if admitted >= self.config.max_inflight as u64 {
            read_slot(&entry.slot).metrics().record_shed();
            return Err(GatewayError::Shed {
                retry_after: self.config.retry_after,
            });
        }
        // A submission can race a hot-swap cutover: it reads the old
        // slot, the swap replaces it, the old engine begins draining and
        // answers `ShuttingDown`. Re-reading the slot and retrying makes
        // the swap invisible to clients. Bounded, because each retry
        // observes a strictly newer slot and swaps are serialized.
        for _attempt in 0..8 {
            let engine = read_slot(&entry.slot);
            match engine.try_submit(input.clone()) {
                Ok(ticket) => {
                    return ticket.wait().map_err(|e| GatewayError::from_serve(name, e));
                }
                Err(ServeError::QueueFull) => {
                    engine.metrics().record_shed();
                    return Err(GatewayError::Shed {
                        retry_after: self.config.retry_after,
                    });
                }
                Err(ServeError::ShuttingDown) => {
                    // Swap cutover in progress; grab the fresh slot.
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => return Err(GatewayError::from_serve(name, e)),
            }
        }
        Err(GatewayError::ShuttingDown)
    }

    /// Per-model stats: engine counters plus generation and shape.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownModel`].
    pub fn stats(&self, name: &str) -> Result<ModelStats, GatewayError> {
        let entry = self.entry(name)?;
        let slot = read_slot(&entry.slot);
        let optimized = *entry
            .optimized
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(ModelStats {
            name: entry.name.clone(),
            generation: entry.generation.load(Ordering::Acquire),
            input_features: slot.model().input_features(),
            output_features: slot.model().output_features(),
            inflight: entry.inflight.load(Ordering::Acquire),
            stages: slot.stage_count(),
            pipeline: slot.pipeline_stats(),
            kernel_path: slot.model().kernel_path(),
            optimized,
            licensed_ops: slot.model().licensed_ops(),
            server: slot.stats(),
        })
    }

    /// Removes `name`, draining its engine with the configured
    /// deadline. Returns the final stats when the drain completed.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownModel`].
    pub fn remove(&self, name: &str) -> Result<Option<ServerStats>, GatewayError> {
        let entry = self
            .write_models()
            .remove(name)
            .ok_or_else(|| GatewayError::UnknownModel(name.to_string()))?;
        // Late racers that already resolved this entry keep the engine
        // alive through their own slot clones; the drain below waits for
        // them before shutting the engine down.
        let slot = read_slot(&entry.slot);
        drop(entry);
        Ok(drain_displaced(slot, self.config.drain_deadline).0)
    }

    /// Drains every model (used at gateway shutdown).
    pub fn shutdown(&self) {
        let entries: Vec<Arc<ModelEntry>> = {
            let mut models = self.write_models();
            models.drain().map(|(_, entry)| entry).collect()
        };
        for entry in entries {
            let slot = Arc::clone(&read_slot(&entry.slot));
            drop(entry);
            drain_displaced(slot, self.config.drain_deadline);
        }
    }

    fn entry(&self, name: &str) -> Result<Arc<ModelEntry>, GatewayError> {
        self.read_models()
            .get(name)
            .cloned()
            .ok_or_else(|| GatewayError::UnknownModel(name.to_string()))
    }

    fn read_models(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.models
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_models(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.models
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("models", &self.names())
            .finish()
    }
}

fn read_slot(slot: &RwLock<Arc<Engine>>) -> Arc<Engine> {
    Arc::clone(
        &slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

fn write_slot(slot: &RwLock<Arc<Engine>>) -> std::sync::RwLockWriteGuard<'_, Arc<Engine>> {
    slot.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Waits for a displaced engine's outstanding references (in-flight
/// requests still being served by it) to drop, then drains it inside
/// what remains of the deadline. Returns `(final stats, fully joined)`;
/// on deadline the engine is simply released — its last reference
/// holder joins the workers on drop, so accepted requests still finish.
fn drain_displaced(mut displaced: Arc<Engine>, deadline: Duration) -> (Option<ServerStats>, bool) {
    let end = Instant::now() + deadline;
    loop {
        match Arc::try_unwrap(displaced) {
            Ok(engine) => {
                let remaining = end.saturating_duration_since(Instant::now());
                let report = engine.drain(remaining);
                return (Some(report.stats), report.joined);
            }
            Err(still_shared) => {
                if Instant::now() >= end {
                    return (None, false);
                }
                displaced = still_shared;
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// Model names are path segments; keep them boring: 1–64 chars of
/// `[A-Za-z0-9._-]`, not starting with a dot.
pub(crate) fn validate_name(name: &str) -> Result<(), GatewayError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(GatewayError::InvalidName(name.to_string()))
    }
}
